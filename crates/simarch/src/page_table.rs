//! A four-level radix page table (x86-64 style, 48-bit VA, 4KB pages).
//!
//! The table is functional: it holds real per-page entries whose protection
//! key field is rewritten by `pkey_mprotect` (the expensive operation the
//! libmpk baseline performs on every domain eviction). The walker charges a
//! flat miss penalty per Table II; the radix structure exists so that
//! per-PTE costs (libmpk) and sparse address spaces are modelled honestly.

use pmo_trace::Perm;

use crate::memory::MemKind;
use crate::tlb::{vpn, PAGE_SIZE};

const FANOUT: usize = 512;
const LEVELS: u32 = 4;
const INDEX_BITS: u32 = 9;

/// A page-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pte {
    /// Physical frame number.
    pub pfn: u64,
    /// Page-level permission (independent of domain permission).
    pub perm: Perm,
    /// MPK protection key (0 = NULL key / domainless page).
    pub pkey: u8,
    /// Kind of backing memory.
    pub mem: MemKind,
}

impl Pte {
    /// A DRAM page with read-write permission and no protection key.
    #[must_use]
    pub fn plain(pfn: u64) -> Self {
        Pte { pfn, perm: Perm::ReadWrite, pkey: 0, mem: MemKind::Dram }
    }
}

enum Node {
    Dir(Box<[Option<Node>; FANOUT]>),
    Leaf(Box<[Option<Pte>; FANOUT]>),
}

fn empty_dir() -> Node {
    Node::Dir(Box::new(std::array::from_fn(|_| None)))
}

fn empty_leaf() -> Node {
    Node::Leaf(Box::new([None; FANOUT]))
}

fn index_at(vpn: u64, level: u32) -> usize {
    // level 0 = root (bits 27..35 of the VPN), level 3 = leaf (bits 0..9).
    ((vpn >> ((LEVELS - 1 - level) * INDEX_BITS)) & (FANOUT as u64 - 1)) as usize
}

/// The page table of one process.
pub struct PageTable {
    root: Node,
    mapped_pages: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PageTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageTable").field("mapped_pages", &self.mapped_pages).finish()
    }
}

impl PageTable {
    /// Creates an empty page table.
    #[must_use]
    pub fn new() -> Self {
        PageTable { root: empty_dir(), mapped_pages: 0 }
    }

    /// Walks the table for `va`; returns the leaf entry if mapped.
    #[must_use]
    pub fn walk(&self, va: u64) -> Option<Pte> {
        let vpn = vpn(va);
        let mut node = &self.root;
        for level in 0..LEVELS {
            match node {
                Node::Dir(children) => {
                    node = children[index_at(vpn, level)].as_ref()?;
                }
                Node::Leaf(ptes) => return ptes[index_at(vpn, LEVELS - 1)],
            }
        }
        match node {
            Node::Leaf(ptes) => ptes[index_at(vpn, LEVELS - 1)],
            Node::Dir(_) => None,
        }
    }

    fn leaf_slot(&mut self, vpn: u64) -> &mut Option<Pte> {
        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            let idx = index_at(vpn, level);
            let next_is_leaf = level == LEVELS - 2;
            match node {
                Node::Dir(children) => {
                    node = children[idx].get_or_insert_with(|| {
                        if next_is_leaf {
                            empty_leaf()
                        } else {
                            empty_dir()
                        }
                    });
                }
                Node::Leaf(_) => unreachable!("leaf encountered above the last level"),
            }
        }
        match node {
            Node::Leaf(ptes) => &mut ptes[index_at(vpn, LEVELS - 1)],
            Node::Dir(_) => unreachable!("directory at leaf level"),
        }
    }

    /// Maps one page. Returns the previous entry, if any.
    pub fn map_page(&mut self, va: u64, pte: Pte) -> Option<Pte> {
        let slot = self.leaf_slot(vpn(va));
        let old = slot.replace(pte);
        if old.is_none() {
            self.mapped_pages += 1;
        }
        old
    }

    /// Maps `[va, va + len)` with consecutive PFNs starting at `base_pfn`.
    ///
    /// # Panics
    ///
    /// Panics if `va` or `len` is not page-aligned.
    pub fn map_range(&mut self, va: u64, len: u64, base_pfn: u64, perm: Perm, mem: MemKind) {
        assert_eq!(va % PAGE_SIZE, 0, "va must be page-aligned");
        assert_eq!(len % PAGE_SIZE, 0, "len must be page-aligned");
        for i in 0..len / PAGE_SIZE {
            self.map_page(va + i * PAGE_SIZE, Pte { pfn: base_pfn + i, perm, pkey: 0, mem });
        }
    }

    /// Unmaps one page; returns the removed entry.
    pub fn unmap_page(&mut self, va: u64) -> Option<Pte> {
        let slot = self.leaf_slot(vpn(va));
        let old = slot.take();
        if old.is_some() {
            self.mapped_pages -= 1;
        }
        old
    }

    /// Unmaps `[va, va + len)`; returns the number of pages removed.
    pub fn unmap_range(&mut self, va: u64, len: u64) -> u64 {
        assert_eq!(va % PAGE_SIZE, 0, "va must be page-aligned");
        let mut removed = 0;
        for i in 0..len.div_ceil(PAGE_SIZE) {
            if self.unmap_page(va + i * PAGE_SIZE).is_some() {
                removed += 1;
            }
        }
        removed
    }

    /// Rewrites the protection key of every mapped page in `[va, va+len)`;
    /// returns the number of PTEs written (this is what `pkey_mprotect`
    /// pays for, proportional to domain size — §VI.B).
    pub fn set_pkey_range(&mut self, va: u64, len: u64, pkey: u8) -> u64 {
        let mut written = 0;
        let mut page = va & !(PAGE_SIZE - 1);
        while page < va + len {
            let slot = self.leaf_slot(vpn(page));
            if let Some(pte) = slot {
                pte.pkey = pkey;
                written += 1;
            }
            page += PAGE_SIZE;
        }
        written
    }

    /// Rewrites the page permission over a range; returns PTEs written.
    pub fn set_perm_range(&mut self, va: u64, len: u64, perm: Perm) -> u64 {
        let mut written = 0;
        let mut page = va & !(PAGE_SIZE - 1);
        while page < va + len {
            let slot = self.leaf_slot(vpn(page));
            if let Some(pte) = slot {
                pte.perm = perm;
                written += 1;
            }
            page += PAGE_SIZE;
        }
        written
    }

    /// Total mapped pages.
    #[must_use]
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_walk_unmap() {
        let mut pt = PageTable::new();
        assert_eq!(pt.walk(0x1000), None);
        pt.map_page(0x1000, Pte::plain(7));
        let pte = pt.walk(0x1abc).expect("same page");
        assert_eq!(pte.pfn, 7);
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.unmap_page(0x1000).map(|p| p.pfn), Some(7));
        assert_eq!(pt.walk(0x1000), None);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn map_range_consecutive_pfns() {
        let mut pt = PageTable::new();
        pt.map_range(0x40_0000, 4 * PAGE_SIZE, 100, Perm::ReadWrite, MemKind::Nvm);
        for i in 0..4 {
            let pte = pt.walk(0x40_0000 + i * PAGE_SIZE).unwrap();
            assert_eq!(pte.pfn, 100 + i);
            assert_eq!(pte.mem, MemKind::Nvm);
        }
        assert_eq!(pt.mapped_pages(), 4);
        assert_eq!(pt.unmap_range(0x40_0000, 4 * PAGE_SIZE), 4);
    }

    #[test]
    fn sparse_addresses_do_not_collide() {
        let mut pt = PageTable::new();
        // Far-apart addresses exercising different radix subtrees.
        let vas = [0x0, 0x1000, 0x7fff_ffff_f000, 0x1234_5678_9000u64 & !0xfff];
        for (i, &va) in vas.iter().enumerate() {
            pt.map_page(va, Pte::plain(i as u64));
        }
        for (i, &va) in vas.iter().enumerate() {
            assert_eq!(pt.walk(va).unwrap().pfn, i as u64, "va {va:#x}");
        }
    }

    #[test]
    fn pkey_rewrite_counts_ptes() {
        let mut pt = PageTable::new();
        pt.map_range(0x10_0000, 8 * PAGE_SIZE, 0, Perm::ReadWrite, MemKind::Nvm);
        let written = pt.set_pkey_range(0x10_0000, 8 * PAGE_SIZE, 5);
        assert_eq!(written, 8);
        assert_eq!(pt.walk(0x10_0000).unwrap().pkey, 5);
        assert_eq!(pt.walk(0x10_7000).unwrap().pkey, 5);
        // Unmapped neighbours are not counted.
        let written = pt.set_pkey_range(0x10_0000, 16 * PAGE_SIZE, 6);
        assert_eq!(written, 8);
    }

    #[test]
    fn perm_rewrite() {
        let mut pt = PageTable::new();
        pt.map_range(0x20_0000, 2 * PAGE_SIZE, 0, Perm::ReadWrite, MemKind::Dram);
        assert_eq!(pt.set_perm_range(0x20_0000, 2 * PAGE_SIZE, Perm::ReadOnly), 2);
        assert_eq!(pt.walk(0x20_0000).unwrap().perm, Perm::ReadOnly);
    }

    #[test]
    fn remap_replaces_entry() {
        let mut pt = PageTable::new();
        pt.map_page(0x3000, Pte::plain(1));
        let old = pt.map_page(0x3000, Pte::plain(2));
        assert_eq!(old.map(|p| p.pfn), Some(1));
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.walk(0x3000).unwrap().pfn, 2);
    }
}
