//! A four-level radix page table (x86-64 style, 48-bit VA, 4KB pages).
//!
//! The table is functional: it holds real per-page entries whose protection
//! key field is rewritten by `pkey_mprotect` (the expensive operation the
//! libmpk baseline performs on every domain eviction). The walker charges a
//! flat miss penalty per Table II; the radix structure exists so that
//! per-PTE costs (libmpk) and sparse address spaces are modelled honestly.

use pmo_trace::Perm;

use crate::memory::MemKind;
use crate::tlb::{vpn, PAGE_SIZE};

const FANOUT: usize = 512;
const LEVELS: u32 = 4;
const INDEX_BITS: u32 = 9;

/// A page-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pte {
    /// Physical frame number.
    pub pfn: u64,
    /// Page-level permission (independent of domain permission).
    pub perm: Perm,
    /// MPK protection key (0 = NULL key / domainless page).
    pub pkey: u8,
    /// Kind of backing memory.
    pub mem: MemKind,
}

impl Pte {
    /// A DRAM page with read-write permission and no protection key.
    #[must_use]
    pub fn plain(pfn: u64) -> Self {
        Pte { pfn, perm: Perm::ReadWrite, pkey: 0, mem: MemKind::Dram }
    }
}

enum Node {
    Dir(Box<[Option<Node>; FANOUT]>),
    Leaf(Box<Leaf>),
}

/// A last-level node: 512 PTE slots plus lazily-applied whole-leaf
/// attribute overrides. PMO pools are granule-aligned (an 8MB pool
/// reserves a 1GB-aligned region), so every ranged `pkey_mprotect` /
/// `mprotect` covers whole leaves — recording the new key or permission
/// as a pending override makes those rewrites O(1) per 2MB leaf instead
/// of a 512-slot scan, which is the difference between libmpk's domain
/// eviction costing nanoseconds or microseconds of *host* time per call
/// (the simulated cost is charged arithmetically either way).
struct Leaf {
    ptes: [Option<Pte>; FANOUT],
    /// Number of `Some` slots (so a whole-leaf rewrite can report how
    /// many PTEs it covered without scanning).
    mapped: u32,
    /// Pending whole-leaf protection-key override; merged by `walk` and
    /// materialized into the slots before any partial-leaf update.
    pkey: Option<u8>,
    /// Pending whole-leaf permission override (same discipline).
    perm: Option<Perm>,
}

impl Leaf {
    fn new() -> Self {
        Leaf { ptes: [None; FANOUT], mapped: 0, pkey: None, perm: None }
    }

    /// Applies pending overrides to every mapped slot and clears them,
    /// so slots can be read or written individually again.
    fn materialize(&mut self) {
        if self.pkey.is_none() && self.perm.is_none() {
            return;
        }
        for slot in self.ptes.iter_mut().flatten() {
            if let Some(pkey) = self.pkey {
                slot.pkey = pkey;
            }
            if let Some(perm) = self.perm {
                slot.perm = perm;
            }
        }
        self.pkey = None;
        self.perm = None;
    }

    /// One slot's merged view (slot contents + pending overrides).
    fn get(&self, idx: usize) -> Option<Pte> {
        let pte = self.ptes[idx]?;
        Some(Pte {
            pkey: self.pkey.unwrap_or(pte.pkey),
            perm: self.perm.unwrap_or(pte.perm),
            ..pte
        })
    }
}

fn empty_dir() -> Node {
    Node::Dir(Box::new(std::array::from_fn(|_| None)))
}

fn empty_leaf() -> Node {
    Node::Leaf(Box::new(Leaf::new()))
}

/// What a ranged page-table operation does to each covered mapped PTE.
#[derive(Clone, Copy)]
enum RangeOp {
    Unmap,
    SetPkey(u8),
    SetPerm(Perm),
}

fn index_at(vpn: u64, level: u32) -> usize {
    // level 0 = root (bits 27..35 of the VPN), level 3 = leaf (bits 0..9).
    ((vpn >> ((LEVELS - 1 - level) * INDEX_BITS)) & (FANOUT as u64 - 1)) as usize
}

/// The page table of one process.
pub struct PageTable {
    root: Node,
    mapped_pages: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PageTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageTable").field("mapped_pages", &self.mapped_pages).finish()
    }
}

impl PageTable {
    /// Creates an empty page table.
    #[must_use]
    pub fn new() -> Self {
        PageTable { root: empty_dir(), mapped_pages: 0 }
    }

    /// Walks the table for `va`; returns the leaf entry if mapped.
    #[must_use]
    pub fn walk(&self, va: u64) -> Option<Pte> {
        let vpn = vpn(va);
        let mut node = &self.root;
        for level in 0..LEVELS {
            match node {
                Node::Dir(children) => {
                    node = children[index_at(vpn, level)].as_ref()?;
                }
                Node::Leaf(leaf) => return leaf.get(index_at(vpn, LEVELS - 1)),
            }
        }
        match node {
            Node::Leaf(leaf) => leaf.get(index_at(vpn, LEVELS - 1)),
            Node::Dir(_) => None,
        }
    }

    /// The leaf node covering `vpn`, creating the path down to it.
    fn leaf_for(&mut self, vpn: u64) -> &mut Leaf {
        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            let idx = index_at(vpn, level);
            let next_is_leaf = level == LEVELS - 2;
            match node {
                Node::Dir(children) => {
                    node = children[idx].get_or_insert_with(|| {
                        if next_is_leaf {
                            empty_leaf()
                        } else {
                            empty_dir()
                        }
                    });
                }
                Node::Leaf(_) => unreachable!("leaf encountered above the last level"),
            }
        }
        match node {
            Node::Leaf(leaf) => leaf,
            Node::Dir(_) => unreachable!("directory at leaf level"),
        }
    }

    /// Maps one page. Returns the previous entry, if any.
    pub fn map_page(&mut self, va: u64, pte: Pte) -> Option<Pte> {
        let vpn = vpn(va);
        let idx = index_at(vpn, LEVELS - 1);
        let leaf = self.leaf_for(vpn);
        // A fresh entry must not inherit pending whole-leaf overrides.
        leaf.materialize();
        let old = leaf.ptes[idx].replace(pte);
        if old.is_none() {
            leaf.mapped += 1;
            self.mapped_pages += 1;
        }
        old
    }

    /// Maps `[va, va + len)` with consecutive PFNs starting at `base_pfn`.
    ///
    /// # Panics
    ///
    /// Panics if `va` or `len` is not page-aligned.
    pub fn map_range(&mut self, va: u64, len: u64, base_pfn: u64, perm: Perm, mem: MemKind) {
        assert_eq!(va % PAGE_SIZE, 0, "va must be page-aligned");
        assert_eq!(len % PAGE_SIZE, 0, "len must be page-aligned");
        for i in 0..len / PAGE_SIZE {
            self.map_page(va + i * PAGE_SIZE, Pte { pfn: base_pfn + i, perm, pkey: 0, mem });
        }
    }

    /// Unmaps one page; returns the removed entry.
    pub fn unmap_page(&mut self, va: u64) -> Option<Pte> {
        let vpn = vpn(va);
        let idx = index_at(vpn, LEVELS - 1);
        let leaf = self.leaf_for(vpn);
        let pkey = leaf.pkey;
        let perm = leaf.perm;
        let old = leaf.ptes[idx].take().map(|pte| Pte {
            pkey: pkey.unwrap_or(pte.pkey),
            perm: perm.unwrap_or(pte.perm),
            ..pte
        });
        if old.is_some() {
            leaf.mapped -= 1;
            self.mapped_pages -= 1;
        }
        old
    }

    /// Visits every *mapped* leaf slot whose VPN lies in `[start, end)`
    /// with one tree descent, skipping absent subtrees, and applies `op`;
    /// returns the number of mapped PTEs covered. A leaf *fully* inside
    /// the range takes the O(1) path — clearing it outright (unmap) or
    /// recording a pending whole-leaf override (pkey/perm) — while a
    /// partially-covered leaf materializes its overrides and updates the
    /// covered slots individually. The simulated cost of a range
    /// operation is charged arithmetically by the caller
    /// (`pte_write_cycles * pages`), so the host-side walk must not be
    /// proportional to the range in pages, only to the touched leaves.
    fn visit_range(
        node: &mut Node,
        level: u32,
        base: u64,
        start: u64,
        end: u64,
        op: RangeOp,
    ) -> u64 {
        let shift = (LEVELS - 1 - level) * INDEX_BITS;
        match node {
            Node::Dir(children) => {
                let lo = (start.saturating_sub(base) >> shift) as usize;
                let hi = (((end - 1 - base) >> shift) as usize).min(FANOUT - 1);
                let mut covered = 0;
                for (idx, child) in children[lo..=hi].iter_mut().enumerate() {
                    if let Some(child) = child {
                        let child_base = base + (((lo + idx) as u64) << shift);
                        covered += Self::visit_range(child, level + 1, child_base, start, end, op);
                    }
                }
                covered
            }
            Node::Leaf(leaf) => {
                if start <= base && end >= base + FANOUT as u64 {
                    // Whole leaf covered: O(1), no slot scan.
                    let covered = u64::from(leaf.mapped);
                    match op {
                        RangeOp::Unmap => **leaf = Leaf::new(),
                        RangeOp::SetPkey(pkey) => leaf.pkey = Some(pkey),
                        RangeOp::SetPerm(perm) => leaf.perm = Some(perm),
                    }
                    return covered;
                }
                leaf.materialize();
                let lo = start.saturating_sub(base) as usize;
                let hi = ((end - base).min(FANOUT as u64)) as usize;
                let mut covered = 0;
                for slot in &mut leaf.ptes[lo..hi] {
                    let Some(pte) = slot else { continue };
                    match op {
                        RangeOp::Unmap => {
                            *slot = None;
                            leaf.mapped -= 1;
                        }
                        RangeOp::SetPkey(pkey) => pte.pkey = pkey,
                        RangeOp::SetPerm(perm) => pte.perm = perm,
                    }
                    covered += 1;
                }
                covered
            }
        }
    }

    /// Unmaps `[va, va + len)`; returns the number of pages removed.
    pub fn unmap_range(&mut self, va: u64, len: u64) -> u64 {
        assert_eq!(va % PAGE_SIZE, 0, "va must be page-aligned");
        let end = vpn(va) + len.div_ceil(PAGE_SIZE);
        let removed = Self::visit_range(&mut self.root, 0, 0, vpn(va), end, RangeOp::Unmap);
        self.mapped_pages -= removed;
        removed
    }

    /// Rewrites the protection key of every mapped page in `[va, va+len)`;
    /// returns the number of PTEs written (this is what `pkey_mprotect`
    /// pays for, proportional to domain size — §VI.B).
    pub fn set_pkey_range(&mut self, va: u64, len: u64, pkey: u8) -> u64 {
        let (start, end) = (vpn(va), vpn(va + len - 1) + 1);
        Self::visit_range(&mut self.root, 0, 0, start, end, RangeOp::SetPkey(pkey))
    }

    /// Rewrites the page permission over a range; returns PTEs written.
    pub fn set_perm_range(&mut self, va: u64, len: u64, perm: Perm) -> u64 {
        let (start, end) = (vpn(va), vpn(va + len - 1) + 1);
        Self::visit_range(&mut self.root, 0, 0, start, end, RangeOp::SetPerm(perm))
    }

    /// Total mapped pages.
    #[must_use]
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_walk_unmap() {
        let mut pt = PageTable::new();
        assert_eq!(pt.walk(0x1000), None);
        pt.map_page(0x1000, Pte::plain(7));
        let pte = pt.walk(0x1abc).expect("same page");
        assert_eq!(pte.pfn, 7);
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.unmap_page(0x1000).map(|p| p.pfn), Some(7));
        assert_eq!(pt.walk(0x1000), None);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn map_range_consecutive_pfns() {
        let mut pt = PageTable::new();
        pt.map_range(0x40_0000, 4 * PAGE_SIZE, 100, Perm::ReadWrite, MemKind::Nvm);
        for i in 0..4 {
            let pte = pt.walk(0x40_0000 + i * PAGE_SIZE).unwrap();
            assert_eq!(pte.pfn, 100 + i);
            assert_eq!(pte.mem, MemKind::Nvm);
        }
        assert_eq!(pt.mapped_pages(), 4);
        assert_eq!(pt.unmap_range(0x40_0000, 4 * PAGE_SIZE), 4);
    }

    #[test]
    fn sparse_addresses_do_not_collide() {
        let mut pt = PageTable::new();
        // Far-apart addresses exercising different radix subtrees.
        let vas = [0x0, 0x1000, 0x7fff_ffff_f000, 0x1234_5678_9000u64 & !0xfff];
        for (i, &va) in vas.iter().enumerate() {
            pt.map_page(va, Pte::plain(i as u64));
        }
        for (i, &va) in vas.iter().enumerate() {
            assert_eq!(pt.walk(va).unwrap().pfn, i as u64, "va {va:#x}");
        }
    }

    #[test]
    fn pkey_rewrite_counts_ptes() {
        let mut pt = PageTable::new();
        pt.map_range(0x10_0000, 8 * PAGE_SIZE, 0, Perm::ReadWrite, MemKind::Nvm);
        let written = pt.set_pkey_range(0x10_0000, 8 * PAGE_SIZE, 5);
        assert_eq!(written, 8);
        assert_eq!(pt.walk(0x10_0000).unwrap().pkey, 5);
        assert_eq!(pt.walk(0x10_7000).unwrap().pkey, 5);
        // Unmapped neighbours are not counted.
        let written = pt.set_pkey_range(0x10_0000, 16 * PAGE_SIZE, 6);
        assert_eq!(written, 8);
    }

    #[test]
    fn perm_rewrite() {
        let mut pt = PageTable::new();
        pt.map_range(0x20_0000, 2 * PAGE_SIZE, 0, Perm::ReadWrite, MemKind::Dram);
        assert_eq!(pt.set_perm_range(0x20_0000, 2 * PAGE_SIZE, Perm::ReadOnly), 2);
        assert_eq!(pt.walk(0x20_0000).unwrap().perm, Perm::ReadOnly);
    }

    #[test]
    fn remap_replaces_entry() {
        let mut pt = PageTable::new();
        pt.map_page(0x3000, Pte::plain(1));
        let old = pt.map_page(0x3000, Pte::plain(2));
        assert_eq!(old.map(|p| p.pfn), Some(1));
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.walk(0x3000).unwrap().pfn, 2);
    }
}
