//! Simulation parameters (paper Table II) and cost-model constants.

use std::fmt;

/// Geometry of one set-associative structure (cache or TLB).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetAssocGeometry {
    /// Total number of entries (must be `sets * ways`).
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
}

impl SetAssocGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`.
    #[must_use]
    pub fn new(entries: u32, ways: u32) -> Self {
        assert!(ways > 0 && entries > 0, "geometry must be non-empty");
        assert_eq!(entries % ways, 0, "entries must be a multiple of ways");
        SetAssocGeometry { entries, ways }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.entries / self.ways
    }
}

/// All simulation parameters.
///
/// [`SimConfig::isca2020`] reproduces the paper's Table II exactly; every
/// field is public so experiments and ablations can deviate from it.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    // ---- Processor ----
    /// Core clock in Hz (2.2 GHz in the paper). Used only to convert
    /// cycle counts into "per second" rates for the tables.
    pub clock_hz: f64,
    /// Cycles charged per non-memory instruction. The paper's core is a
    /// 4-way out-of-order; a base CPI of 0.25 approximates its throughput
    /// on the compute portions of the trace.
    pub base_cpi: f64,

    // ---- Cache ----
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// L1 data cache geometry (32KB, 8-way in the paper).
    pub l1d: SetAssocGeometry,
    /// L1 data cache hit latency in cycles.
    pub l1d_latency: u64,
    /// L2 cache geometry (1MB, 16-way in the paper).
    pub l2: SetAssocGeometry,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,

    // ---- Memory ----
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// NVM access latency in cycles (3x DRAM, per Optane characterization).
    pub nvm_latency: u64,
    /// Memory-level-parallelism factor of the 4-way out-of-order core: the
    /// effective main-memory stall charged per miss is `latency / mlp`.
    /// A trace-driven in-order accumulator would otherwise serialize every
    /// miss, which the paper's Sniper (OOO, 128-entry ROB) does not.
    pub mem_level_parallelism: f64,
    /// Extra cycles charged for a `clwb`-style line writeback instruction
    /// (the write itself drains asynchronously; this is the issue cost).
    pub clwb_cycles: u64,
    /// Cycles charged for a fence draining pending persists.
    pub fence_cycles: u64,

    // ---- TLB ----
    /// L1 data TLB geometry (64-entry, 4-way, 4KB pages).
    pub l1_tlb: SetAssocGeometry,
    /// L1 TLB access latency in cycles.
    pub l1_tlb_latency: u64,
    /// L2 TLB geometry (1536-entry, 6-way).
    pub l2_tlb: SetAssocGeometry,
    /// L2 TLB access latency in cycles.
    pub l2_tlb_latency: u64,
    /// Flat page-walk penalty on a full TLB miss.
    pub tlb_miss_penalty: u64,

    // ---- MPK ----
    /// WRPKRU instruction latency (27 cycles in Table II). Also used as the
    /// cost of the paper's SETPERM instruction, which Table VII shows has
    /// the same permission-change overhead as the lowerbound.
    pub wrpkru_cycles: u64,
    /// Number of architected protection keys (16 for MPK). Key 0 is the
    /// reserved NULL key, so `pkeys - 1` keys are usable for domains.
    pub pkeys: u32,

    // ---- Hardware MPK virtualization ----
    /// DTTLB entry count (fully associative CAM in the paper).
    pub dttlb_entries: u32,
    /// DTTLB hit latency (overlapped with the page walk; charged only on
    /// the eviction path).
    pub dttlb_hit_cycles: u64,
    /// Cost of adding/removing/modifying a DTTLB entry.
    pub dttlb_entry_op_cycles: u64,
    /// DTTLB miss penalty (hardware DTT walk).
    pub dttlb_miss_cycles: u64,
    /// Cost of checking/updating the free-keys structure.
    pub free_keys_cycles: u64,
    /// Cost of updating the PKRU when a key is (re)assigned.
    pub pkru_update_cycles: u64,
    /// Cost of one ranged TLB invalidation (shootdown) per core.
    pub tlb_invalidation_cycles: u64,

    // ---- Hardware domain virtualization ----
    /// PTLB entry count.
    pub ptlb_entries: u32,
    /// PTLB lookup latency added to every domain access.
    pub ptlb_access_cycles: u64,
    /// PTLB miss penalty (includes the Permission Table lookup).
    pub ptlb_miss_cycles: u64,
    /// Cost of adding/removing/modifying a PTLB entry.
    pub ptlb_entry_op_cycles: u64,
    /// Width of the domain-ID field added to each TLB entry (10 bits).
    pub domain_id_bits: u32,

    // ---- ERIM (call gates over raw MPK) ----
    /// Cycles the ERIM call-gate trampoline adds around a WRPKRU-based
    /// permission switch (argument save/restore, stack switch, and the
    /// post-WRPKRU verification branch; Vahldiek-Oberwagner et al. §4).
    pub erim_gate_cycles: u64,

    // ---- Domain page-table isolation (DPTI) ----
    /// Cycles for one CR3 write on a domain/thread switch (the TLB-tag
    /// and pipeline-serialization cost of loading a new page-table root;
    /// Canella et al. measure ~hundreds of cycles without PCID reuse).
    pub cr3_write_cycles: u64,

    /// Whether libmpk reserves a *guard* protection key (key 15, which
    /// Linux reserves for kernel use anyway) to trap accesses to evicted
    /// domains via fault-and-remap. Default true: 14 usable keys and
    /// faithful deny-on-stray-access semantics. Set false to give libmpk
    /// the same 15-key capacity as the hardware designs (evicted domains'
    /// pages then return to the NULL key and stray accesses go unchecked —
    /// an ablation, not the faithful model).
    pub libmpk_guard_key: bool,

    // ---- Software cost model (libmpk and system calls) ----
    /// Cycles for one kernel entry/exit round trip (`pkey_mprotect`,
    /// attach/detach). Calibrated; see EXPERIMENTS.md.
    pub syscall_cycles: u64,
    /// Cycles to rewrite the pkey field of one PTE during `pkey_mprotect`.
    pub pte_write_cycles: u64,
    /// Cycles for the in-kernel portion of an attach/detach beyond the bare
    /// syscall (VMA setup, DTT/DRT/PT entry management).
    pub attach_kernel_cycles: u64,

    // ---- System ----
    /// Number of threads that receive TLB-shootdown IPIs on a key remap.
    pub threads: u32,
}

impl SimConfig {
    /// The paper's Table II configuration.
    #[must_use]
    pub fn isca2020() -> Self {
        SimConfig {
            clock_hz: 2.2e9,
            base_cpi: 0.25,
            line_bytes: 64,
            l1d: SetAssocGeometry::new(32 * 1024 / 64, 8), // 32KB, 8-way
            l1d_latency: 1,
            l2: SetAssocGeometry::new(1024 * 1024 / 64, 16), // 1MB, 16-way
            l2_latency: 8,
            dram_latency: 120,
            nvm_latency: 360,
            mem_level_parallelism: 3.0,
            clwb_cycles: 5,
            fence_cycles: 10,
            l1_tlb: SetAssocGeometry::new(64, 4),
            l1_tlb_latency: 1,
            l2_tlb: SetAssocGeometry::new(1536, 6),
            l2_tlb_latency: 4,
            tlb_miss_penalty: 30,
            wrpkru_cycles: 27,
            pkeys: 16,
            dttlb_entries: 16,
            dttlb_hit_cycles: 1,
            dttlb_entry_op_cycles: 1,
            dttlb_miss_cycles: 30,
            free_keys_cycles: 1,
            pkru_update_cycles: 1,
            tlb_invalidation_cycles: 286,
            ptlb_entries: 16,
            ptlb_access_cycles: 1,
            ptlb_miss_cycles: 30,
            ptlb_entry_op_cycles: 1,
            domain_id_bits: 10,
            erim_gate_cycles: 30,
            cr3_write_cycles: 300,
            libmpk_guard_key: true,
            syscall_cycles: 1500,
            pte_write_cycles: 2,
            attach_kernel_cycles: 2000,
            threads: 1,
        }
    }

    /// Seconds represented by `cycles` at the configured clock.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// Rate (events per second) for `events` occurring over `cycles`.
    #[must_use]
    pub fn per_second(&self, events: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            events as f64 * self.clock_hz / cycles as f64
        }
    }

    /// Usable (non-NULL) protection keys.
    #[must_use]
    pub fn usable_pkeys(&self) -> u32 {
        self.pkeys.saturating_sub(1)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::isca2020()
    }
}

impl fmt::Display for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Processor      {:.1} GHz, base CPI {:.2}",
            self.clock_hz / 1e9,
            self.base_cpi
        )?;
        writeln!(
            f,
            "Cache          L1D {}KB {}-way {}cy; L2 {}KB {}-way {}cy; {}B lines",
            self.l1d.entries * self.line_bytes / 1024,
            self.l1d.ways,
            self.l1d_latency,
            self.l2.entries * self.line_bytes / 1024,
            self.l2.ways,
            self.l2_latency,
            self.line_bytes
        )?;
        writeln!(f, "Memory         DRAM {}cy; NVM {}cy", self.dram_latency, self.nvm_latency)?;
        writeln!(
            f,
            "TLB            L1 {}-entry {}-way {}cy; L2 {}-entry {}-way {}cy; miss {}cy",
            self.l1_tlb.entries,
            self.l1_tlb.ways,
            self.l1_tlb_latency,
            self.l2_tlb.entries,
            self.l2_tlb.ways,
            self.l2_tlb_latency,
            self.tlb_miss_penalty
        )?;
        writeln!(f, "MPK            WRPKRU {}cy, {} keys", self.wrpkru_cycles, self.pkeys)?;
        writeln!(
            f,
            "MPK virt.      DTTLB {} entries, hit {}cy, entry-op {}cy, miss {}cy, \
             free-keys {}cy, PKRU update {}cy, TLB invalidation {}cy",
            self.dttlb_entries,
            self.dttlb_hit_cycles,
            self.dttlb_entry_op_cycles,
            self.dttlb_miss_cycles,
            self.free_keys_cycles,
            self.pkru_update_cycles,
            self.tlb_invalidation_cycles
        )?;
        writeln!(
            f,
            "Domain virt.   PTLB {} entries, access {}cy, miss {}cy, entry-op {}cy, \
             {}-bit domain IDs",
            self.ptlb_entries,
            self.ptlb_access_cycles,
            self.ptlb_miss_cycles,
            self.ptlb_entry_op_cycles,
            self.domain_id_bits
        )?;
        write!(
            f,
            "ERIM/DPTI      call gate {}cy, CR3 write {}cy",
            self.erim_gate_cycles, self.cr3_write_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let c = SimConfig::isca2020();
        assert_eq!(c.l1d.entries, 512); // 32KB / 64B
        assert_eq!(c.l1d.ways, 8);
        assert_eq!(c.l2.entries, 16384); // 1MB / 64B
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.dram_latency, 120);
        assert_eq!(c.nvm_latency, 360);
        assert_eq!(c.l1_tlb.entries, 64);
        assert_eq!(c.l2_tlb.entries, 1536);
        assert_eq!(c.tlb_miss_penalty, 30);
        assert_eq!(c.wrpkru_cycles, 27);
        assert_eq!(c.dttlb_entries, 16);
        assert_eq!(c.tlb_invalidation_cycles, 286);
        assert_eq!(c.ptlb_entries, 16);
        assert_eq!(c.ptlb_miss_cycles, 30);
    }

    #[test]
    fn geometry_sets() {
        let g = SetAssocGeometry::new(64, 4);
        assert_eq!(g.sets(), 16);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn geometry_rejects_ragged() {
        let _ = SetAssocGeometry::new(65, 4);
    }

    #[test]
    fn rate_conversion() {
        let c = SimConfig::isca2020();
        // 1M events in 2.2e9 cycles (1 second) = 1M/sec.
        let rate = c.per_second(1_000_000, 2_200_000_000);
        assert!((rate - 1.0e6).abs() < 1.0);
        assert_eq!(c.per_second(5, 0), 0.0);
        assert!((c.cycles_to_seconds(2_200_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn usable_keys_excludes_null() {
        assert_eq!(SimConfig::isca2020().usable_pkeys(), 15);
    }

    #[test]
    fn display_mentions_key_parameters() {
        let text = format!("{}", SimConfig::isca2020());
        assert!(text.contains("WRPKRU 27cy"));
        assert!(text.contains("TLB invalidation 286cy"));
        assert!(text.contains("PTLB 16 entries"));
        assert!(text.contains("call gate 30cy"));
        assert!(text.contains("CR3 write 300cy"));
    }
}
