//! Statistics counters for the architectural structures.

use std::fmt;

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read (load) hits.
    pub read_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write (store) hits.
    pub write_hits: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Dirty evictions (writeback traffic).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Total misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss ratio in [0, 1]; 0 when there were no accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let accesses = self.accesses();
        if accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%), {} writebacks",
            self.accesses(),
            self.misses(),
            self.miss_ratio() * 100.0,
            self.writebacks
        )
    }
}

/// Counters for the TLB hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// L1 TLB hits.
    pub l1_hits: u64,
    /// L2 TLB hits (L1 misses that hit L2).
    pub l2_hits: u64,
    /// Full misses (page walks).
    pub misses: u64,
    /// Entries invalidated (by single, range, or full flushes).
    pub invalidations: u64,
    /// Ranged shootdowns performed.
    pub shootdowns: u64,
}

impl TlbStats {
    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.misses
    }

    /// Full-miss ratio in [0, 1].
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.misses as f64 / lookups as f64
        }
    }
}

impl fmt::Display for TlbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lookups, {} walks ({:.3}%), {} invalidated in {} shootdowns",
            self.lookups(),
            self.misses,
            self.miss_ratio() * 100.0,
            self.invalidations,
            self.shootdowns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_ratios() {
        let s = CacheStats {
            read_hits: 6,
            read_misses: 2,
            write_hits: 1,
            write_misses: 1,
            evictions: 0,
            writebacks: 0,
        };
        assert_eq!(s.accesses(), 10);
        assert_eq!(s.misses(), 3);
        assert!((s.miss_ratio() - 0.3).abs() < 1e-12);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn empty_ratios_are_zero() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
        assert_eq!(TlbStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn tlb_totals() {
        let s = TlbStats { l1_hits: 90, l2_hits: 5, misses: 5, invalidations: 3, shootdowns: 1 };
        assert_eq!(s.lookups(), 100);
        assert!((s.miss_ratio() - 0.05).abs() < 1e-12);
        assert!(!format!("{s}").is_empty());
    }
}
