//! A deterministic fixed-size worker pool for fanning independent
//! campaign cells across threads.
//!
//! [`parallel_map`] preserves input order in its output no matter how the
//! scheduler interleaves the workers, so campaign results merged from a
//! parallel run are byte-identical to a `jobs = 1` run: parallelism moves
//! wall-clock time, never output bytes. Plain `std` threads — the
//! workspace takes no external dependencies.

use std::sync::Mutex;

/// Maps `work` over `items` on up to `jobs` worker threads, returning the
/// results in input order.
///
/// Workers pull the next unclaimed item from a shared cursor, so uneven
/// item costs balance automatically. With `jobs <= 1` (or a single item)
/// this degenerates to a plain serial map on the calling thread — no
/// threads are spawned, which keeps single-job runs bit-for-bit on the
/// exact code path they always had.
///
/// # Panics
///
/// A panic inside `work` propagates to the caller (at scope join when
/// parallel, immediately when serial).
pub fn parallel_map<I, O, F>(jobs: usize, items: Vec<I>, work: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let workers = jobs.min(items.len());
    if workers <= 1 {
        return items.into_iter().map(work).collect();
    }
    let count = items.len();
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut slots: Vec<Mutex<Option<O>>> = Vec::new();
    slots.resize_with(count, || Mutex::new(None));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    // Hold the queue lock only to claim an index; the
                    // work itself runs unlocked.
                    let claimed = queue.lock().unwrap().next();
                    match claimed {
                        Some((index, item)) => {
                            let result = work(item);
                            *slots[index].lock().unwrap() = Some(result);
                        }
                        None => break,
                    }
                })
            })
            .collect();
        for handle in handles {
            // Re-raise a worker panic with its original payload so the
            // caller sees the real failure, not "a scoped thread
            // panicked".
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled every claimed slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(1, items.clone(), |x| x * x);
        let parallel = parallel_map(4, items, |x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 49);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = parallel_map(8, (0..37).collect::<Vec<i32>>(), |x| {
            hits.fetch_add(1, Ordering::SeqCst);
            x + 1
        });
        assert_eq!(hits.load(Ordering::SeqCst), 37);
        assert_eq!(out.len(), 37);
        assert_eq!(out[36], 37);
    }

    #[test]
    fn zero_jobs_and_empty_inputs_are_fine() {
        assert_eq!(parallel_map(0, vec![1, 2, 3], |x| x * 10), vec![10, 20, 30]);
        assert_eq!(parallel_map(4, Vec::<i32>::new(), |x| x), Vec::<i32>::new());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = parallel_map(4, vec![1, 2, 3, 4], |x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
