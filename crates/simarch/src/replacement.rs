//! Replacement policies for set-associative structures.
//!
//! The paper specifies pseudo-LRU ("Pseudo LRU in our implementation",
//! §IV.D) for the DTTLB victim selection; caches and TLBs here support both
//! true LRU and tree-PLRU so the difference can be studied as an ablation.

use std::fmt;

/// Which replacement policy a structure uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Policy {
    /// True least-recently-used.
    Lru,
    /// Tree-based pseudo-LRU (the common hardware implementation).
    #[default]
    TreePlru,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Lru => f.write_str("LRU"),
            Policy::TreePlru => f.write_str("tree-PLRU"),
        }
    }
}

/// Replacement state for one set of `ways` ways.
///
/// `touch(way)` records a use; `victim()` returns the way to evict (without
/// modifying state); filling the returned victim should be followed by a
/// `touch`.
#[derive(Clone, Debug)]
pub enum SetState {
    /// True LRU: stack of way indices, most recent last.
    Lru(Vec<u8>),
    /// Tree-PLRU: one bit per internal node of a complete binary tree.
    TreePlru {
        /// Tree bits; bit `i` covers internal node `i` (root = 0). A bit of
        /// 0 means "the LRU side is the left subtree".
        bits: u64,
        /// Number of ways (power of two for the tree; rounded up otherwise).
        ways: u8,
    },
}

impl SetState {
    /// Creates replacement state for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0` or `ways > 64`.
    #[must_use]
    pub fn new(policy: Policy, ways: u8) -> Self {
        assert!(ways > 0 && ways <= 64, "ways must be in 1..=64");
        match policy {
            Policy::Lru => SetState::Lru((0..ways).collect()),
            Policy::TreePlru => SetState::TreePlru { bits: 0, ways },
        }
    }

    /// Records a use of `way`.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: u8) {
        match self {
            SetState::Lru(stack) => {
                let pos = stack.iter().position(|&w| w == way).expect("way out of range");
                let w = stack.remove(pos);
                stack.push(w);
            }
            SetState::TreePlru { bits, ways } => {
                assert!(way < *ways, "way out of range");
                let leaves = (*ways as u64).next_power_of_two();
                let mut node: u64 = 1; // 1-based heap index
                let mut lo = 0u64;
                let mut hi = leaves;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = u64::from(way) >= mid;
                    // Point the PLRU bit *away* from the touched way.
                    if go_right {
                        *bits &= !(1 << (node - 1)); // LRU side = left
                        lo = mid;
                        node = node * 2 + 1;
                    } else {
                        *bits |= 1 << (node - 1); // LRU side = right
                        hi = mid;
                        node *= 2;
                    }
                }
            }
        }
    }

    /// The way the policy would evict next.
    #[must_use]
    pub fn victim(&self) -> u8 {
        match self {
            SetState::Lru(stack) => stack[0],
            SetState::TreePlru { bits, ways } => {
                let leaves = (*ways as u64).next_power_of_two();
                let mut node: u64 = 1;
                let mut lo = 0u64;
                let mut hi = leaves;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if bits & (1 << (node - 1)) == 0 {
                        hi = mid;
                        node *= 2;
                    } else {
                        lo = mid;
                        node = node * 2 + 1;
                    }
                }
                let way = lo as u8;
                if way < *ways {
                    return way;
                }
                // Non-power-of-two associativity: the tree pointed at a
                // phantom leaf; fall back to the first way, which is
                // always valid. (Geometries in this workspace are powers
                // of two except the 6-way L2 TLB, where this bias is an
                // acceptable PLRU approximation.)
                way % *ways
            }
        }
    }

    /// Number of ways covered by this state.
    #[must_use]
    pub fn ways(&self) -> u8 {
        match self {
            SetState::Lru(stack) => stack.len() as u8,
            SetState::TreePlru { ways, .. } => *ways,
        }
    }
}

/// Replacement state for *every* set of one structure, packed one `u64`
/// per set. This is what caches and TLBs embed: per-way tree-PLRU touch
/// masks are precomputed once and shared across sets, so a touch is two
/// table loads and one read-modify-write on the set's word — where a
/// [`SetState`] per set costs 4 words of storage, an enum dispatch, and a
/// data-dependent tree walk per touch. [`SetState`] remains the
/// single-set reference implementation; the two are equivalence-tested.
///
/// True LRU packs the recency stack into nibbles of the set word and is
/// therefore limited to 16 ways (every shipped LRU geometry is far
/// smaller; tree-PLRU supports up to 64).
#[derive(Clone, Debug)]
pub struct ReplArray {
    policy: Policy,
    ways: u8,
    /// One packed state word per set: tree bits (PLRU) or the nibble
    /// recency stack, LRU way in the lowest nibble (LRU).
    bits: Vec<u64>,
    /// Per-way `(and_not, or)` touch masks (PLRU only): touching way `w`
    /// points every tree node on its root-to-leaf path away from it.
    touch_masks: Vec<(u64, u64)>,
}

impl ReplArray {
    /// Creates replacement state for `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is 0, exceeds 64, or exceeds 16 under true LRU.
    #[must_use]
    pub fn new(policy: Policy, ways: u8, sets: usize) -> Self {
        assert!(ways > 0 && ways <= 64, "ways must be in 1..=64");
        let (init, touch_masks) = match policy {
            Policy::Lru => {
                assert!(ways <= 16, "packed true LRU supports at most 16 ways");
                let mut stack = 0u64;
                for w in 0..u64::from(ways) {
                    stack |= w << (4 * w);
                }
                (stack, Vec::new())
            }
            Policy::TreePlru => {
                let masks = (0..ways)
                    .map(|way| {
                        let leaves = u64::from(ways).next_power_of_two();
                        let (mut and_not, mut or) = (0u64, 0u64);
                        let (mut node, mut lo, mut hi) = (1u64, 0u64, leaves);
                        while hi - lo > 1 {
                            let mid = (lo + hi) / 2;
                            if u64::from(way) >= mid {
                                and_not |= 1 << (node - 1);
                                lo = mid;
                                node = node * 2 + 1;
                            } else {
                                or |= 1 << (node - 1);
                                hi = mid;
                                node *= 2;
                            }
                        }
                        (!and_not, or)
                    })
                    .collect();
                (0, masks)
            }
        };
        ReplArray { policy, ways, bits: vec![init; sets], touch_masks }
    }

    /// Records a use of `way` in `set`.
    #[inline]
    pub fn touch(&mut self, set: usize, way: u8) {
        match self.policy {
            Policy::TreePlru => {
                let (and, or) = self.touch_masks[way as usize];
                let b = &mut self.bits[set];
                *b = (*b & and) | or;
            }
            Policy::Lru => {
                let b = &mut self.bits[set];
                let stack = *b;
                let mut rebuilt = 0u64;
                let mut out = 0;
                for pos in 0..u64::from(self.ways) {
                    let w = (stack >> (4 * pos)) & 0xF;
                    if w != u64::from(way) {
                        rebuilt |= w << (4 * out);
                        out += 1;
                    }
                }
                debug_assert!(out == u64::from(self.ways) - 1, "way out of range");
                rebuilt |= u64::from(way) << (4 * out);
                *b = rebuilt;
            }
        }
    }

    /// The way `set` would evict next (state is not modified).
    #[must_use]
    #[inline]
    pub fn victim(&self, set: usize) -> u8 {
        match self.policy {
            Policy::TreePlru => {
                let bits = self.bits[set];
                let leaves = u64::from(self.ways).next_power_of_two();
                let (mut node, mut lo, mut hi) = (1u64, 0u64, leaves);
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if bits & (1 << (node - 1)) == 0 {
                        hi = mid;
                        node *= 2;
                    } else {
                        lo = mid;
                        node = node * 2 + 1;
                    }
                }
                // Non-power-of-two associativity: phantom leaves fold back
                // into range (same bias as [`SetState::victim`]).
                (lo as u8) % self.ways
            }
            Policy::Lru => (self.bits[set] & 0xF) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = SetState::new(Policy::Lru, 4);
        for w in 0..4 {
            s.touch(w);
        }
        assert_eq!(s.victim(), 0);
        s.touch(0);
        assert_eq!(s.victim(), 1);
        s.touch(1);
        s.touch(2);
        assert_eq!(s.victim(), 3);
    }

    #[test]
    fn plru_never_evicts_most_recent() {
        let mut s = SetState::new(Policy::TreePlru, 8);
        for round in 0u8..64 {
            let way = round % 8;
            s.touch(way);
            assert_ne!(s.victim(), way, "PLRU must not evict the just-touched way");
        }
    }

    #[test]
    fn plru_covers_all_ways_over_time() {
        // Repeatedly touching the victim must cycle through every way.
        let mut s = SetState::new(Policy::TreePlru, 8);
        let mut seen = [false; 8];
        for _ in 0..64 {
            let v = s.victim();
            seen[v as usize] = true;
            s.touch(v);
        }
        assert!(seen.iter().all(|&b| b), "victims seen: {seen:?}");
    }

    #[test]
    fn two_way_plru_behaves_like_lru() {
        let mut plru = SetState::new(Policy::TreePlru, 2);
        let mut lru = SetState::new(Policy::Lru, 2);
        for &w in &[0u8, 1, 1, 0, 1, 0, 0] {
            plru.touch(w);
            lru.touch(w);
            assert_eq!(plru.victim(), lru.victim());
        }
    }

    #[test]
    fn single_way() {
        let mut s = SetState::new(Policy::TreePlru, 1);
        s.touch(0);
        assert_eq!(s.victim(), 0);
        let mut s = SetState::new(Policy::Lru, 1);
        s.touch(0);
        assert_eq!(s.victim(), 0);
    }

    #[test]
    fn non_power_of_two_ways_stay_in_range() {
        let mut s = SetState::new(Policy::TreePlru, 6);
        for w in 0..6 {
            s.touch(w);
            assert!(s.victim() < 6);
        }
        assert_eq!(s.ways(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn touch_out_of_range_panics() {
        let mut s = SetState::new(Policy::TreePlru, 4);
        s.touch(4);
    }

    /// The packed array must agree with the reference single-set state on
    /// every victim decision under identical touch streams.
    #[test]
    fn repl_array_matches_set_state() {
        for policy in [Policy::Lru, Policy::TreePlru] {
            for ways in [1u8, 2, 4, 6, 8, 16] {
                let mut reference: Vec<SetState> =
                    (0..3).map(|_| SetState::new(policy, ways)).collect();
                let mut packed = ReplArray::new(policy, ways, 3);
                let mut x = 0x9e3779b97f4a7c15u64;
                for step in 0..500 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let set = (x >> 32) as usize % 3;
                    let way = ((x >> 40) % u64::from(ways)) as u8;
                    reference[set].touch(way);
                    packed.touch(set, way);
                    for (s, r) in reference.iter().enumerate() {
                        assert_eq!(
                            r.victim(),
                            packed.victim(s),
                            "policy {policy} ways {ways} step {step} set {s}"
                        );
                    }
                }
            }
        }
    }
}
