//! Replacement policies for set-associative structures.
//!
//! The paper specifies pseudo-LRU ("Pseudo LRU in our implementation",
//! §IV.D) for the DTTLB victim selection; caches and TLBs here support both
//! true LRU and tree-PLRU so the difference can be studied as an ablation.

use std::fmt;

/// Which replacement policy a structure uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Policy {
    /// True least-recently-used.
    Lru,
    /// Tree-based pseudo-LRU (the common hardware implementation).
    #[default]
    TreePlru,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Lru => f.write_str("LRU"),
            Policy::TreePlru => f.write_str("tree-PLRU"),
        }
    }
}

/// Replacement state for one set of `ways` ways.
///
/// `touch(way)` records a use; `victim()` returns the way to evict (without
/// modifying state); filling the returned victim should be followed by a
/// `touch`.
#[derive(Clone, Debug)]
pub enum SetState {
    /// True LRU: stack of way indices, most recent last.
    Lru(Vec<u8>),
    /// Tree-PLRU: one bit per internal node of a complete binary tree.
    TreePlru {
        /// Tree bits; bit `i` covers internal node `i` (root = 0). A bit of
        /// 0 means "the LRU side is the left subtree".
        bits: u64,
        /// Number of ways (power of two for the tree; rounded up otherwise).
        ways: u8,
    },
}

impl SetState {
    /// Creates replacement state for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0` or `ways > 64`.
    #[must_use]
    pub fn new(policy: Policy, ways: u8) -> Self {
        assert!(ways > 0 && ways <= 64, "ways must be in 1..=64");
        match policy {
            Policy::Lru => SetState::Lru((0..ways).collect()),
            Policy::TreePlru => SetState::TreePlru { bits: 0, ways },
        }
    }

    /// Records a use of `way`.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn touch(&mut self, way: u8) {
        match self {
            SetState::Lru(stack) => {
                let pos = stack.iter().position(|&w| w == way).expect("way out of range");
                let w = stack.remove(pos);
                stack.push(w);
            }
            SetState::TreePlru { bits, ways } => {
                assert!(way < *ways, "way out of range");
                let leaves = (*ways as u64).next_power_of_two();
                let mut node: u64 = 1; // 1-based heap index
                let mut lo = 0u64;
                let mut hi = leaves;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = u64::from(way) >= mid;
                    // Point the PLRU bit *away* from the touched way.
                    if go_right {
                        *bits &= !(1 << (node - 1)); // LRU side = left
                        lo = mid;
                        node = node * 2 + 1;
                    } else {
                        *bits |= 1 << (node - 1); // LRU side = right
                        hi = mid;
                        node *= 2;
                    }
                }
            }
        }
    }

    /// The way the policy would evict next.
    #[must_use]
    pub fn victim(&self) -> u8 {
        match self {
            SetState::Lru(stack) => stack[0],
            SetState::TreePlru { bits, ways } => {
                let leaves = (*ways as u64).next_power_of_two();
                let mut node: u64 = 1;
                let mut lo = 0u64;
                let mut hi = leaves;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if bits & (1 << (node - 1)) == 0 {
                        hi = mid;
                        node *= 2;
                    } else {
                        lo = mid;
                        node = node * 2 + 1;
                    }
                }
                let way = lo as u8;
                if way < *ways {
                    return way;
                }
                // Non-power-of-two associativity: the tree pointed at a
                // phantom leaf; fall back to the first way, which is
                // always valid. (Geometries in this workspace are powers
                // of two except the 6-way L2 TLB, where this bias is an
                // acceptable PLRU approximation.)
                way % *ways
            }
        }
    }

    /// Number of ways covered by this state.
    #[must_use]
    pub fn ways(&self) -> u8 {
        match self {
            SetState::Lru(stack) => stack.len() as u8,
            SetState::TreePlru { ways, .. } => *ways,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = SetState::new(Policy::Lru, 4);
        for w in 0..4 {
            s.touch(w);
        }
        assert_eq!(s.victim(), 0);
        s.touch(0);
        assert_eq!(s.victim(), 1);
        s.touch(1);
        s.touch(2);
        assert_eq!(s.victim(), 3);
    }

    #[test]
    fn plru_never_evicts_most_recent() {
        let mut s = SetState::new(Policy::TreePlru, 8);
        for round in 0u8..64 {
            let way = round % 8;
            s.touch(way);
            assert_ne!(s.victim(), way, "PLRU must not evict the just-touched way");
        }
    }

    #[test]
    fn plru_covers_all_ways_over_time() {
        // Repeatedly touching the victim must cycle through every way.
        let mut s = SetState::new(Policy::TreePlru, 8);
        let mut seen = [false; 8];
        for _ in 0..64 {
            let v = s.victim();
            seen[v as usize] = true;
            s.touch(v);
        }
        assert!(seen.iter().all(|&b| b), "victims seen: {seen:?}");
    }

    #[test]
    fn two_way_plru_behaves_like_lru() {
        let mut plru = SetState::new(Policy::TreePlru, 2);
        let mut lru = SetState::new(Policy::Lru, 2);
        for &w in &[0u8, 1, 1, 0, 1, 0, 0] {
            plru.touch(w);
            lru.touch(w);
            assert_eq!(plru.victim(), lru.victim());
        }
    }

    #[test]
    fn single_way() {
        let mut s = SetState::new(Policy::TreePlru, 1);
        s.touch(0);
        assert_eq!(s.victim(), 0);
        let mut s = SetState::new(Policy::Lru, 1);
        s.touch(0);
        assert_eq!(s.victim(), 0);
    }

    #[test]
    fn non_power_of_two_ways_stay_in_range() {
        let mut s = SetState::new(Policy::TreePlru, 6);
        for w in 0..6 {
            s.touch(w);
            assert!(s.victim() < 6);
        }
        assert_eq!(s.ways(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn touch_out_of_range_panics() {
        let mut s = SetState::new(Policy::TreePlru, 4);
        s.touch(4);
    }
}
