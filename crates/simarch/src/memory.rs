//! Main-memory model: DRAM and NVM latencies plus traffic counters.

use std::fmt;

/// The kind of physical memory backing an address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Volatile DRAM.
    Dram,
    /// Non-volatile memory (PMO backing store); 3x DRAM latency in Table II.
    Nvm,
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::Dram => f.write_str("DRAM"),
            MemKind::Nvm => f.write_str("NVM"),
        }
    }
}

/// Flat main-memory timing model with per-kind traffic counters.
#[derive(Clone, Debug, Default)]
pub struct MainMemory {
    dram_latency: u64,
    nvm_latency: u64,
    dram_reads: u64,
    dram_writes: u64,
    nvm_reads: u64,
    nvm_writes: u64,
}

impl MainMemory {
    /// Creates a memory model with the given latencies.
    #[must_use]
    pub fn new(dram_latency: u64, nvm_latency: u64) -> Self {
        MainMemory { dram_latency, nvm_latency, ..Self::default() }
    }

    /// Performs a read; returns its latency.
    pub fn read(&mut self, kind: MemKind) -> u64 {
        match kind {
            MemKind::Dram => {
                self.dram_reads += 1;
                self.dram_latency
            }
            MemKind::Nvm => {
                self.nvm_reads += 1;
                self.nvm_latency
            }
        }
    }

    /// Performs a write. Writebacks are asynchronous in the timing model, so
    /// this returns no latency; `destination` records where traffic goes and
    /// `requester_kind` is accepted for symmetry with [`MainMemory::read`].
    pub fn write(&mut self, destination: MemKind, _requester_kind: MemKind) {
        match destination {
            MemKind::Dram => self.dram_writes += 1,
            MemKind::Nvm => self.nvm_writes += 1,
        }
    }

    /// Latency of a synchronous write (used by persist fences that must
    /// wait for NVM).
    #[must_use]
    pub fn write_latency(&self, kind: MemKind) -> u64 {
        match kind {
            MemKind::Dram => self.dram_latency,
            MemKind::Nvm => self.nvm_latency,
        }
    }

    /// DRAM read count.
    #[must_use]
    pub fn dram_reads(&self) -> u64 {
        self.dram_reads
    }

    /// DRAM write count.
    #[must_use]
    pub fn dram_writes(&self) -> u64 {
        self.dram_writes
    }

    /// NVM read count.
    #[must_use]
    pub fn nvm_reads(&self) -> u64 {
        self.nvm_reads
    }

    /// NVM write count.
    #[must_use]
    pub fn nvm_writes(&self) -> u64 {
        self.nvm_writes
    }
}

impl fmt::Display for MainMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DRAM {}r/{}w, NVM {}r/{}w",
            self.dram_reads, self.dram_writes, self.nvm_reads, self.nvm_writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_and_counts() {
        let mut m = MainMemory::new(120, 360);
        assert_eq!(m.read(MemKind::Dram), 120);
        assert_eq!(m.read(MemKind::Nvm), 360);
        m.write(MemKind::Nvm, MemKind::Nvm);
        m.write(MemKind::Dram, MemKind::Dram);
        assert_eq!(m.dram_reads(), 1);
        assert_eq!(m.nvm_reads(), 1);
        assert_eq!(m.dram_writes(), 1);
        assert_eq!(m.nvm_writes(), 1);
        assert_eq!(m.write_latency(MemKind::Nvm), 360);
        assert!(!format!("{m}").is_empty());
    }
}
