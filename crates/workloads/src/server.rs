//! A multi-threaded server workload: the paper's motivating scenario
//! (§I/§IV.B) as a benchmark.
//!
//! One handler thread per client, one PMO per client holding that
//! client's key-value data. Requests arrive round-robin; the core context
//! switches between handler threads every `quantum` requests, which
//! exercises exactly the state the two designs must flush on a switch
//! (PKRU + DTTLB for design 1, PTLB — but *not* the TLB — for design 2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmo_runtime::{Mode, PmRuntime};
use pmo_trace::{OpKind, Perm, PmoId, ThreadId, TraceEvent, TraceSink};

use crate::structs::{KeyedStructure, PersistentHashmap};
use crate::Workload;

/// Configuration of the server workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Clients (= handler threads = PMOs).
    pub clients: u32,
    /// Total requests served.
    pub requests: u64,
    /// Requests served before the core switches to another handler.
    pub quantum: u32,
    /// Key-value pairs pre-loaded per client.
    pub initial_records: u32,
    /// Size of each client's PMO.
    pub pmo_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            clients: 32,
            requests: 4_000,
            quantum: 4,
            initial_records: 64,
            pmo_bytes: 8 << 20,
            seed: 0x5e7e,
        }
    }
}

struct ServerState {
    rt: PmRuntime,
    pools: Vec<PmoId>,
    maps: Vec<PersistentHashmap>,
    rng: StdRng,
}

/// The multi-threaded per-client-PMO server workload.
pub struct ServerWorkload {
    config: ServerConfig,
    state: Option<ServerState>,
}

impl ServerWorkload {
    /// Creates the workload.
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        ServerWorkload { config, state: None }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }
}

impl Workload for ServerWorkload {
    fn name(&self) -> String {
        format!("server-{}clients-q{}", self.config.clients, self.config.quantum)
    }

    fn setup(&mut self, sink: &mut dyn TraceSink) {
        let cfg = &self.config;
        let mut rt = PmRuntime::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut pools = Vec::with_capacity(cfg.clients as usize);
        let mut maps = Vec::with_capacity(cfg.clients as usize);
        for client in 0..cfg.clients {
            let pool = rt
                .pool_create(&format!("client-{client:03}"), cfg.pmo_bytes, Mode::private(), sink)
                .expect("pool");
            pools.push(pool);
        }
        // Each handler thread populates its own client's store inside its
        // own permission window — other threads never gain access.
        for (client, &pool) in pools.iter().enumerate() {
            sink.event(TraceEvent::ThreadSwitch { thread: ThreadId::new(client as u32) });
            sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
            let mut map =
                PersistentHashmap::with_buckets(&mut rt, pool, 256, 64, sink).expect("map");
            for _ in 0..cfg.initial_records {
                map.insert(&mut rt, rng.gen(), sink).expect("insert");
            }
            sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadOnly });
            maps.push(map);
        }
        self.state = Some(ServerState { rt, pools, maps, rng });
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let cfg = self.config.clone();
        let state = self.state.as_mut().expect("setup() must run before run()");
        let mut current: u32 = u32::MAX;
        for request in 0..cfg.requests {
            // Scheduler: rotate handler threads every `quantum` requests.
            let handler = (request / u64::from(cfg.quantum)) as u32 % cfg.clients;
            if handler != current {
                sink.event(TraceEvent::ThreadSwitch { thread: ThreadId::new(handler) });
                current = handler;
            }
            let idx = handler as usize;
            let pool = state.pools[idx];
            sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
            sink.event(TraceEvent::Op { kind: OpKind::Begin });
            // The request: one put or get on the client's own store.
            if state.rng.gen_bool(0.5) {
                let key = state.rng.gen();
                state.maps[idx].insert(&mut state.rt, key, sink).expect("put");
            } else {
                let key = state.rng.gen();
                let _ = state.maps[idx].contains(&mut state.rt, key, sink).expect("get");
            }
            sink.event(TraceEvent::Op { kind: OpKind::End });
            sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadOnly });
            sink.compute(2_000); // request parsing / response formatting
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmo_trace::TraceStats;

    fn tiny() -> ServerWorkload {
        ServerWorkload::new(ServerConfig {
            clients: 6,
            requests: 120,
            quantum: 5,
            initial_records: 8,
            pmo_bytes: 1 << 20,
            seed: 1,
        })
    }

    #[test]
    fn generates_multithreaded_trace() {
        let mut w = tiny();
        let mut stats = TraceStats::new();
        w.setup(&mut stats);
        w.run(&mut stats);
        let c = stats.counts();
        assert_eq!(c.attaches, 6);
        assert_eq!(c.ops, 120);
        assert!(c.thread_switches >= 120 / 5, "quantum-driven switches");
        assert_eq!(stats.touched_pmos(), 6);
    }

    #[test]
    fn quantum_controls_switch_count() {
        let switches = |quantum: u32| {
            let mut w = tiny();
            w.config.quantum = quantum;
            let mut stats = TraceStats::new();
            w.setup(&mut stats);
            w.run(&mut stats);
            stats.counts().thread_switches
        };
        assert!(switches(1) > switches(30));
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut w = tiny();
            let mut t = pmo_trace::RecordedTrace::new();
            w.setup(&mut t);
            w.run(&mut t);
            t
        };
        assert_eq!(run(), run());
    }
}
