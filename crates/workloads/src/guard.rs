//! Per-access permission instrumentation (the paper's Table V protocol).
//!
//! "We insert `pkey_set`/WRPKRU before and after every PMO access to
//! enable or disable the access" (§V). This sink adapter watches the
//! attach/detach events flowing through it and wraps every load/store that
//! lands in an attached PMO region with an enable/disable SETPERM pair.

use pmo_trace::{Perm, PmoId, TraceEvent, TraceSink, Va};

/// Sink adapter injecting per-access permission switches.
#[derive(Debug)]
pub struct PerAccessGuard<S> {
    inner: S,
    regions: Vec<(Va, Va, PmoId)>,
}

impl<S: TraceSink> PerAccessGuard<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        PerAccessGuard { inner, regions: Vec::new() }
    }

    /// Wraps `inner` with a pre-known region list (for resuming guarding
    /// in a later workload phase, after the attach events already flowed).
    pub fn with_regions(inner: S, regions: Vec<(Va, Va, PmoId)>) -> Self {
        PerAccessGuard { inner, regions }
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Unwraps into the inner sink and the learned region list.
    pub fn into_parts(self) -> (S, Vec<(Va, Va, PmoId)>) {
        (self.inner, self.regions)
    }

    fn pmo_at(&self, va: Va) -> Option<PmoId> {
        self.regions.iter().find(|(base, end, _)| va >= *base && va < *end).map(|(_, _, pmo)| *pmo)
    }
}

impl<S: TraceSink> TraceSink for PerAccessGuard<S> {
    fn event(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Attach { pmo, base, size, .. } => {
                self.regions.push((base, base + size, pmo));
                self.inner.event(ev);
            }
            TraceEvent::Detach { pmo } => {
                self.regions.retain(|(_, _, p)| *p != pmo);
                self.inner.event(ev);
            }
            TraceEvent::Load { va, .. }
            | TraceEvent::Store { va, .. }
            | TraceEvent::StoreData { va, .. } => match self.pmo_at(va) {
                Some(pmo) => {
                    let perm = if !matches!(ev, TraceEvent::Load { .. }) {
                        Perm::ReadWrite
                    } else {
                        Perm::ReadOnly
                    };
                    self.inner.event(TraceEvent::SetPerm { pmo, perm });
                    self.inner.event(ev);
                    self.inner.event(TraceEvent::SetPerm { pmo, perm: Perm::None });
                }
                None => self.inner.event(ev),
            },
            other => self.inner.event(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmo_trace::RecordedTrace;

    #[test]
    fn wraps_pmo_accesses_only() {
        let mut guard = PerAccessGuard::new(RecordedTrace::new());
        guard.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: 0x1000,
            size: 0x1000,
            nvm: true,
        });
        guard.load(0x1008, 8); // inside: wrapped
        guard.store(0x9000, 8); // outside: passed through
        let trace = guard.into_inner();
        let events = trace.events();
        assert_eq!(events.len(), 5);
        assert!(matches!(events[1], TraceEvent::SetPerm { perm: Perm::ReadOnly, .. }));
        assert!(matches!(events[2], TraceEvent::Load { va: 0x1008, .. }));
        assert!(matches!(events[3], TraceEvent::SetPerm { perm: Perm::None, .. }));
        assert!(matches!(events[4], TraceEvent::Store { va: 0x9000, .. }));
    }

    #[test]
    fn stores_get_readwrite() {
        let mut guard = PerAccessGuard::new(RecordedTrace::new());
        guard.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: 0x1000,
            size: 0x1000,
            nvm: true,
        });
        guard.store(0x1000, 8);
        let trace = guard.into_inner();
        assert!(matches!(trace.events()[1], TraceEvent::SetPerm { perm: Perm::ReadWrite, .. }));
    }

    #[test]
    fn detach_stops_wrapping() {
        let mut guard = PerAccessGuard::new(RecordedTrace::new());
        guard.event(TraceEvent::Attach {
            pmo: PmoId::new(1),
            base: 0x1000,
            size: 0x1000,
            nvm: true,
        });
        guard.event(TraceEvent::Detach { pmo: PmoId::new(1) });
        guard.load(0x1000, 8);
        let trace = guard.into_inner();
        assert_eq!(trace.len(), 3, "no SetPerm injected after detach");
    }

    #[test]
    fn other_events_pass_through() {
        let mut guard = PerAccessGuard::new(RecordedTrace::new());
        guard.compute(5);
        guard.event(TraceEvent::Fence);
        assert_eq!(guard.into_inner().len(), 2);
    }
}
