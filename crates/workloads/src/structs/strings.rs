//! A persistent string array (Table IV's "String Swap").
//!
//! A fixed array of fixed-width strings; the benchmark operation swaps two
//! randomly chosen entries. "For each swap operation, two 64-byte strings
//! get swapped ... incurring only up to two TLB misses" — the
//! best-locality microbenchmark (§VI.B).

use pmo_runtime::{Oid, PmRuntime, Result};
use pmo_trace::{PmoId, TraceSink};

use super::value_for;

// Root-object layout.
const ARRAY_PTR: u32 = 0;
const SLOTS: u32 = 8;
const SWAPS: u32 = 16;
const ROOT_OBJ_SIZE: u64 = 24;

/// A persistent array of fixed-width strings.
#[derive(Debug)]
pub struct StringArray {
    array: Oid,
    meta: Oid,
    slots: u64,
    string_bytes: u32,
    swaps: u64,
}

impl StringArray {
    /// Creates (or re-opens) an array of `slots` strings of
    /// `string_bytes` each, initialized to the deterministic value of
    /// their index.
    ///
    /// # Errors
    ///
    /// Fails on allocation failure or detached pool.
    pub fn create(
        rt: &mut PmRuntime,
        pool: PmoId,
        slots: u64,
        string_bytes: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Self> {
        let meta = rt.pool_root(pool, ROOT_OBJ_SIZE, sink)?;
        let existing = rt.read_oid(meta, ARRAY_PTR, sink)?;
        if !existing.is_null() {
            let slots = rt.read_u64(meta, SLOTS, sink)?;
            let swaps = rt.read_u64(meta, SWAPS, sink)?;
            return Ok(StringArray { array: existing, meta, slots, string_bytes, swaps });
        }
        let array = rt.pmalloc(pool, slots * u64::from(string_bytes), sink)?;
        for i in 0..slots {
            let value = value_for(i, string_bytes);
            rt.write_bytes(array, (i * u64::from(string_bytes)) as u32, &value, sink)?;
        }
        rt.persist(array, 0, slots * u64::from(string_bytes), sink)?;
        rt.write_oid(meta, ARRAY_PTR, array, sink)?;
        rt.write_u64(meta, SLOTS, slots, sink)?;
        rt.write_u64(meta, SWAPS, 0, sink)?;
        rt.persist(meta, 0, ROOT_OBJ_SIZE, sink)?;
        Ok(StringArray { array, meta, slots, string_bytes, swaps: 0 })
    }

    fn offset(&self, slot: u64) -> u32 {
        (slot * u64::from(self.string_bytes)) as u32
    }

    /// Reads the string at `slot`.
    ///
    /// # Errors
    ///
    /// Fails if `slot` is out of range.
    pub fn read_slot(
        &self,
        rt: &mut PmRuntime,
        slot: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<Vec<u8>> {
        self.check_slot(slot)?;
        let mut buf = vec![0u8; self.string_bytes as usize];
        rt.read_bytes(self.array, self.offset(slot), &mut buf, sink)?;
        Ok(buf)
    }

    fn check_slot(&self, slot: u64) -> Result<()> {
        if slot >= self.slots {
            return Err(pmo_runtime::RuntimeError::InvalidOid {
                oid: slot,
                reason: "string slot out of range",
            });
        }
        Ok(())
    }

    /// Swaps the strings at `a` and `b`.
    ///
    /// # Errors
    ///
    /// Fails if either slot is out of range.
    pub fn swap(
        &mut self,
        rt: &mut PmRuntime,
        a: u64,
        b: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        self.check_slot(a)?;
        self.check_slot(b)?;
        let sa = self.read_slot(rt, a, sink)?;
        let sb = self.read_slot(rt, b, sink)?;
        sink.compute(8);
        rt.write_bytes(self.array, self.offset(a), &sb, sink)?;
        rt.write_bytes(self.array, self.offset(b), &sa, sink)?;
        rt.persist(self.array, self.offset(a), u64::from(self.string_bytes), sink)?;
        rt.persist(self.array, self.offset(b), u64::from(self.string_bytes), sink)?;
        self.swaps += 1;
        rt.write_u64(self.meta, SWAPS, self.swaps, sink)?;
        Ok(())
    }

    /// Number of slots.
    #[must_use]
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Swaps performed over the array's lifetime.
    #[must_use]
    pub fn swaps(&self) -> u64 {
        self.swaps
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn swap_exchanges_contents() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut arr = StringArray::create(&mut rt, pool, 16, 64, &mut sink).unwrap();
        let a0 = arr.read_slot(&mut rt, 0, &mut sink).unwrap();
        let a5 = arr.read_slot(&mut rt, 5, &mut sink).unwrap();
        assert_ne!(a0, a5);
        arr.swap(&mut rt, 0, 5, &mut sink).unwrap();
        assert_eq!(arr.read_slot(&mut rt, 0, &mut sink).unwrap(), a5);
        assert_eq!(arr.read_slot(&mut rt, 5, &mut sink).unwrap(), a0);
        assert_eq!(arr.swaps(), 1);
    }

    #[test]
    fn swaps_preserve_multiset() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut arr = StringArray::create(&mut rt, pool, 32, 16, &mut sink).unwrap();
        let mut before: Vec<Vec<u8>> =
            (0..32).map(|i| arr.read_slot(&mut rt, i, &mut sink).unwrap()).collect();
        for i in 0..64u64 {
            arr.swap(&mut rt, i % 32, (i * 7 + 3) % 32, &mut sink).unwrap();
        }
        let mut after: Vec<Vec<u8>> =
            (0..32).map(|i| arr.read_slot(&mut rt, i, &mut sink).unwrap()).collect();
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn reopen_preserves_array() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut arr = StringArray::create(&mut rt, pool, 8, 32, &mut sink).unwrap();
        arr.swap(&mut rt, 0, 7, &mut sink).unwrap();
        let v0 = arr.read_slot(&mut rt, 0, &mut sink).unwrap();
        let arr2 = StringArray::create(&mut rt, pool, 8, 32, &mut sink).unwrap();
        assert_eq!(arr2.slots(), 8);
        assert_eq!(arr2.swaps(), 1);
        assert_eq!(arr2.read_slot(&mut rt, 0, &mut sink).unwrap(), v0);
    }

    #[test]
    fn out_of_range_slot_errors() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut arr = StringArray::create(&mut rt, pool, 4, 16, &mut sink).unwrap();
        assert!(arr.read_slot(&mut rt, 4, &mut sink).is_err());
        assert!(arr.swap(&mut rt, 0, 100, &mut sink).is_err());
    }
}
