//! A persistent red-black tree (Table IV's "RB tree").
//!
//! Full CLRS insert with recoloring and rotations (parent pointers are
//! stored persistently in the nodes); deletes splice BST-style without
//! recolor fixup (module-level simplification, see [`crate::structs`]).

use pmo_runtime::{Oid, PmRuntime, Result};
use pmo_trace::{PmoId, TraceSink};

use super::{value_for, KeyedStructure};

// Node layout.
const KEY: u32 = 0;
const LEFT: u32 = 8;
const RIGHT: u32 = 16;
const PARENT: u32 = 24;
const COLOR: u32 = 32; // 0 = black, 1 = red
const VALUE: u32 = 40;

// Root-object layout.
const ROOT_PTR: u32 = 0;
const COUNT: u32 = 8;
const ROOT_OBJ_SIZE: u64 = 16;

const BLACK: u64 = 0;
const RED: u64 = 1;

/// A persistent red-black tree.
#[derive(Debug)]
pub struct RbTree {
    pool: PmoId,
    meta: Oid,
    root: Oid,
    count: u64,
    value_bytes: u32,
}

impl RbTree {
    fn node_size(&self) -> u64 {
        u64::from(VALUE) + u64::from(self.value_bytes)
    }

    fn color(&self, rt: &mut PmRuntime, node: Oid, sink: &mut dyn TraceSink) -> Result<u64> {
        if node.is_null() {
            return Ok(BLACK);
        }
        rt.read_u64(node, COLOR, sink)
    }

    fn set_color(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        color: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        rt.write_u64(node, COLOR, color, sink)
    }

    fn child(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        right: bool,
        sink: &mut dyn TraceSink,
    ) -> Result<Oid> {
        rt.read_oid(node, if right { RIGHT } else { LEFT }, sink)
    }

    fn parent(&self, rt: &mut PmRuntime, node: Oid, sink: &mut dyn TraceSink) -> Result<Oid> {
        rt.read_oid(node, PARENT, sink)
    }

    fn set_child(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        right: bool,
        to: Oid,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        rt.write_oid(node, if right { RIGHT } else { LEFT }, to, sink)
    }

    fn set_parent(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        to: Oid,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        rt.write_oid(node, PARENT, to, sink)
    }

    fn set_root(&mut self, rt: &mut PmRuntime, root: Oid, sink: &mut dyn TraceSink) -> Result<()> {
        self.root = root;
        rt.write_oid(self.meta, ROOT_PTR, root, sink)?;
        rt.persist(self.meta, ROOT_PTR, 8, sink)
    }

    /// CLRS rotation; `left` rotates `node` leftward. Maintains parent
    /// pointers and the tree root.
    fn rotate(
        &mut self,
        rt: &mut PmRuntime,
        node: Oid,
        left: bool,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        sink.compute(12);
        let pivot = self.child(rt, node, left, sink)?;
        let transfer = self.child(rt, pivot, !left, sink)?;
        self.set_child(rt, node, left, transfer, sink)?;
        if !transfer.is_null() {
            self.set_parent(rt, transfer, node, sink)?;
        }
        let node_parent = self.parent(rt, node, sink)?;
        self.set_parent(rt, pivot, node_parent, sink)?;
        if node_parent.is_null() {
            self.set_root(rt, pivot, sink)?;
        } else {
            let parent_left = self.child(rt, node_parent, false, sink)?;
            self.set_child(rt, node_parent, parent_left != node, pivot, sink)?;
        }
        self.set_child(rt, pivot, !left, node, sink)?;
        self.set_parent(rt, node, pivot, sink)?;
        rt.persist(node, 0, u64::from(VALUE), sink)?;
        rt.persist(pivot, 0, u64::from(VALUE), sink)?;
        Ok(())
    }

    fn insert_fixup(
        &mut self,
        rt: &mut PmRuntime,
        mut z: Oid,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        loop {
            let parent = self.parent(rt, z, sink)?;
            if self.color(rt, parent, sink)? != RED {
                break;
            }
            sink.compute(8);
            let grand = self.parent(rt, parent, sink)?;
            let grand_left = self.child(rt, grand, false, sink)?;
            let parent_is_left = grand_left == parent;
            let uncle = self.child(rt, grand, parent_is_left, sink)?;
            if self.color(rt, uncle, sink)? == RED {
                // Case 1: recolor and move up.
                self.set_color(rt, parent, BLACK, sink)?;
                self.set_color(rt, uncle, BLACK, sink)?;
                self.set_color(rt, grand, RED, sink)?;
                z = grand;
                continue;
            }
            let z_is_inner = {
                let parent_inner = self.child(rt, parent, parent_is_left, sink)?;
                parent_inner == z
            };
            let mut parent = parent;
            if z_is_inner {
                // Case 2: rotate parent toward the outside.
                self.rotate(rt, parent, parent_is_left, sink)?;
                z = parent;
                parent = self.parent(rt, z, sink)?;
            }
            // Case 3: recolor and rotate the grandparent.
            self.set_color(rt, parent, BLACK, sink)?;
            self.set_color(rt, grand, RED, sink)?;
            self.rotate(rt, grand, !parent_is_left, sink)?;
        }
        let root = self.root;
        self.set_color(rt, root, BLACK, sink)?;
        Ok(())
    }

    /// Replaces subtree `u` with `v` in `u`'s parent (CLRS transplant).
    fn transplant(
        &mut self,
        rt: &mut PmRuntime,
        u: Oid,
        v: Oid,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        let parent = self.parent(rt, u, sink)?;
        if parent.is_null() {
            self.set_root(rt, v, sink)?;
        } else {
            let left = self.child(rt, parent, false, sink)?;
            self.set_child(rt, parent, left != u, v, sink)?;
            rt.persist(parent, 0, u64::from(VALUE), sink)?;
        }
        if !v.is_null() {
            self.set_parent(rt, v, parent, sink)?;
        }
        Ok(())
    }

    fn find(&self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<Oid> {
        let mut cur = self.root;
        while !cur.is_null() {
            let k = rt.read_u64(cur, KEY, sink)?;
            sink.compute(4);
            if key == k {
                return Ok(cur);
            }
            cur = self.child(rt, cur, key > k, sink)?;
        }
        Ok(Oid::NULL)
    }

    fn bump_count(
        &mut self,
        rt: &mut PmRuntime,
        delta: i64,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        self.count = self.count.wrapping_add_signed(delta);
        rt.write_u64(self.meta, COUNT, self.count, sink)
    }

    /// Validates red-black invariants on an insert-only tree: the root is
    /// black, no red node has a red child, and every root-to-leaf path has
    /// the same black height. Returns the black height.
    pub fn check_invariants(&self, rt: &mut PmRuntime, sink: &mut dyn TraceSink) -> Result<u64> {
        fn walk(
            tree: &RbTree,
            rt: &mut PmRuntime,
            node: Oid,
            sink: &mut dyn TraceSink,
        ) -> Result<u64> {
            if node.is_null() {
                return Ok(1);
            }
            let color = tree.color(rt, node, sink)?;
            let l = tree.child(rt, node, false, sink)?;
            let r = tree.child(rt, node, true, sink)?;
            if color == RED {
                assert_eq!(tree.color(rt, l, sink)?, BLACK, "red node with red left child");
                assert_eq!(tree.color(rt, r, sink)?, BLACK, "red node with red right child");
            }
            let hl = walk(tree, rt, l, sink)?;
            let hr = walk(tree, rt, r, sink)?;
            assert_eq!(hl, hr, "black-height mismatch");
            Ok(hl + u64::from(color == BLACK))
        }
        if self.root.is_null() {
            return Ok(0);
        }
        assert_eq!(self.color(rt, self.root, sink)?, BLACK, "root must be black");
        walk(self, rt, self.root, sink)
    }

    /// In-order keys (test/diagnostic helper).
    pub fn keys_in_order(&self, rt: &mut PmRuntime, sink: &mut dyn TraceSink) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut cur = self.root;
        while !cur.is_null() || !stack.is_empty() {
            while !cur.is_null() {
                stack.push(cur);
                cur = self.child(rt, cur, false, sink)?;
            }
            let node = stack.pop().expect("stack non-empty");
            out.push(rt.read_u64(node, KEY, sink)?);
            cur = self.child(rt, node, true, sink)?;
        }
        Ok(out)
    }
}

impl super::CheckedStructure for RbTree {
    fn verify(
        &self,
        rt: &mut PmRuntime,
        required: &[u64],
        optional: &[u64],
        sink: &mut dyn TraceSink,
    ) -> Result<super::CheckReport> {
        use std::collections::BTreeMap;
        let mut report = super::CheckReport::default();
        struct V {
            key: u64,
            color: u64,
            left: Option<usize>,
            right: Option<usize>,
        }
        let cap = required.len() + optional.len() + 1;
        let mut nodes: Vec<V> = Vec::new();
        let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
        let mut corrupt_shape = false;
        // (node oid, expected parent oid, patch slot in the parent snapshot)
        type Frame = (Oid, Oid, Option<(usize, bool)>);
        let mut stack: Vec<Frame> = vec![(self.root, Oid::NULL, None)];
        while let Some((oid, expect_parent, patch)) = stack.pop() {
            if oid.is_null() {
                continue;
            }
            if let Some(&idx) = seen.get(&oid.to_raw()) {
                report.violation(format!(
                    "node with key {:#x} is reachable twice (cycle or shared subtree)",
                    nodes[idx].key
                ));
                corrupt_shape = true;
                continue;
            }
            if nodes.len() >= cap {
                report.violation(format!("more than {cap} nodes reachable"));
                corrupt_shape = true;
                break;
            }
            let key = rt.read_u64(oid, KEY, sink)?;
            let color = self.color(rt, oid, sink)?;
            let left = self.child(rt, oid, false, sink)?;
            let right = self.child(rt, oid, true, sink)?;
            let parent = self.parent(rt, oid, sink)?;
            if color != RED && color != BLACK {
                report.violation(format!("key {key:#x} has garbage color {color:#x}"));
            }
            if parent != expect_parent {
                report.violation(format!("parent pointer of key {key:#x} is stale"));
            }
            let mut value = vec![0u8; self.value_bytes as usize];
            rt.read_bytes(oid, VALUE, &mut value, sink)?;
            if value != value_for(key, self.value_bytes) {
                report.violation(format!("value of key {key:#x} is corrupt"));
            }
            let idx = nodes.len();
            seen.insert(oid.to_raw(), idx);
            nodes.push(V { key, color, left: None, right: None });
            if let Some((p, is_right)) = patch {
                if is_right {
                    nodes[p].right = Some(idx);
                } else {
                    nodes[p].left = Some(idx);
                }
            }
            stack.push((left, oid, Some((idx, false))));
            stack.push((right, oid, Some((idx, true))));
        }
        report.nodes_visited = nodes.len() as u64;
        if self.count != nodes.len() as u64 {
            report.violation(format!(
                "count field says {} but {} nodes are reachable",
                self.count,
                nodes.len()
            ));
        }
        if !corrupt_shape && !nodes.is_empty() {
            if nodes[0].color != BLACK {
                report.violation("root is red".to_string());
            }
            // Returns the subtree's black height; flags red-red edges and
            // black-height mismatches along the way.
            fn walk(
                nodes: &[V],
                i: usize,
                inorder: &mut Vec<u64>,
                report: &mut super::CheckReport,
            ) -> u64 {
                for c in [nodes[i].left, nodes[i].right].into_iter().flatten() {
                    if nodes[i].color == RED && nodes[c].color == RED {
                        report.violation(format!(
                            "red node {:#x} has red child {:#x}",
                            nodes[i].key, nodes[c].key
                        ));
                    }
                }
                let hl = match nodes[i].left {
                    Some(l) => walk(nodes, l, inorder, report),
                    None => 1,
                };
                inorder.push(nodes[i].key);
                let hr = match nodes[i].right {
                    Some(r) => walk(nodes, r, inorder, report),
                    None => 1,
                };
                if hl != hr {
                    report.violation(format!(
                        "black-height mismatch at key {:#x} ({hl} vs {hr})",
                        nodes[i].key
                    ));
                }
                hl.max(hr) + u64::from(nodes[i].color == BLACK)
            }
            let mut inorder = Vec::with_capacity(nodes.len());
            walk(&nodes, 0, &mut inorder, &mut report);
            for w in inorder.windows(2) {
                if w[0] >= w[1] {
                    report
                        .violation(format!("BST order violated: {:#x} precedes {:#x}", w[0], w[1]));
                }
            }
            super::verify::check_membership(&inorder, required, optional, &mut report);
        } else {
            let keys: Vec<u64> = nodes.iter().map(|n| n.key).collect();
            super::verify::check_membership(&keys, required, optional, &mut report);
        }
        Ok(report)
    }
}

impl KeyedStructure for RbTree {
    fn create(
        rt: &mut PmRuntime,
        pool: PmoId,
        value_bytes: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Self> {
        let meta = rt.pool_root(pool, ROOT_OBJ_SIZE, sink)?;
        let root = rt.read_oid(meta, ROOT_PTR, sink)?;
        let count = rt.read_u64(meta, COUNT, sink)?;
        Ok(RbTree { pool, meta, root, count, value_bytes })
    }

    fn insert(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<()> {
        // Standard BST descent.
        let mut parent = Oid::NULL;
        let mut went_right = false;
        let mut cur = self.root;
        while !cur.is_null() {
            let k = rt.read_u64(cur, KEY, sink)?;
            sink.compute(4);
            if key == k {
                let value = value_for(key, self.value_bytes);
                rt.write_bytes(cur, VALUE, &value, sink)?;
                rt.persist(cur, VALUE, u64::from(self.value_bytes), sink)?;
                return Ok(());
            }
            parent = cur;
            went_right = key > k;
            cur = self.child(rt, cur, went_right, sink)?;
        }
        let node = rt.pmalloc(self.pool, self.node_size(), sink)?;
        rt.write_u64(node, KEY, key, sink)?;
        rt.write_oid(node, LEFT, Oid::NULL, sink)?;
        rt.write_oid(node, RIGHT, Oid::NULL, sink)?;
        rt.write_oid(node, PARENT, parent, sink)?;
        rt.write_u64(node, COLOR, RED, sink)?;
        let value = value_for(key, self.value_bytes);
        rt.write_bytes(node, VALUE, &value, sink)?;
        rt.persist(node, 0, self.node_size(), sink)?;
        if parent.is_null() {
            self.set_root(rt, node, sink)?;
        } else {
            self.set_child(rt, parent, went_right, node, sink)?;
            rt.persist(parent, 0, u64::from(VALUE), sink)?;
        }
        self.insert_fixup(rt, node, sink)?;
        self.bump_count(rt, 1, sink)?;
        Ok(())
    }

    fn remove(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<bool> {
        let node = self.find(rt, key, sink)?;
        if node.is_null() {
            return Ok(false);
        }
        let removed = self.remove_found(rt, node, sink)?;
        // Deletion skips the recolor fixup (see the module docs), but a
        // red root would break later insert fixups: force it black.
        if !self.root.is_null() {
            self.set_color(rt, self.root, BLACK, sink)?;
        }
        Ok(removed)
    }

    fn contains(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<bool> {
        Ok(!self.find(rt, key, sink)?.is_null())
    }

    fn len(&self) -> u64 {
        self.count
    }
}

impl RbTree {
    /// Unlinks `node` (already located) BST-style.
    fn remove_found(
        &mut self,
        rt: &mut PmRuntime,
        node: Oid,
        sink: &mut dyn TraceSink,
    ) -> Result<bool> {
        let left = self.child(rt, node, false, sink)?;
        let right = self.child(rt, node, true, sink)?;
        if left.is_null() {
            self.transplant(rt, node, right, sink)?;
        } else if right.is_null() {
            self.transplant(rt, node, left, sink)?;
        } else {
            // Copy the successor's payload into `node`, then splice the
            // successor out (it has no left child).
            let mut succ = right;
            loop {
                let next = self.child(rt, succ, false, sink)?;
                if next.is_null() {
                    break;
                }
                succ = next;
            }
            let succ_key = rt.read_u64(succ, KEY, sink)?;
            let mut value = vec![0u8; self.value_bytes as usize];
            rt.read_bytes(succ, VALUE, &mut value, sink)?;
            rt.write_u64(node, KEY, succ_key, sink)?;
            rt.write_bytes(node, VALUE, &value, sink)?;
            rt.persist(node, 0, self.node_size(), sink)?;
            let succ_right = self.child(rt, succ, true, sink)?;
            self.transplant(rt, succ, succ_right, sink)?;
            rt.pfree(succ, sink)?;
            self.bump_count(rt, -1, sink)?;
            return Ok(true);
        }
        rt.pfree(node, sink)?;
        self.bump_count(rt, -1, sink)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn contract() {
        testutil::exercise_contract::<RbTree>();
    }

    #[test]
    fn persistence() {
        testutil::exercise_persistence::<RbTree>();
    }

    #[test]
    fn tracing() {
        testutil::exercise_tracing::<RbTree>();
    }

    #[test]
    fn invariants_hold_under_sequential_inserts() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut tree = RbTree::create(&mut rt, pool, 64, &mut sink).unwrap();
        for k in 0..512u64 {
            tree.insert(&mut rt, k, &mut sink).unwrap();
        }
        let black_height = tree.check_invariants(&mut rt, &mut sink).unwrap();
        assert!(black_height >= 4, "512 nodes imply non-trivial black height");
        assert_eq!(tree.keys_in_order(&mut rt, &mut sink).unwrap(), (0..512).collect::<Vec<_>>());
    }

    #[test]
    fn invariants_hold_under_random_inserts() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut tree = RbTree::create(&mut rt, pool, 16, &mut sink).unwrap();
        for i in 0..400u64 {
            tree.insert(&mut rt, i.wrapping_mul(0x9e37_79b9_7f4a_7c15), &mut sink).unwrap();
            if i % 97 == 0 {
                tree.check_invariants(&mut rt, &mut sink).unwrap();
            }
        }
        tree.check_invariants(&mut rt, &mut sink).unwrap();
    }

    #[test]
    fn verify_contract() {
        testutil::exercise_verify::<RbTree>();
    }

    #[test]
    fn verify_detects_recolor_damage() {
        use super::super::CheckedStructure;
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut tree = RbTree::create(&mut rt, pool, 16, &mut sink).unwrap();
        let keys: Vec<u64> = (1..=20).collect();
        for &k in &keys {
            tree.insert(&mut rt, k, &mut sink).unwrap();
        }
        // A crash that loses a recolor leaves the root red.
        rt.write_u64(tree.root, COLOR, RED, &mut sink).unwrap();
        let report = tree.verify(&mut rt, &keys, &[], &mut sink).unwrap();
        assert!(format!("{report}").contains("root is red"), "{report}");
    }

    #[test]
    fn bst_order_survives_deletes() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut tree = RbTree::create(&mut rt, pool, 16, &mut sink).unwrap();
        let keys: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0xd129_8a2b)).collect();
        for &k in &keys {
            tree.insert(&mut rt, k, &mut sink).unwrap();
        }
        for &k in keys.iter().step_by(3) {
            assert!(tree.remove(&mut rt, k, &mut sink).unwrap());
        }
        let inorder = tree.keys_in_order(&mut rt, &mut sink).unwrap();
        let mut expect: Vec<u64> =
            keys.iter().enumerate().filter(|(i, _)| i % 3 != 0).map(|(_, k)| *k).collect();
        expect.sort_unstable();
        assert_eq!(inorder, expect);
    }
}
