//! A persistent AVL tree (Table IV's "AVL Tree").
//!
//! Nodes live in pool storage; child links are OIDs. Inserts rebalance
//! with single/double rotations along the insertion path; deletes unlink
//! BST-style without rebalancing (see the module docs of
//! [`crate::structs`]).

use pmo_runtime::{Oid, PmRuntime, Result};
use pmo_trace::{PmoId, TraceSink};

use super::{value_for, KeyedStructure};

// Node layout.
const KEY: u32 = 0;
const LEFT: u32 = 8;
const RIGHT: u32 = 16;
const HEIGHT: u32 = 24;
const VALUE: u32 = 32;

// Root-object layout.
const ROOT_PTR: u32 = 0;
const COUNT: u32 = 8;
const ROOT_OBJ_SIZE: u64 = 16;

/// A persistent AVL tree.
#[derive(Debug)]
pub struct AvlTree {
    pool: PmoId,
    meta: Oid,
    root: Oid,
    count: u64,
    value_bytes: u32,
}

impl AvlTree {
    fn node_size(&self) -> u64 {
        u64::from(VALUE) + u64::from(self.value_bytes)
    }

    fn height(&self, rt: &mut PmRuntime, node: Oid, sink: &mut dyn TraceSink) -> Result<u64> {
        if node.is_null() {
            return Ok(0);
        }
        rt.read_u64(node, HEIGHT, sink)
    }

    fn child(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        right: bool,
        sink: &mut dyn TraceSink,
    ) -> Result<Oid> {
        rt.read_oid(node, if right { RIGHT } else { LEFT }, sink)
    }

    fn set_child(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        right: bool,
        to: Oid,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        rt.write_oid(node, if right { RIGHT } else { LEFT }, to, sink)
    }

    fn update_height(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        sink: &mut dyn TraceSink,
    ) -> Result<u64> {
        let l = self.child(rt, node, false, sink)?;
        let r = self.child(rt, node, true, sink)?;
        let h = 1 + self.height(rt, l, sink)?.max(self.height(rt, r, sink)?);
        rt.write_u64(node, HEIGHT, h, sink)?;
        Ok(h)
    }

    fn balance_factor(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        sink: &mut dyn TraceSink,
    ) -> Result<i64> {
        let l = self.child(rt, node, false, sink)?;
        let r = self.child(rt, node, true, sink)?;
        Ok(self.height(rt, l, sink)? as i64 - self.height(rt, r, sink)? as i64)
    }

    /// Rotates `node` left (right child becomes subtree root); returns the
    /// new subtree root.
    fn rotate(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        left_rotation: bool,
        sink: &mut dyn TraceSink,
    ) -> Result<Oid> {
        sink.compute(12);
        let pivot = self.child(rt, node, left_rotation, sink)?;
        let transfer = self.child(rt, pivot, !left_rotation, sink)?;
        self.set_child(rt, node, left_rotation, transfer, sink)?;
        self.set_child(rt, pivot, !left_rotation, node, sink)?;
        self.update_height(rt, node, sink)?;
        self.update_height(rt, pivot, sink)?;
        rt.persist(node, 0, u64::from(VALUE), sink)?;
        rt.persist(pivot, 0, u64::from(VALUE), sink)?;
        Ok(pivot)
    }

    /// Rebalances `node` if needed; returns the subtree root.
    fn rebalance(&self, rt: &mut PmRuntime, node: Oid, sink: &mut dyn TraceSink) -> Result<Oid> {
        self.update_height(rt, node, sink)?;
        let bf = self.balance_factor(rt, node, sink)?;
        sink.compute(6);
        if bf > 1 {
            // Left-heavy.
            let left = self.child(rt, node, false, sink)?;
            if self.balance_factor(rt, left, sink)? < 0 {
                let new_left = self.rotate(rt, left, true, sink)?;
                self.set_child(rt, node, false, new_left, sink)?;
            }
            return self.rotate(rt, node, false, sink);
        }
        if bf < -1 {
            // Right-heavy.
            let right = self.child(rt, node, true, sink)?;
            if self.balance_factor(rt, right, sink)? > 0 {
                let new_right = self.rotate(rt, right, false, sink)?;
                self.set_child(rt, node, true, new_right, sink)?;
            }
            return self.rotate(rt, node, true, sink);
        }
        Ok(node)
    }

    fn set_root(&mut self, rt: &mut PmRuntime, root: Oid, sink: &mut dyn TraceSink) -> Result<()> {
        self.root = root;
        rt.write_oid(self.meta, ROOT_PTR, root, sink)?;
        rt.persist(self.meta, ROOT_PTR, 8, sink)
    }

    fn bump_count(
        &mut self,
        rt: &mut PmRuntime,
        delta: i64,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        self.count = self.count.wrapping_add_signed(delta);
        rt.write_u64(self.meta, COUNT, self.count, sink)
    }

    /// In-order keys (test/diagnostic helper).
    pub fn keys_in_order(&self, rt: &mut PmRuntime, sink: &mut dyn TraceSink) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut cur = self.root;
        while !cur.is_null() || !stack.is_empty() {
            while !cur.is_null() {
                stack.push(cur);
                cur = self.child(rt, cur, false, sink)?;
            }
            let node = stack.pop().expect("stack non-empty");
            out.push(rt.read_u64(node, KEY, sink)?);
            cur = self.child(rt, node, true, sink)?;
        }
        Ok(out)
    }

    /// Verifies the AVL balance invariant on the insert-only tree; returns
    /// the tree height.
    pub fn check_balance(&self, rt: &mut PmRuntime, sink: &mut dyn TraceSink) -> Result<u64> {
        fn walk(
            tree: &AvlTree,
            rt: &mut PmRuntime,
            node: Oid,
            sink: &mut dyn TraceSink,
        ) -> Result<u64> {
            if node.is_null() {
                return Ok(0);
            }
            let l = tree.child(rt, node, false, sink)?;
            let r = tree.child(rt, node, true, sink)?;
            let hl = walk(tree, rt, l, sink)?;
            let hr = walk(tree, rt, r, sink)?;
            assert!(
                hl.abs_diff(hr) <= 1,
                "AVL balance violated at key {}",
                rt.read_u64(node, KEY, sink)?
            );
            Ok(1 + hl.max(hr))
        }
        walk(self, rt, self.root, sink)
    }
}

impl super::CheckedStructure for AvlTree {
    fn verify(
        &self,
        rt: &mut PmRuntime,
        required: &[u64],
        optional: &[u64],
        sink: &mut dyn TraceSink,
    ) -> Result<super::CheckReport> {
        use std::collections::BTreeMap;
        let mut report = super::CheckReport::default();
        // Snapshot the reachable tree into volatile nodes. Each persistent
        // node is visited once; an edge to an already-seen node (a cycle or
        // a shared subtree, both possible only through corruption) is
        // reported and treated as a leaf so traversal terminates.
        struct V {
            key: u64,
            left: Option<usize>,
            right: Option<usize>,
        }
        let cap = required.len() + optional.len() + 1;
        let mut nodes: Vec<V> = Vec::new();
        let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
        let mut corrupt_shape = false;
        // Stack of (oid, parent slot to patch with the new index).
        let mut stack: Vec<(Oid, Option<(usize, bool)>)> = vec![(self.root, None)];
        while let Some((oid, patch)) = stack.pop() {
            if oid.is_null() {
                continue;
            }
            if let Some(&idx) = seen.get(&oid.to_raw()) {
                report.violation(format!(
                    "node with key {:#x} is reachable twice (cycle or shared subtree)",
                    nodes[idx].key
                ));
                corrupt_shape = true;
                continue;
            }
            if nodes.len() >= cap {
                report.violation(format!("more than {cap} nodes reachable"));
                corrupt_shape = true;
                break;
            }
            let key = rt.read_u64(oid, KEY, sink)?;
            let left = self.child(rt, oid, false, sink)?;
            let right = self.child(rt, oid, true, sink)?;
            let mut value = vec![0u8; self.value_bytes as usize];
            rt.read_bytes(oid, VALUE, &mut value, sink)?;
            if value != value_for(key, self.value_bytes) {
                report.violation(format!("value of key {key:#x} is corrupt"));
            }
            let idx = nodes.len();
            seen.insert(oid.to_raw(), idx);
            nodes.push(V { key, left: None, right: None });
            if let Some((p, is_right)) = patch {
                if is_right {
                    nodes[p].right = Some(idx);
                } else {
                    nodes[p].left = Some(idx);
                }
            }
            stack.push((left, Some((idx, false))));
            stack.push((right, Some((idx, true))));
        }
        report.nodes_visited = nodes.len() as u64;
        if self.count != nodes.len() as u64 {
            report.violation(format!(
                "count field says {} but {} nodes are reachable",
                self.count,
                nodes.len()
            ));
        }
        // Shape checks run on the volatile spanning tree (safe recursion).
        if !corrupt_shape && !nodes.is_empty() {
            fn walk(
                nodes: &[V],
                i: usize,
                inorder: &mut Vec<u64>,
                report: &mut super::CheckReport,
            ) -> u64 {
                let hl = match nodes[i].left {
                    Some(l) => walk(nodes, l, inorder, report),
                    None => 0,
                };
                inorder.push(nodes[i].key);
                let hr = match nodes[i].right {
                    Some(r) => walk(nodes, r, inorder, report),
                    None => 0,
                };
                if hl.abs_diff(hr) > 1 {
                    report.violation(format!(
                        "AVL balance violated at key {:#x} ({hl} vs {hr})",
                        nodes[i].key
                    ));
                }
                1 + hl.max(hr)
            }
            let mut inorder = Vec::with_capacity(nodes.len());
            walk(&nodes, 0, &mut inorder, &mut report);
            for w in inorder.windows(2) {
                if w[0] >= w[1] {
                    report
                        .violation(format!("BST order violated: {:#x} precedes {:#x}", w[0], w[1]));
                }
            }
            super::verify::check_membership(&inorder, required, optional, &mut report);
        } else {
            let keys: Vec<u64> = nodes.iter().map(|n| n.key).collect();
            super::verify::check_membership(&keys, required, optional, &mut report);
        }
        Ok(report)
    }
}

impl KeyedStructure for AvlTree {
    fn create(
        rt: &mut PmRuntime,
        pool: PmoId,
        value_bytes: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Self> {
        let meta = rt.pool_root(pool, ROOT_OBJ_SIZE, sink)?;
        let root = rt.read_oid(meta, ROOT_PTR, sink)?;
        let count = rt.read_u64(meta, COUNT, sink)?;
        Ok(AvlTree { pool, meta, root, count, value_bytes })
    }

    fn insert(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<()> {
        // Descend, recording the path.
        let mut path: Vec<(Oid, bool)> = Vec::new(); // (node, went_right)
        let mut cur = self.root;
        while !cur.is_null() {
            let k = rt.read_u64(cur, KEY, sink)?;
            sink.compute(4);
            if key == k {
                // Overwrite the value in place.
                let value = value_for(key, self.value_bytes);
                rt.write_bytes(cur, VALUE, &value, sink)?;
                rt.persist(cur, VALUE, u64::from(self.value_bytes), sink)?;
                return Ok(());
            }
            let right = key > k;
            path.push((cur, right));
            cur = self.child(rt, cur, right, sink)?;
        }
        // Allocate and initialize the new leaf.
        let node = rt.pmalloc(self.pool, self.node_size(), sink)?;
        rt.write_u64(node, KEY, key, sink)?;
        rt.write_oid(node, LEFT, Oid::NULL, sink)?;
        rt.write_oid(node, RIGHT, Oid::NULL, sink)?;
        rt.write_u64(node, HEIGHT, 1, sink)?;
        let value = value_for(key, self.value_bytes);
        rt.write_bytes(node, VALUE, &value, sink)?;
        rt.persist(node, 0, self.node_size(), sink)?;
        // Link and rebalance up the path.
        match path.last().copied() {
            None => self.set_root(rt, node, sink)?,
            Some((parent, right)) => {
                self.set_child(rt, parent, right, node, sink)?;
                rt.persist(parent, 0, u64::from(VALUE), sink)?;
                for i in (0..path.len()).rev() {
                    let (n, _) = path[i];
                    let new_subroot = self.rebalance(rt, n, sink)?;
                    if new_subroot != n {
                        // Reattach the rotated subtree to its parent.
                        match i.checked_sub(1) {
                            Some(j) => {
                                let (p, went_right) = path[j];
                                self.set_child(rt, p, went_right, new_subroot, sink)?;
                                rt.persist(p, 0, u64::from(VALUE), sink)?;
                            }
                            None => self.set_root(rt, new_subroot, sink)?,
                        }
                    }
                }
            }
        }
        self.bump_count(rt, 1, sink)?;
        Ok(())
    }

    fn remove(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<bool> {
        // Find the node and its parent.
        let mut parent: Option<(Oid, bool)> = None;
        let mut cur = self.root;
        while !cur.is_null() {
            let k = rt.read_u64(cur, KEY, sink)?;
            sink.compute(4);
            if key == k {
                break;
            }
            let right = key > k;
            parent = Some((cur, right));
            cur = self.child(rt, cur, right, sink)?;
        }
        if cur.is_null() {
            return Ok(false);
        }
        let left = self.child(rt, cur, false, sink)?;
        let right = self.child(rt, cur, true, sink)?;
        let replacement = if left.is_null() {
            right
        } else if right.is_null() {
            left
        } else {
            // Two children: splice out the in-order successor and copy its
            // key and value into `cur`.
            let mut succ_parent = cur;
            let mut succ = right;
            let mut went_right = true;
            loop {
                let next = self.child(rt, succ, false, sink)?;
                if next.is_null() {
                    break;
                }
                succ_parent = succ;
                succ = next;
                went_right = false;
            }
            let succ_key = rt.read_u64(succ, KEY, sink)?;
            let mut value = vec![0u8; self.value_bytes as usize];
            rt.read_bytes(succ, VALUE, &mut value, sink)?;
            rt.write_u64(cur, KEY, succ_key, sink)?;
            rt.write_bytes(cur, VALUE, &value, sink)?;
            rt.persist(cur, 0, self.node_size(), sink)?;
            let succ_right = self.child(rt, succ, true, sink)?;
            self.set_child(rt, succ_parent, went_right, succ_right, sink)?;
            rt.persist(succ_parent, 0, u64::from(VALUE), sink)?;
            rt.pfree(succ, sink)?;
            self.bump_count(rt, -1, sink)?;
            return Ok(true);
        };
        match parent {
            None => self.set_root(rt, replacement, sink)?,
            Some((p, went_right)) => {
                self.set_child(rt, p, went_right, replacement, sink)?;
                rt.persist(p, 0, u64::from(VALUE), sink)?;
            }
        }
        rt.pfree(cur, sink)?;
        self.bump_count(rt, -1, sink)?;
        Ok(true)
    }

    fn contains(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<bool> {
        let mut cur = self.root;
        while !cur.is_null() {
            let k = rt.read_u64(cur, KEY, sink)?;
            sink.compute(4);
            if key == k {
                return Ok(true);
            }
            cur = self.child(rt, cur, key > k, sink)?;
        }
        Ok(false)
    }

    fn len(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;
    use pmo_trace::NullSink;

    #[test]
    fn contract() {
        testutil::exercise_contract::<AvlTree>();
    }

    #[test]
    fn persistence() {
        testutil::exercise_persistence::<AvlTree>();
    }

    #[test]
    fn tracing() {
        testutil::exercise_tracing::<AvlTree>();
    }

    #[test]
    fn stays_balanced_under_sequential_inserts() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut tree = AvlTree::create(&mut rt, pool, 64, &mut sink).unwrap();
        // Sequential keys are the worst case for an unbalanced BST.
        for k in 0..512u64 {
            tree.insert(&mut rt, k, &mut sink).unwrap();
        }
        let height = tree.check_balance(&mut rt, &mut sink).unwrap();
        assert!(height <= 12, "512 nodes must stay within AVL height, got {height}");
        let keys = tree.keys_in_order(&mut rt, &mut sink).unwrap();
        assert_eq!(keys, (0..512).collect::<Vec<_>>());
    }

    #[test]
    fn inorder_is_sorted_after_random_churn() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut tree = AvlTree::create(&mut rt, pool, 32, &mut sink).unwrap();
        let mut keys: Vec<u64> =
            (0..300u64).map(|i| i.wrapping_mul(0x5851_f42d_4c95_7f2d)).collect();
        for &k in &keys {
            tree.insert(&mut rt, k, &mut sink).unwrap();
        }
        for &k in keys.iter().take(100) {
            assert!(tree.remove(&mut rt, k, &mut sink).unwrap());
        }
        keys.drain(..100);
        let mut inorder = tree.keys_in_order(&mut rt, &mut sink).unwrap();
        let mut expect = keys.clone();
        expect.sort_unstable();
        inorder.dedup();
        assert_eq!(inorder, expect);
    }

    #[test]
    fn verify_contract() {
        testutil::exercise_verify::<AvlTree>();
    }

    #[test]
    fn verify_detects_torn_key() {
        use super::super::CheckedStructure;
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut tree = AvlTree::create(&mut rt, pool, 16, &mut sink).unwrap();
        let keys = [10u64, 20, 30, 40, 50];
        for &k in &keys {
            tree.insert(&mut rt, k, &mut sink).unwrap();
        }
        // Simulate a torn key write at the root: BST order, membership and
        // value integrity all break, and the checker must say so without
        // panicking.
        rt.write_u64(tree.root, KEY, u64::MAX, &mut sink).unwrap();
        let report = tree.verify(&mut rt, &keys, &[], &mut sink).unwrap();
        assert!(!report.is_clean());
        assert!(format!("{report}").contains("order violated"), "{report}");
    }

    #[test]
    fn verify_survives_pointer_cycle() {
        use super::super::CheckedStructure;
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut tree = AvlTree::create(&mut rt, pool, 16, &mut sink).unwrap();
        for k in [2u64, 1, 3] {
            tree.insert(&mut rt, k, &mut sink).unwrap();
        }
        // Point the root's left child back at the root: a cycle.
        rt.write_oid(tree.root, LEFT, tree.root, &mut sink).unwrap();
        let report = tree.verify(&mut rt, &[1, 2, 3], &[], &mut sink).unwrap();
        assert!(format!("{report}").contains("reachable twice"), "{report}");
    }

    #[test]
    fn overwrite_updates_value() {
        let (mut rt, pool, _) = testutil::pool_fixture();
        let mut sink = NullSink::new();
        let mut tree = AvlTree::create(&mut rt, pool, 16, &mut sink).unwrap();
        tree.insert(&mut rt, 7, &mut sink).unwrap();
        tree.insert(&mut rt, 7, &mut sink).unwrap();
        assert_eq!(tree.len(), 1);
        assert!(tree.contains(&mut rt, 7, &mut sink).unwrap());
    }
}
