//! A persistent B+tree (Table IV's "B+ tree").
//!
//! Matches the paper's node format: 4096-byte nodes holding up to 126
//! entries plus two pointers (next/prev leaf chain). Leaves are kept
//! *unsorted* and appended to — the standard persistent-memory
//! optimization (NV-Tree-style) that avoids shifting NVM-resident arrays
//! on every insert; internal nodes are sorted. Deletes swap-remove within
//! the leaf; leaves are not merged (see [`crate::structs`]).
//!
//! The flat 126-way fanout is what gives this benchmark the best locality
//! of the five (the paper: "B+tree is a flatter tree ... hence it has a
//! better data locality", §VI.B).

use pmo_runtime::{Oid, PmRuntime, Result};
use pmo_trace::{PmoId, TraceSink};

use super::KeyedStructure;

/// Max entries per leaf / keys per internal node (paper: 126).
pub const ORDER: usize = 126;

const NODE_BYTES: u64 = 4096;

// Common node header.
const NODE_TYPE: u32 = 0; // u32: 1 = leaf, 0 = internal
const COUNT: u32 = 4; // u32
const NEXT: u32 = 8; // u64 (leaf chain)
const PREV: u32 = 16; // u64 (leaf chain)
const HEADER: u32 = 24;

// Leaf entries: (key u64, value u64) pairs.
const ENTRY: u32 = 16;
// Internal layout: keys then children.
const KEYS: u32 = HEADER;
const CHILDREN: u32 = KEYS + (ORDER as u32) * 8;

// Root-object layout.
const ROOT_PTR: u32 = 0;
const META_COUNT: u32 = 8;
const ROOT_OBJ_SIZE: u64 = 16;

const LEAF: u32 = 1;
const INTERNAL: u32 = 0;

/// A persistent B+tree.
#[derive(Debug)]
pub struct BplusTree {
    pool: PmoId,
    meta: Oid,
    root: Oid,
    count: u64,
}

impl BplusTree {
    fn is_leaf(&self, rt: &mut PmRuntime, node: Oid, sink: &mut dyn TraceSink) -> Result<bool> {
        Ok(rt.read_u32(node, NODE_TYPE, sink)? == LEAF)
    }

    fn node_count(&self, rt: &mut PmRuntime, node: Oid, sink: &mut dyn TraceSink) -> Result<u32> {
        rt.read_u32(node, COUNT, sink)
    }

    fn new_node(&self, rt: &mut PmRuntime, kind: u32, sink: &mut dyn TraceSink) -> Result<Oid> {
        let node = rt.pmalloc(self.pool, NODE_BYTES, sink)?;
        rt.write_u32(node, NODE_TYPE, kind, sink)?;
        rt.write_u32(node, COUNT, 0, sink)?;
        rt.write_oid(node, NEXT, Oid::NULL, sink)?;
        rt.write_oid(node, PREV, Oid::NULL, sink)?;
        rt.persist(node, 0, u64::from(HEADER), sink)?;
        Ok(node)
    }

    fn leaf_key(
        &self,
        rt: &mut PmRuntime,
        leaf: Oid,
        i: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<u64> {
        rt.read_u64(leaf, HEADER + i * ENTRY, sink)
    }

    fn write_leaf_entry(
        &self,
        rt: &mut PmRuntime,
        leaf: Oid,
        i: u32,
        key: u64,
        value: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        rt.write_u64(leaf, HEADER + i * ENTRY, key, sink)?;
        rt.write_u64(leaf, HEADER + i * ENTRY + 8, value, sink)
    }

    fn internal_key(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        i: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<u64> {
        rt.read_u64(node, KEYS + i * 8, sink)
    }

    fn internal_child(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        i: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Oid> {
        rt.read_oid(node, CHILDREN + i * 8, sink)
    }

    /// Descends to the leaf that should hold `key`, recording the path of
    /// `(internal_node, child_index)` pairs.
    fn descend(
        &self,
        rt: &mut PmRuntime,
        key: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<(Oid, Vec<(Oid, u32)>)> {
        let mut path = Vec::new();
        let mut node = self.root;
        while !self.is_leaf(rt, node, sink)? {
            let count = self.node_count(rt, node, sink)?;
            let mut idx = 0;
            while idx < count {
                sink.compute(3);
                if key < self.internal_key(rt, node, idx, sink)? {
                    break;
                }
                idx += 1;
            }
            path.push((node, idx));
            node = self.internal_child(rt, node, idx, sink)?;
        }
        Ok((node, path))
    }

    /// Finds `key` in an (unsorted) leaf; returns its slot.
    fn find_in_leaf(
        &self,
        rt: &mut PmRuntime,
        leaf: Oid,
        key: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<Option<u32>> {
        let count = self.node_count(rt, leaf, sink)?;
        for i in 0..count {
            sink.compute(3);
            if self.leaf_key(rt, leaf, i, sink)? == key {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    /// Splits a full leaf; returns `(separator_key, new_right_leaf)`.
    fn split_leaf(
        &self,
        rt: &mut PmRuntime,
        leaf: Oid,
        sink: &mut dyn TraceSink,
    ) -> Result<(u64, Oid)> {
        // Partition around the median of the unsorted entries.
        let count = self.node_count(rt, leaf, sink)?;
        let mut entries = Vec::with_capacity(count as usize);
        for i in 0..count {
            let k = self.leaf_key(rt, leaf, i, sink)?;
            let v = rt.read_u64(leaf, HEADER + i * ENTRY + 8, sink)?;
            entries.push((k, v));
        }
        entries.sort_unstable_by_key(|(k, _)| *k);
        sink.compute(count * 2);
        let mid = entries.len() / 2;
        let separator = entries[mid].0;
        let right = self.new_node(rt, LEAF, sink)?;
        // Rewrite both halves.
        for (i, (k, v)) in entries[..mid].iter().enumerate() {
            self.write_leaf_entry(rt, leaf, i as u32, *k, *v, sink)?;
        }
        rt.write_u32(leaf, COUNT, mid as u32, sink)?;
        for (i, (k, v)) in entries[mid..].iter().enumerate() {
            self.write_leaf_entry(rt, right, i as u32, *k, *v, sink)?;
        }
        rt.write_u32(right, COUNT, (entries.len() - mid) as u32, sink)?;
        // Maintain the leaf chain.
        let old_next = rt.read_oid(leaf, NEXT, sink)?;
        rt.write_oid(right, NEXT, old_next, sink)?;
        rt.write_oid(right, PREV, leaf, sink)?;
        rt.write_oid(leaf, NEXT, right, sink)?;
        if !old_next.is_null() {
            rt.write_oid(old_next, PREV, right, sink)?;
        }
        rt.persist(leaf, 0, NODE_BYTES, sink)?;
        rt.persist(right, 0, NODE_BYTES, sink)?;
        Ok((separator, right))
    }

    /// Inserts `(separator, right_child)` into an internal node at
    /// `child_idx`'s position, shifting the sorted arrays.
    fn insert_into_internal(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        at: u32,
        separator: u64,
        right: Oid,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        let count = self.node_count(rt, node, sink)?;
        // Shift keys [at..count) and children [at+1..=count) one slot right.
        let mut i = count;
        while i > at {
            let k = self.internal_key(rt, node, i - 1, sink)?;
            rt.write_u64(node, KEYS + i * 8, k, sink)?;
            let c = self.internal_child(rt, node, i, sink)?;
            rt.write_oid(node, CHILDREN + (i + 1) * 8, c, sink)?;
            i -= 1;
        }
        rt.write_u64(node, KEYS + at * 8, separator, sink)?;
        rt.write_oid(node, CHILDREN + (at + 1) * 8, right, sink)?;
        rt.write_u32(node, COUNT, count + 1, sink)?;
        rt.persist(node, 0, NODE_BYTES, sink)?;
        Ok(())
    }

    /// Splits a full internal node; returns `(separator, new_right_node)`.
    fn split_internal(
        &self,
        rt: &mut PmRuntime,
        node: Oid,
        sink: &mut dyn TraceSink,
    ) -> Result<(u64, Oid)> {
        let count = self.node_count(rt, node, sink)?; // == ORDER
        let mid = count / 2;
        let separator = self.internal_key(rt, node, mid, sink)?;
        let right = self.new_node(rt, INTERNAL, sink)?;
        let move_keys = count - mid - 1;
        for i in 0..move_keys {
            let k = self.internal_key(rt, node, mid + 1 + i, sink)?;
            rt.write_u64(right, KEYS + i * 8, k, sink)?;
        }
        for i in 0..=move_keys {
            let c = self.internal_child(rt, node, mid + 1 + i, sink)?;
            rt.write_oid(right, CHILDREN + i * 8, c, sink)?;
        }
        rt.write_u32(right, COUNT, move_keys, sink)?;
        rt.write_u32(node, COUNT, mid, sink)?;
        rt.persist(node, 0, NODE_BYTES, sink)?;
        rt.persist(right, 0, NODE_BYTES, sink)?;
        Ok((separator, right))
    }

    fn set_root(&mut self, rt: &mut PmRuntime, root: Oid, sink: &mut dyn TraceSink) -> Result<()> {
        self.root = root;
        rt.write_oid(self.meta, ROOT_PTR, root, sink)?;
        rt.persist(self.meta, ROOT_PTR, 8, sink)
    }

    fn bump_count(
        &mut self,
        rt: &mut PmRuntime,
        delta: i64,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        self.count = self.count.wrapping_add_signed(delta);
        rt.write_u64(self.meta, META_COUNT, self.count, sink)
    }

    /// The tree height (1 = root is a leaf); diagnostic helper.
    pub fn height(&self, rt: &mut PmRuntime, sink: &mut dyn TraceSink) -> Result<u32> {
        let mut h = 1;
        let mut node = self.root;
        while !self.is_leaf(rt, node, sink)? {
            node = self.internal_child(rt, node, 0, sink)?;
            h += 1;
        }
        Ok(h)
    }
}

impl super::CheckedStructure for BplusTree {
    fn verify(
        &self,
        rt: &mut PmRuntime,
        required: &[u64],
        optional: &[u64],
        sink: &mut dyn TraceSink,
    ) -> Result<super::CheckReport> {
        use std::collections::BTreeSet;
        let mut report = super::CheckReport::default();
        let cap = 2 * (required.len() + optional.len()) + 16;
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut corrupt_shape = false;
        // Leaves in left-to-right order, with their depth (for the
        // uniform-depth invariant) and OID (for the chain check).
        let mut leaves: Vec<(Oid, u32)> = Vec::new();
        let mut keys: Vec<u64> = Vec::new();
        // DFS carrying the key range each subtree must stay within:
        // lower inclusive (separators move to the right half on split),
        // upper exclusive.
        let mut stack: Vec<(Oid, u32, Option<u64>, Option<u64>)> = vec![(self.root, 1, None, None)];
        while let Some((node, depth, lower, upper)) = stack.pop() {
            if node.is_null() {
                report.violation("null child pointer inside the tree".to_string());
                corrupt_shape = true;
                continue;
            }
            if !seen.insert(node.to_raw()) {
                report.violation(format!(
                    "node {:#x} is reachable twice (cycle or shared subtree)",
                    node.to_raw()
                ));
                corrupt_shape = true;
                continue;
            }
            if seen.len() > cap {
                report.violation(format!("more than {cap} nodes reachable"));
                corrupt_shape = true;
                break;
            }
            report.nodes_visited += 1;
            let count = self.node_count(rt, node, sink)?;
            if count as usize > ORDER {
                report.violation(format!(
                    "node {:#x} claims {count} entries, fanout is {ORDER}",
                    node.to_raw()
                ));
                corrupt_shape = true;
                continue;
            }
            if self.is_leaf(rt, node, sink)? {
                leaves.push((node, depth));
                // Leaf entries are unsorted by design; each must sit inside
                // the separator range and carry its derived value.
                for i in 0..count {
                    let k = self.leaf_key(rt, node, i, sink)?;
                    let v = rt.read_u64(node, HEADER + i * ENTRY + 8, sink)?;
                    if lower.is_some_and(|lo| k < lo) || upper.is_some_and(|hi| k >= hi) {
                        report.violation(format!("leaf key {k:#x} escapes its separator range"));
                    }
                    if v != k ^ 0xabcd {
                        report.violation(format!("value of key {k:#x} is corrupt"));
                    }
                    keys.push(k);
                }
            } else {
                if count == 0 {
                    report.violation(format!("internal node {:#x} has no keys", node.to_raw()));
                    corrupt_shape = true;
                    continue;
                }
                // Internal keys are sorted; children partition the range.
                // Push right-to-left so leaves pop in left-to-right order.
                let mut sep = Vec::with_capacity(count as usize);
                for i in 0..count {
                    sep.push(self.internal_key(rt, node, i, sink)?);
                }
                for w in sep.windows(2) {
                    if w[0] >= w[1] {
                        report.violation(format!(
                            "internal keys out of order: {:#x} precedes {:#x}",
                            w[0], w[1]
                        ));
                    }
                }
                for i in (0..=count).rev() {
                    let child = self.internal_child(rt, node, i, sink)?;
                    let lo = if i == 0 { lower } else { Some(sep[i as usize - 1]) };
                    let hi = if i == count { upper } else { Some(sep[i as usize]) };
                    stack.push((child, depth + 1, lo, hi));
                }
            }
        }
        // All leaves sit at the same depth (B+trees grow at the root).
        if let Some(&(_, d0)) = leaves.first() {
            if leaves.iter().any(|&(_, d)| d != d0) {
                report.violation("leaves at unequal depths".to_string());
            }
        }
        // The doubly-linked leaf chain visits exactly the tree's leaves,
        // in order.
        if !corrupt_shape {
            for (i, &(leaf, _)) in leaves.iter().enumerate() {
                let next = rt.read_oid(leaf, NEXT, sink)?;
                let prev = rt.read_oid(leaf, PREV, sink)?;
                let expect_next = leaves.get(i + 1).map_or(Oid::NULL, |&(n, _)| n);
                let expect_prev = if i == 0 { Oid::NULL } else { leaves[i - 1].0 };
                if next != expect_next {
                    report.violation(format!("leaf chain broken after leaf {i}"));
                }
                if prev != expect_prev {
                    report.violation(format!("leaf back-link broken at leaf {i}"));
                }
            }
        }
        if self.count != keys.len() as u64 {
            report.violation(format!(
                "count field says {} but {} keys are stored",
                self.count,
                keys.len()
            ));
        }
        super::verify::check_membership(&keys, required, optional, &mut report);
        Ok(report)
    }
}

impl KeyedStructure for BplusTree {
    fn create(
        rt: &mut PmRuntime,
        pool: PmoId,
        _value_bytes: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Self> {
        let meta = rt.pool_root(pool, ROOT_OBJ_SIZE, sink)?;
        let mut tree = BplusTree {
            pool,
            meta,
            root: rt.read_oid(meta, ROOT_PTR, sink)?,
            count: rt.read_u64(meta, META_COUNT, sink)?,
        };
        if tree.root.is_null() {
            let leaf = tree.new_node(rt, LEAF, sink)?;
            tree.set_root(rt, leaf, sink)?;
        }
        Ok(tree)
    }

    fn insert(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<()> {
        let (leaf, path) = self.descend(rt, key, sink)?;
        if let Some(slot) = self.find_in_leaf(rt, leaf, key, sink)? {
            // Overwrite in place.
            rt.write_u64(leaf, HEADER + slot * ENTRY + 8, key ^ 0xabcd, sink)?;
            rt.persist(leaf, HEADER + slot * ENTRY, 16, sink)?;
            return Ok(());
        }
        let count = self.node_count(rt, leaf, sink)?;
        if (count as usize) < ORDER {
            self.write_leaf_entry(rt, leaf, count, key, key ^ 0xabcd, sink)?;
            rt.write_u32(leaf, COUNT, count + 1, sink)?;
            rt.persist(leaf, HEADER + count * ENTRY, 16, sink)?;
            rt.persist(leaf, COUNT, 4, sink)?;
            self.bump_count(rt, 1, sink)?;
            return Ok(());
        }
        // Split the leaf, then bubble separators up the path.
        let (mut separator, mut right) = self.split_leaf(rt, leaf, sink)?;
        // Re-insert the key into the correct half.
        let target = if key < separator { leaf } else { right };
        let tcount = self.node_count(rt, target, sink)?;
        self.write_leaf_entry(rt, target, tcount, key, key ^ 0xabcd, sink)?;
        rt.write_u32(target, COUNT, tcount + 1, sink)?;
        rt.persist(target, 0, NODE_BYTES, sink)?;
        self.bump_count(rt, 1, sink)?;
        // Bubble up.
        let mut level = path.len();
        loop {
            match level.checked_sub(1) {
                None => {
                    // New root.
                    let old_root = self.root;
                    let new_root = self.new_node(rt, INTERNAL, sink)?;
                    rt.write_u32(new_root, COUNT, 1, sink)?;
                    rt.write_u64(new_root, KEYS, separator, sink)?;
                    rt.write_oid(new_root, CHILDREN, old_root, sink)?;
                    rt.write_oid(new_root, CHILDREN + 8, right, sink)?;
                    rt.persist(new_root, 0, NODE_BYTES, sink)?;
                    self.set_root(rt, new_root, sink)?;
                    return Ok(());
                }
                Some(l) => {
                    let (parent, idx) = path[l];
                    if (self.node_count(rt, parent, sink)? as usize) < ORDER {
                        self.insert_into_internal(rt, parent, idx, separator, right, sink)?;
                        return Ok(());
                    }
                    // Parent full: insert then split. To keep the logic
                    // simple and correct, split first and insert into the
                    // proper half.
                    let (parent_sep, parent_right) = self.split_internal(rt, parent, sink)?;
                    let (target, at) = if separator < parent_sep {
                        (parent, idx.min(self.node_count(rt, parent, sink)?))
                    } else {
                        // Recompute the slot in the right half.
                        let count = self.node_count(rt, parent_right, sink)?;
                        let mut at = 0;
                        while at < count {
                            if separator < self.internal_key(rt, parent_right, at, sink)? {
                                break;
                            }
                            at += 1;
                        }
                        (parent_right, at)
                    };
                    self.insert_into_internal(rt, target, at, separator, right, sink)?;
                    separator = parent_sep;
                    right = parent_right;
                    level = l;
                }
            }
        }
    }

    fn remove(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<bool> {
        let (leaf, _) = self.descend(rt, key, sink)?;
        let Some(slot) = self.find_in_leaf(rt, leaf, key, sink)? else {
            return Ok(false);
        };
        let count = self.node_count(rt, leaf, sink)?;
        // Swap-remove: move the last entry into the vacated slot.
        if slot != count - 1 {
            let last_key = self.leaf_key(rt, leaf, count - 1, sink)?;
            let last_val = rt.read_u64(leaf, HEADER + (count - 1) * ENTRY + 8, sink)?;
            self.write_leaf_entry(rt, leaf, slot, last_key, last_val, sink)?;
        }
        rt.write_u32(leaf, COUNT, count - 1, sink)?;
        rt.persist(leaf, COUNT, 4, sink)?;
        rt.persist(leaf, HEADER + slot * ENTRY, 16, sink)?;
        self.bump_count(rt, -1, sink)?;
        Ok(true)
    }

    fn contains(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<bool> {
        let (leaf, _) = self.descend(rt, key, sink)?;
        Ok(self.find_in_leaf(rt, leaf, key, sink)?.is_some())
    }

    fn len(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn contract() {
        testutil::exercise_contract::<BplusTree>();
    }

    #[test]
    fn persistence() {
        testutil::exercise_persistence::<BplusTree>();
    }

    #[test]
    fn tracing() {
        testutil::exercise_tracing::<BplusTree>();
    }

    #[test]
    fn grows_by_splitting() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut tree = BplusTree::create(&mut rt, pool, 8, &mut sink).unwrap();
        assert_eq!(tree.height(&mut rt, &mut sink).unwrap(), 1);
        // Enough keys to force leaf splits and a root split.
        for k in 0..1000u64 {
            tree.insert(&mut rt, k.wrapping_mul(0x9e37_79b9), &mut sink).unwrap();
        }
        assert_eq!(tree.len(), 1000);
        assert!(tree.height(&mut rt, &mut sink).unwrap() >= 2, "root must have split");
        for k in 0..1000u64 {
            assert!(tree.contains(&mut rt, k.wrapping_mul(0x9e37_79b9), &mut sink).unwrap());
        }
        assert!(!tree.contains(&mut rt, 1, &mut sink).unwrap());
    }

    #[test]
    fn sequential_inserts_split_correctly() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut tree = BplusTree::create(&mut rt, pool, 8, &mut sink).unwrap();
        for k in 0..500u64 {
            tree.insert(&mut rt, k, &mut sink).unwrap();
        }
        for k in 0..500u64 {
            assert!(tree.contains(&mut rt, k, &mut sink).unwrap(), "key {k}");
        }
        assert!(!tree.contains(&mut rt, 500, &mut sink).unwrap());
    }

    #[test]
    fn verify_contract() {
        testutil::exercise_verify::<BplusTree>();
    }

    #[test]
    fn verify_checks_fanout_and_split_trees() {
        use super::super::CheckedStructure;
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut tree = BplusTree::create(&mut rt, pool, 8, &mut sink).unwrap();
        // Enough keys for leaf and root splits: exercises separator-range,
        // uniform-depth and leaf-chain checks on a multi-level tree.
        let keys: Vec<u64> = (0..500u64).map(|k| k.wrapping_mul(0x9e37_79b9)).collect();
        for &k in &keys {
            tree.insert(&mut rt, k, &mut sink).unwrap();
        }
        let report = tree.verify(&mut rt, &keys, &[], &mut sink).unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.nodes_visited > 4, "split tree has several nodes");
        // A torn COUNT field claiming more entries than the fanout allows
        // must be flagged, not trusted (it would index out of the node).
        rt.write_u32(tree.root, COUNT, ORDER as u32 + 5, &mut sink).unwrap();
        let report = tree.verify(&mut rt, &keys, &[], &mut sink).unwrap();
        assert!(format!("{report}").contains("fanout"), "{report}");
    }

    #[test]
    fn deep_tree_multi_level_split() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut tree = BplusTree::create(&mut rt, pool, 8, &mut sink).unwrap();
        // > ORDER^2/2 keys forces a height-3 tree.
        let n = (ORDER * ORDER / 2 + ORDER * 2) as u64;
        for k in 0..n {
            tree.insert(&mut rt, k, &mut sink).unwrap();
        }
        assert_eq!(tree.len(), n);
        assert!(tree.height(&mut rt, &mut sink).unwrap() >= 3);
        for k in (0..n).step_by(17) {
            assert!(tree.contains(&mut rt, k, &mut sink).unwrap());
        }
        assert!(!tree.contains(&mut rt, n + 5, &mut sink).unwrap());
    }
}
