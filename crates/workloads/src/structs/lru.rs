//! A persistent doubly-linked LRU list (the Redis benchmark's
//! `lru-test` recency structure).

use pmo_runtime::{Oid, PmRuntime, Result};
use pmo_trace::{PmoId, TraceSink};

// Node layout.
const KEY: u32 = 0;
const PREV: u32 = 8;
const NEXT: u32 = 16;
const NODE_SIZE: u64 = 24;

// Root-object layout (shares the pool root with other structures via an
// offset block handed in by the caller — the Redis workload reserves
// bytes 64.. of the root object for the LRU head/tail).

/// A persistent doubly-linked LRU list. Head = most recent.
#[derive(Debug)]
pub struct LruList {
    pool: PmoId,
    /// Root-object OID where `[head, tail, count]` live.
    meta: Oid,
    /// Offset of the head pointer within the meta object.
    meta_off: u32,
    head: Oid,
    tail: Oid,
    count: u64,
}

impl LruList {
    /// Creates (or re-opens) an LRU list whose head/tail/count triple is
    /// stored at `meta + meta_off` (24 bytes).
    ///
    /// # Errors
    ///
    /// Fails if the pool is detached.
    pub fn open(
        rt: &mut PmRuntime,
        pool: PmoId,
        meta: Oid,
        meta_off: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Self> {
        let head = rt.read_oid(meta, meta_off, sink)?;
        let tail = rt.read_oid(meta, meta_off + 8, sink)?;
        let count = rt.read_u64(meta, meta_off + 16, sink)?;
        Ok(LruList { pool, meta, meta_off, head, tail, count })
    }

    fn persist_meta(&self, rt: &mut PmRuntime, sink: &mut dyn TraceSink) -> Result<()> {
        rt.write_oid(self.meta, self.meta_off, self.head, sink)?;
        rt.write_oid(self.meta, self.meta_off + 8, self.tail, sink)?;
        rt.write_u64(self.meta, self.meta_off + 16, self.count, sink)?;
        rt.persist(self.meta, self.meta_off, 24, sink)
    }

    /// Allocates a node for `key` and pushes it at the head (most recent).
    ///
    /// # Errors
    ///
    /// Fails on allocation failure.
    pub fn push_front(
        &mut self,
        rt: &mut PmRuntime,
        key: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<Oid> {
        let node = rt.pmalloc(self.pool, NODE_SIZE, sink)?;
        rt.write_u64(node, KEY, key, sink)?;
        rt.write_oid(node, PREV, Oid::NULL, sink)?;
        rt.write_oid(node, NEXT, self.head, sink)?;
        rt.persist(node, 0, NODE_SIZE, sink)?;
        if !self.head.is_null() {
            rt.write_oid(self.head, PREV, node, sink)?;
            rt.persist(self.head, PREV, 8, sink)?;
        }
        self.head = node;
        if self.tail.is_null() {
            self.tail = node;
        }
        self.count += 1;
        self.persist_meta(rt, sink)?;
        Ok(node)
    }

    /// Unlinks `node` from its current position.
    fn unlink(&mut self, rt: &mut PmRuntime, node: Oid, sink: &mut dyn TraceSink) -> Result<()> {
        let prev = rt.read_oid(node, PREV, sink)?;
        let next = rt.read_oid(node, NEXT, sink)?;
        if prev.is_null() {
            self.head = next;
        } else {
            rt.write_oid(prev, NEXT, next, sink)?;
            rt.persist(prev, NEXT, 8, sink)?;
        }
        if next.is_null() {
            self.tail = prev;
        } else {
            rt.write_oid(next, PREV, prev, sink)?;
            rt.persist(next, PREV, 8, sink)?;
        }
        Ok(())
    }

    /// Moves `node` to the head (a Redis GET's recency update).
    ///
    /// # Errors
    ///
    /// Fails if the pool is detached.
    pub fn touch(&mut self, rt: &mut PmRuntime, node: Oid, sink: &mut dyn TraceSink) -> Result<()> {
        if node == self.head {
            return Ok(());
        }
        self.unlink(rt, node, sink)?;
        rt.write_oid(node, PREV, Oid::NULL, sink)?;
        rt.write_oid(node, NEXT, self.head, sink)?;
        rt.persist(node, 0, NODE_SIZE, sink)?;
        if !self.head.is_null() {
            rt.write_oid(self.head, PREV, node, sink)?;
            rt.persist(self.head, PREV, 8, sink)?;
        }
        self.head = node;
        if self.tail.is_null() {
            self.tail = node;
        }
        self.persist_meta(rt, sink)?;
        Ok(())
    }

    /// Evicts the least-recently-used node; returns its key.
    ///
    /// # Errors
    ///
    /// Fails if the pool is detached.
    pub fn pop_back(
        &mut self,
        rt: &mut PmRuntime,
        sink: &mut dyn TraceSink,
    ) -> Result<Option<u64>> {
        if self.tail.is_null() {
            return Ok(None);
        }
        let victim = self.tail;
        let key = rt.read_u64(victim, KEY, sink)?;
        self.unlink(rt, victim, sink)?;
        rt.pfree(victim, sink)?;
        self.count -= 1;
        self.persist_meta(rt, sink)?;
        Ok(Some(key))
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Keys from most to least recent (diagnostic helper).
    pub fn keys(&self, rt: &mut PmRuntime, sink: &mut dyn TraceSink) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        let mut cur = self.head;
        while !cur.is_null() {
            out.push(rt.read_u64(cur, KEY, sink)?);
            cur = rt.read_oid(cur, NEXT, sink)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    fn fixture() -> (pmo_runtime::PmRuntime, LruList, pmo_trace::NullSink) {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let meta = rt.pool_root(pool, 128, &mut sink).unwrap();
        let lru = LruList::open(&mut rt, pool, meta, 64, &mut sink).unwrap();
        (rt, lru, sink)
    }

    #[test]
    fn push_and_order() {
        let (mut rt, mut lru, mut sink) = fixture();
        for k in 1..=4u64 {
            lru.push_front(&mut rt, k, &mut sink).unwrap();
        }
        assert_eq!(lru.keys(&mut rt, &mut sink).unwrap(), vec![4, 3, 2, 1]);
        assert_eq!(lru.len(), 4);
    }

    #[test]
    fn touch_moves_to_front() {
        let (mut rt, mut lru, mut sink) = fixture();
        let mut nodes = Vec::new();
        for k in 1..=4u64 {
            nodes.push(lru.push_front(&mut rt, k, &mut sink).unwrap());
        }
        lru.touch(&mut rt, nodes[0], &mut sink).unwrap(); // key 1 (tail)
        assert_eq!(lru.keys(&mut rt, &mut sink).unwrap(), vec![1, 4, 3, 2]);
        lru.touch(&mut rt, nodes[2], &mut sink).unwrap(); // key 3 (middle)
        assert_eq!(lru.keys(&mut rt, &mut sink).unwrap(), vec![3, 1, 4, 2]);
        // Touching the head is a no-op.
        lru.touch(&mut rt, nodes[2], &mut sink).unwrap();
        assert_eq!(lru.keys(&mut rt, &mut sink).unwrap(), vec![3, 1, 4, 2]);
    }

    #[test]
    fn pop_back_evicts_lru() {
        let (mut rt, mut lru, mut sink) = fixture();
        for k in 1..=3u64 {
            lru.push_front(&mut rt, k, &mut sink).unwrap();
        }
        assert_eq!(lru.pop_back(&mut rt, &mut sink).unwrap(), Some(1));
        assert_eq!(lru.pop_back(&mut rt, &mut sink).unwrap(), Some(2));
        assert_eq!(lru.pop_back(&mut rt, &mut sink).unwrap(), Some(3));
        assert_eq!(lru.pop_back(&mut rt, &mut sink).unwrap(), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn survives_reopen() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let meta = rt.pool_root(pool, 128, &mut sink).unwrap();
        {
            let mut lru = LruList::open(&mut rt, pool, meta, 64, &mut sink).unwrap();
            lru.push_front(&mut rt, 11, &mut sink).unwrap();
            lru.push_front(&mut rt, 22, &mut sink).unwrap();
        }
        let lru = LruList::open(&mut rt, pool, meta, 64, &mut sink).unwrap();
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.keys(&mut rt, &mut sink).unwrap(), vec![22, 11]);
    }
}
