//! Persistent data structures built on the PMO runtime.
//!
//! These are the *real* (functional) implementations behind both benchmark
//! families: every node lives in pool storage, every pointer is a
//! relocatable OID, and every read/write flows through the runtime's
//! instrumented accessors so the trace contains organic address streams.
//!
//! Inserts perform the structure's full maintenance (AVL rotations,
//! red-black recoloring, B+tree splits); deletes unlink/remove without
//! rebalancing (heights/colors are left stale), a common simplification
//! that preserves functional correctness and the access-pattern shape the
//! evaluation depends on (the op mix is 90% inserts).

mod avl;
mod bplus;
mod hashmap;
mod list;
mod lru;
mod rbtree;
mod strings;
mod verify;

pub use avl::AvlTree;
pub use bplus::BplusTree;
pub use hashmap::PersistentHashmap;
pub use list::LinkedList;
pub use lru::LruList;
pub use rbtree::RbTree;
pub use strings::StringArray;
pub use verify::{CheckReport, CheckedStructure};

use pmo_runtime::{PmRuntime, Result};
use pmo_trace::{PmoId, TraceSink};

/// A keyed persistent structure the micro benchmarks drive.
pub trait KeyedStructure: Sized {
    /// Creates (or re-opens) the structure rooted in `pool`'s root object.
    fn create(
        rt: &mut PmRuntime,
        pool: PmoId,
        value_bytes: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Self>;

    /// Inserts `key` with the deterministic value for it; overwrites on
    /// duplicate.
    fn insert(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<()>;

    /// Removes `key`; returns whether it was present.
    fn remove(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<bool>;

    /// Whether `key` is present.
    fn contains(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<bool>;

    /// Number of elements (volatile counter, for tests).
    fn len(&self) -> u64;

    /// Whether the structure is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The deterministic value payload for a key: the key's bytes repeated.
/// Tests verify stored values against this.
#[must_use]
pub fn value_for(key: u64, len: u32) -> Vec<u8> {
    key.to_le_bytes().iter().copied().cycle().take(len as usize).collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    use pmo_runtime::{Mode, PmRuntime};
    use pmo_trace::{NullSink, PmoId, TraceSink};

    /// A runtime with one 8MB pool, plus a sink, for structure tests.
    pub fn pool_fixture() -> (PmRuntime, PmoId, NullSink) {
        let mut rt = PmRuntime::new();
        let mut sink = NullSink::new();
        let pool = rt.pool_create("test", 8 << 20, Mode::private(), &mut sink).unwrap();
        (rt, pool, sink)
    }

    /// Exercises the full [`super::KeyedStructure`] contract on `S`.
    pub fn exercise_contract<S: super::KeyedStructure>() {
        let (mut rt, pool, mut sink) = pool_fixture();
        let mut s = S::create(&mut rt, pool, 64, &mut sink).unwrap();
        assert!(s.is_empty());

        // Deterministic pseudo-random keys.
        let keys: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
        for (i, &k) in keys.iter().enumerate() {
            s.insert(&mut rt, k, &mut sink).unwrap();
            assert_eq!(s.len(), i as u64 + 1);
        }
        for &k in &keys {
            assert!(s.contains(&mut rt, k, &mut sink).unwrap(), "key {k:#x} missing");
        }
        assert!(!s.contains(&mut rt, 0xdead_beef, &mut sink).unwrap());

        // Duplicate insert does not grow the structure.
        s.insert(&mut rt, keys[0], &mut sink).unwrap();
        assert_eq!(s.len(), 200);

        // Remove half, verify membership split.
        for &k in keys.iter().step_by(2) {
            assert!(s.remove(&mut rt, k, &mut sink).unwrap(), "key {k:#x} not removed");
        }
        assert_eq!(s.len(), 100);
        for (i, &k) in keys.iter().enumerate() {
            let expect = i % 2 == 1;
            assert_eq!(s.contains(&mut rt, k, &mut sink).unwrap(), expect, "key {k:#x}");
        }
        // Removing a missing key reports false.
        assert!(!s.remove(&mut rt, keys[0], &mut sink).unwrap());

        // Re-insert removed keys.
        for &k in keys.iter().step_by(2) {
            s.insert(&mut rt, k, &mut sink).unwrap();
        }
        assert_eq!(s.len(), 200);
        for &k in &keys {
            assert!(s.contains(&mut rt, k, &mut sink).unwrap());
        }
    }

    /// Verifies the structure survives detach/attach (relocation).
    pub fn exercise_persistence<S: super::KeyedStructure>() {
        use pmo_runtime::AttachIntent;
        let (mut rt, pool, mut sink) = pool_fixture();
        let mut s = S::create(&mut rt, pool, 64, &mut sink).unwrap();
        for k in 0..64u64 {
            s.insert(&mut rt, k * 3, &mut sink).unwrap();
        }
        rt.pool_close(pool, &mut sink).unwrap();
        let pool = rt.pool_open("test", AttachIntent::ReadWrite, &mut sink).unwrap();
        let mut s = S::create(&mut rt, pool, 64, &mut sink).unwrap();
        for k in 0..64u64 {
            assert!(s.contains(&mut rt, k * 3, &mut sink).unwrap(), "key {} lost", k * 3);
        }
        assert!(!s.contains(&mut rt, 1, &mut sink).unwrap());
    }

    /// Exercises the [`super::CheckedStructure`] contract: a freshly built
    /// structure verifies clean, and membership drift is detected.
    pub fn exercise_verify<S: super::CheckedStructure>() {
        let (mut rt, pool, mut sink) = pool_fixture();
        let mut s = S::create(&mut rt, pool, 32, &mut sink).unwrap();
        let keys: Vec<u64> = (0..150u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
        for &k in &keys {
            s.insert(&mut rt, k, &mut sink).unwrap();
        }
        let report = s.verify(&mut rt, &keys, &[], &mut sink).unwrap();
        assert!(report.is_clean(), "intact structure must verify clean: {report}");
        assert!(report.nodes_visited > 0);

        // A committed key the structure lost is flagged.
        let mut extended = keys.clone();
        extended.push(0x1234);
        let report = s.verify(&mut rt, &extended, &[], &mut sink).unwrap();
        assert!(!report.is_clean(), "lost key must be flagged");

        // A key that was never committed is flagged...
        let report = s.verify(&mut rt, &keys[1..], &[], &mut sink).unwrap();
        assert!(!report.is_clean(), "phantom key must be flagged");

        // ...unless it is the in-flight (optional) key of the crashed op.
        let report = s.verify(&mut rt, &keys[1..], &keys[..1], &mut sink).unwrap();
        assert!(report.is_clean(), "in-flight key is legal either way: {report}");
    }

    /// Asserts that structure operations emit memory-access trace events.
    pub fn exercise_tracing<S: super::KeyedStructure>() {
        use pmo_trace::CountingSink;
        let (mut rt, pool, mut null) = pool_fixture();
        let mut s = S::create(&mut rt, pool, 64, &mut null).unwrap();
        let mut counter = CountingSink::new();
        let mut dyn_sink: &mut dyn TraceSink = &mut counter;
        s.insert(&mut rt, 42, &mut dyn_sink).unwrap();
        let counts = counter.counts();
        assert!(counts.stores > 0, "insert must emit stores");
        assert!(counts.instructions() > 0);
    }
}
