//! Post-recovery invariant checkers for the persistent structures.
//!
//! After a simulated crash and recovery, a structure must be *internally
//! consistent* (shape invariants hold) and *externally correct* (exactly
//! the committed keys are present). The fault-injection campaigns
//! (`pmo-experiments`' `faultsim`) re-open each structure and run these
//! checkers; a clean report means the redo-log protocol preserved the
//! structure across that crash point.
//!
//! Checkers never panic on a corrupt structure — corruption is the
//! *observation*, not a bug in the checker — and they are cycle-safe:
//! a torn pointer that produces a cycle or a shared subtree is reported
//! as a violation instead of hanging the traversal. Runtime errors
//! (e.g. [`pmo_runtime::RuntimeError::MediaError`] from a poisoned NVM
//! line) propagate as `Err` so the caller can distinguish "the structure
//! is wrong" from "the medium is unreadable".

use std::collections::BTreeSet;

use pmo_runtime::{PmRuntime, Result};
use pmo_trace::TraceSink;

use super::KeyedStructure;

/// Cap on recorded violations: one bad pointer can cascade into thousands
/// of downstream complaints, and the first few localize the damage.
/// Overflow is *counted* in [`CheckReport::violations_dropped`], never
/// silently lost.
const MAX_VIOLATIONS: usize = 32;

/// The outcome of an invariant check.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Nodes reached by the traversal.
    pub nodes_visited: u64,
    /// Human-readable invariant violations (empty = structure is intact),
    /// capped at the first few that localize the damage.
    pub violations: Vec<String>,
    /// Violations beyond the retained cap: counted so a truncated report
    /// can never read as smaller damage than the checker actually found.
    pub violations_dropped: u64,
}

impl CheckReport {
    /// Whether every invariant held (dropped violations count too).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.violations_dropped == 0
    }

    /// Whether the retained list holds every violation found
    /// (`violations_dropped == 0`).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.violations_dropped == 0
    }

    /// Total violations found, retained and dropped.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.violations.len() as u64 + self.violations_dropped
    }

    pub(crate) fn violation(&mut self, msg: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(msg);
        } else {
            self.violations_dropped += 1;
        }
    }
}

impl std::fmt::Display for CheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(f, "clean ({} nodes)", self.nodes_visited)
        } else {
            write!(f, "{} violation(s): {}", self.total_violations(), self.violations.join("; "))?;
            if !self.is_complete() {
                write!(f, " ({} more dropped from the log)", self.violations_dropped)?;
            }
            Ok(())
        }
    }
}

/// A structure that can verify its own shape and contents after recovery.
pub trait CheckedStructure: KeyedStructure {
    /// Checks every structural invariant and that the key set is exactly
    /// `required` plus any subset of `optional` (keys whose inserting
    /// transaction was in flight when the crash hit — the redo protocol
    /// makes them all-or-nothing, so presence and absence are both
    /// legal).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (unreadable media, detached pool);
    /// invariant violations are reported in the [`CheckReport`], not as
    /// errors.
    fn verify(
        &self,
        rt: &mut PmRuntime,
        required: &[u64],
        optional: &[u64],
        sink: &mut dyn TraceSink,
    ) -> Result<CheckReport>;
}

/// Shared membership check: `found` must contain every required key, no
/// key outside required ∪ optional, and no duplicates.
pub(crate) fn check_membership(
    found: &[u64],
    required: &[u64],
    optional: &[u64],
    report: &mut CheckReport,
) {
    let required: BTreeSet<u64> = required.iter().copied().collect();
    let optional: BTreeSet<u64> = optional.iter().copied().collect();
    let mut seen = BTreeSet::new();
    for &k in found {
        if !seen.insert(k) {
            report.violation(format!("key {k:#x} appears more than once"));
        }
        if !required.contains(&k) && !optional.contains(&k) {
            report.violation(format!("key {k:#x} present but never committed"));
        }
    }
    for &k in &required {
        if !seen.contains(&k) {
            report.violation(format!("committed key {k:#x} lost"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_flags_losses_extras_and_duplicates() {
        let mut report = CheckReport::default();
        check_membership(&[1, 2, 2, 9], &[1, 2, 3], &[4], &mut report);
        let text = format!("{report}");
        assert!(text.contains("0x2 appears more than once"), "{text}");
        assert!(text.contains("0x9 present but never committed"), "{text}");
        assert!(text.contains("committed key 0x3 lost"), "{text}");
        assert_eq!(report.violations.len(), 3);
    }

    #[test]
    fn membership_accepts_optional_in_flight_keys() {
        for found in [vec![1u64, 2], vec![1, 2, 7]] {
            let mut report = CheckReport::default();
            check_membership(&found, &[1, 2], &[7], &mut report);
            assert!(report.is_clean(), "{report}");
        }
    }

    #[test]
    fn violation_list_is_bounded_and_overflow_is_counted() {
        let mut report = CheckReport::default();
        let extras: Vec<u64> = (100..1000).collect();
        check_membership(&extras, &[], &[], &mut report);
        assert_eq!(report.violations.len(), MAX_VIOLATIONS);
        assert_eq!(report.violations_dropped, 900 - MAX_VIOLATIONS as u64);
        assert!(!report.is_complete());
        assert_eq!(report.total_violations(), 900);
        let text = format!("{report}");
        assert!(text.contains("900 violation(s)"), "{text}");
        assert!(text.contains("(868 more dropped from the log)"), "{text}");
    }
}
