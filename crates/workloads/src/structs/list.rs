//! A persistent sorted singly-linked list (Table IV's "Linked List").
//!
//! Insertion walks to the sorted position, so "each node access could
//! cause a TLB miss" — the paper singles this benchmark out for its poor
//! locality (§VI.B).

use pmo_runtime::{Oid, PmRuntime, Result};
use pmo_trace::{PmoId, TraceSink};

use super::{value_for, KeyedStructure};

// Node layout.
const KEY: u32 = 0;
const NEXT: u32 = 8;
const VALUE: u32 = 16;

// Root-object layout.
const HEAD: u32 = 0;
const COUNT: u32 = 8;
const ROOT_OBJ_SIZE: u64 = 16;

/// A persistent sorted linked list.
#[derive(Debug)]
pub struct LinkedList {
    pool: PmoId,
    meta: Oid,
    head: Oid,
    count: u64,
    value_bytes: u32,
}

impl LinkedList {
    fn node_size(&self) -> u64 {
        u64::from(VALUE) + u64::from(self.value_bytes)
    }

    fn set_head(&mut self, rt: &mut PmRuntime, head: Oid, sink: &mut dyn TraceSink) -> Result<()> {
        self.head = head;
        rt.write_oid(self.meta, HEAD, head, sink)?;
        rt.persist(self.meta, HEAD, 8, sink)
    }

    fn bump_count(
        &mut self,
        rt: &mut PmRuntime,
        delta: i64,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        self.count = self.count.wrapping_add_signed(delta);
        rt.write_u64(self.meta, COUNT, self.count, sink)
    }

    /// Collects all keys in list order (diagnostic helper).
    pub fn keys(&self, rt: &mut PmRuntime, sink: &mut dyn TraceSink) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        let mut cur = self.head;
        while !cur.is_null() {
            out.push(rt.read_u64(cur, KEY, sink)?);
            cur = rt.read_oid(cur, NEXT, sink)?;
        }
        Ok(out)
    }
}

impl super::CheckedStructure for LinkedList {
    fn verify(
        &self,
        rt: &mut PmRuntime,
        required: &[u64],
        optional: &[u64],
        sink: &mut dyn TraceSink,
    ) -> Result<super::CheckReport> {
        use std::collections::BTreeSet;
        let mut report = super::CheckReport::default();
        // Reachability walk from the head. A torn NEXT pointer can close a
        // cycle; the visited set turns that into a violation instead of an
        // infinite walk.
        let cap = required.len() + optional.len() + 1;
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut keys = Vec::new();
        let mut cur = self.head;
        while !cur.is_null() {
            if !seen.insert(cur.to_raw()) {
                report.violation("cycle in the list".to_string());
                break;
            }
            if seen.len() > cap {
                report.violation(format!("more than {cap} nodes reachable"));
                break;
            }
            let key = rt.read_u64(cur, KEY, sink)?;
            let mut value = vec![0u8; self.value_bytes as usize];
            rt.read_bytes(cur, VALUE, &mut value, sink)?;
            if value != value_for(key, self.value_bytes) {
                report.violation(format!("value of key {key:#x} is corrupt"));
            }
            keys.push(key);
            cur = rt.read_oid(cur, NEXT, sink)?;
        }
        report.nodes_visited = keys.len() as u64;
        // The list is sorted (strictly: duplicate keys overwrite in place).
        for w in keys.windows(2) {
            if w[0] >= w[1] {
                report.violation(format!("sort order violated: {:#x} precedes {:#x}", w[0], w[1]));
            }
        }
        if self.count != keys.len() as u64 {
            report.violation(format!(
                "count field says {} but {} nodes are reachable",
                self.count,
                keys.len()
            ));
        }
        super::verify::check_membership(&keys, required, optional, &mut report);
        Ok(report)
    }
}

impl KeyedStructure for LinkedList {
    fn create(
        rt: &mut PmRuntime,
        pool: PmoId,
        value_bytes: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Self> {
        let meta = rt.pool_root(pool, ROOT_OBJ_SIZE, sink)?;
        let head = rt.read_oid(meta, HEAD, sink)?;
        let count = rt.read_u64(meta, COUNT, sink)?;
        Ok(LinkedList { pool, meta, head, count, value_bytes })
    }

    fn insert(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<()> {
        // Walk to the sorted position.
        let mut prev = Oid::NULL;
        let mut cur = self.head;
        while !cur.is_null() {
            let k = rt.read_u64(cur, KEY, sink)?;
            sink.compute(4);
            if k == key {
                let value = value_for(key, self.value_bytes);
                rt.write_bytes(cur, VALUE, &value, sink)?;
                rt.persist(cur, VALUE, u64::from(self.value_bytes), sink)?;
                return Ok(());
            }
            if k > key {
                break;
            }
            prev = cur;
            cur = rt.read_oid(cur, NEXT, sink)?;
        }
        let node = rt.pmalloc(self.pool, self.node_size(), sink)?;
        rt.write_u64(node, KEY, key, sink)?;
        rt.write_oid(node, NEXT, cur, sink)?;
        let value = value_for(key, self.value_bytes);
        rt.write_bytes(node, VALUE, &value, sink)?;
        rt.persist(node, 0, self.node_size(), sink)?;
        if prev.is_null() {
            self.set_head(rt, node, sink)?;
        } else {
            rt.write_oid(prev, NEXT, node, sink)?;
            rt.persist(prev, NEXT, 8, sink)?;
        }
        self.bump_count(rt, 1, sink)?;
        Ok(())
    }

    fn remove(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<bool> {
        let mut prev = Oid::NULL;
        let mut cur = self.head;
        while !cur.is_null() {
            let k = rt.read_u64(cur, KEY, sink)?;
            sink.compute(4);
            if k == key {
                let next = rt.read_oid(cur, NEXT, sink)?;
                if prev.is_null() {
                    self.set_head(rt, next, sink)?;
                } else {
                    rt.write_oid(prev, NEXT, next, sink)?;
                    rt.persist(prev, NEXT, 8, sink)?;
                }
                rt.pfree(cur, sink)?;
                self.bump_count(rt, -1, sink)?;
                return Ok(true);
            }
            if k > key {
                return Ok(false); // sorted: key cannot appear later
            }
            prev = cur;
            cur = rt.read_oid(cur, NEXT, sink)?;
        }
        Ok(false)
    }

    fn contains(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<bool> {
        let mut cur = self.head;
        while !cur.is_null() {
            let k = rt.read_u64(cur, KEY, sink)?;
            sink.compute(4);
            if k == key {
                return Ok(true);
            }
            if k > key {
                return Ok(false);
            }
            cur = rt.read_oid(cur, NEXT, sink)?;
        }
        Ok(false)
    }

    fn len(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn contract() {
        testutil::exercise_contract::<LinkedList>();
    }

    #[test]
    fn persistence() {
        testutil::exercise_persistence::<LinkedList>();
    }

    #[test]
    fn tracing() {
        testutil::exercise_tracing::<LinkedList>();
    }

    #[test]
    fn verify_contract() {
        testutil::exercise_verify::<LinkedList>();
    }

    #[test]
    fn verify_detects_cycle_without_hanging() {
        use super::super::CheckedStructure;
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut list = LinkedList::create(&mut rt, pool, 16, &mut sink).unwrap();
        for k in [1u64, 2, 3] {
            list.insert(&mut rt, k, &mut sink).unwrap();
        }
        // A torn NEXT pointer closes the list on itself.
        rt.write_oid(list.head, NEXT, list.head, &mut sink).unwrap();
        let report = list.verify(&mut rt, &[1, 2, 3], &[], &mut sink).unwrap();
        assert!(format!("{report}").contains("cycle"), "{report}");
    }

    #[test]
    fn stays_sorted() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut list = LinkedList::create(&mut rt, pool, 16, &mut sink).unwrap();
        for &k in &[50u64, 10, 90, 30, 70, 20] {
            list.insert(&mut rt, k, &mut sink).unwrap();
        }
        assert_eq!(list.keys(&mut rt, &mut sink).unwrap(), vec![10, 20, 30, 50, 70, 90]);
        list.remove(&mut rt, 10, &mut sink).unwrap(); // head removal
        list.remove(&mut rt, 90, &mut sink).unwrap(); // tail removal
        list.remove(&mut rt, 30, &mut sink).unwrap(); // middle removal
        assert_eq!(list.keys(&mut rt, &mut sink).unwrap(), vec![20, 50, 70]);
    }
}
