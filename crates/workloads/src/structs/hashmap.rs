//! A persistent chained hash map (WHISPER's Hashmap/Echo substrate and
//! the Redis dict).

use pmo_runtime::{Oid, PmRuntime, Result};
use pmo_trace::{PmoId, TraceSink};

use super::{value_for, KeyedStructure};

// Chain-node layout.
const KEY: u32 = 0;
const NEXT: u32 = 8;
const PAYLOAD: u32 = 16; // u64 payload (aux pointer for Redis-style use)
const VALUE: u32 = 24;

// Root-object layout.
const BUCKETS_PTR: u32 = 0;
const NBUCKETS: u32 = 8;
const COUNT: u32 = 16;
const ROOT_OBJ_SIZE: u64 = 24;

/// Default bucket count for [`KeyedStructure::create`].
pub const DEFAULT_BUCKETS: u64 = 1024;

fn hash(key: u64) -> u64 {
    // SplitMix64 finalizer.
    let mut x = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A persistent chained hash map.
#[derive(Debug)]
pub struct PersistentHashmap {
    pool: PmoId,
    meta: Oid,
    buckets: Oid,
    nbuckets: u64,
    count: u64,
    value_bytes: u32,
}

impl PersistentHashmap {
    /// Creates (or re-opens) a map with an explicit bucket count.
    ///
    /// # Errors
    ///
    /// Fails if the pool is not attached or allocation fails.
    pub fn with_buckets(
        rt: &mut PmRuntime,
        pool: PmoId,
        nbuckets: u64,
        value_bytes: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Self> {
        let meta = rt.pool_root(pool, ROOT_OBJ_SIZE, sink)?;
        let mut buckets = rt.read_oid(meta, BUCKETS_PTR, sink)?;
        let count;
        let nbuckets = if buckets.is_null() {
            buckets = rt.pmalloc(pool, nbuckets * 8, sink)?;
            // Zero the bucket array (NULL chain heads).
            let zeros = vec![0u8; (nbuckets * 8) as usize];
            rt.write_bytes(buckets, 0, &zeros, sink)?;
            rt.persist(buckets, 0, nbuckets * 8, sink)?;
            rt.write_oid(meta, BUCKETS_PTR, buckets, sink)?;
            rt.write_u64(meta, NBUCKETS, nbuckets, sink)?;
            rt.write_u64(meta, COUNT, 0, sink)?;
            rt.persist(meta, 0, ROOT_OBJ_SIZE, sink)?;
            count = 0;
            nbuckets
        } else {
            count = rt.read_u64(meta, COUNT, sink)?;
            rt.read_u64(meta, NBUCKETS, sink)?
        };
        Ok(PersistentHashmap { pool, meta, buckets, nbuckets, count, value_bytes })
    }

    fn node_size(&self) -> u64 {
        u64::from(VALUE) + u64::from(self.value_bytes)
    }

    fn bucket_slot(&self, key: u64) -> u32 {
        ((hash(key) % self.nbuckets) * 8) as u32
    }

    fn find_node(
        &self,
        rt: &mut PmRuntime,
        key: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<Option<Oid>> {
        let mut cur = rt.read_oid(self.buckets, self.bucket_slot(key), sink)?;
        while !cur.is_null() {
            sink.compute(4);
            if rt.read_u64(cur, KEY, sink)? == key {
                return Ok(Some(cur));
            }
            cur = rt.read_oid(cur, NEXT, sink)?;
        }
        Ok(None)
    }

    fn bump_count(
        &mut self,
        rt: &mut PmRuntime,
        delta: i64,
        sink: &mut dyn TraceSink,
    ) -> Result<()> {
        self.count = self.count.wrapping_add_signed(delta);
        rt.write_u64(self.meta, COUNT, self.count, sink)
    }

    /// Inserts `key` carrying an auxiliary 8-byte payload (used by the
    /// Redis benchmark to point at LRU-list nodes). Returns the node OID.
    ///
    /// # Errors
    ///
    /// Fails on allocation failure or detached pool.
    pub fn put(
        &mut self,
        rt: &mut PmRuntime,
        key: u64,
        payload: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<Oid> {
        if let Some(node) = self.find_node(rt, key, sink)? {
            rt.write_u64(node, PAYLOAD, payload, sink)?;
            let value = value_for(key, self.value_bytes);
            rt.write_bytes(node, VALUE, &value, sink)?;
            rt.persist(node, 0, self.node_size(), sink)?;
            return Ok(node);
        }
        let slot = self.bucket_slot(key);
        let head = rt.read_oid(self.buckets, slot, sink)?;
        let node = rt.pmalloc(self.pool, self.node_size(), sink)?;
        rt.write_u64(node, KEY, key, sink)?;
        rt.write_oid(node, NEXT, head, sink)?;
        rt.write_u64(node, PAYLOAD, payload, sink)?;
        let value = value_for(key, self.value_bytes);
        rt.write_bytes(node, VALUE, &value, sink)?;
        rt.persist(node, 0, self.node_size(), sink)?;
        rt.write_oid(self.buckets, slot, node, sink)?;
        rt.persist(self.buckets, slot, 8, sink)?;
        self.bump_count(rt, 1, sink)?;
        Ok(node)
    }

    /// Looks up `key`, returning its node OID and payload.
    ///
    /// # Errors
    ///
    /// Fails if the pool is detached.
    pub fn get(
        &mut self,
        rt: &mut PmRuntime,
        key: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<Option<(Oid, u64)>> {
        match self.find_node(rt, key, sink)? {
            Some(node) => {
                let payload = rt.read_u64(node, PAYLOAD, sink)?;
                Ok(Some((node, payload)))
            }
            None => Ok(None),
        }
    }
}

impl super::CheckedStructure for PersistentHashmap {
    fn verify(
        &self,
        rt: &mut PmRuntime,
        required: &[u64],
        optional: &[u64],
        sink: &mut dyn TraceSink,
    ) -> Result<super::CheckReport> {
        use std::collections::BTreeSet;
        let mut report = super::CheckReport::default();
        let cap = required.len() + optional.len() + 1;
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut keys = Vec::new();
        'buckets: for b in 0..self.nbuckets {
            let mut cur = rt.read_oid(self.buckets, (b * 8) as u32, sink)?;
            while !cur.is_null() {
                if !seen.insert(cur.to_raw()) {
                    report.violation(format!(
                        "node {:#x} appears in more than one chain position (cycle)",
                        cur.to_raw()
                    ));
                    break;
                }
                if seen.len() > cap {
                    report.violation(format!("more than {cap} nodes reachable"));
                    break 'buckets;
                }
                let key = rt.read_u64(cur, KEY, sink)?;
                // Key integrity: a torn key would (almost surely) hash to a
                // different bucket, stranding the entry where lookups cannot
                // find it.
                if hash(key) % self.nbuckets != b {
                    report.violation(format!(
                        "key {key:#x} is chained in bucket {b} but hashes elsewhere"
                    ));
                }
                let mut value = vec![0u8; self.value_bytes as usize];
                rt.read_bytes(cur, VALUE, &mut value, sink)?;
                if value != value_for(key, self.value_bytes) {
                    report.violation(format!("value of key {key:#x} is corrupt"));
                }
                keys.push(key);
                cur = rt.read_oid(cur, NEXT, sink)?;
            }
        }
        report.nodes_visited = keys.len() as u64;
        if self.count != keys.len() as u64 {
            report.violation(format!(
                "count field says {} but {} entries are reachable",
                self.count,
                keys.len()
            ));
        }
        super::verify::check_membership(&keys, required, optional, &mut report);
        Ok(report)
    }
}

impl KeyedStructure for PersistentHashmap {
    fn create(
        rt: &mut PmRuntime,
        pool: PmoId,
        value_bytes: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<Self> {
        Self::with_buckets(rt, pool, DEFAULT_BUCKETS, value_bytes, sink)
    }

    fn insert(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<()> {
        self.put(rt, key, 0, sink)?;
        Ok(())
    }

    fn remove(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<bool> {
        let slot = self.bucket_slot(key);
        let mut prev = Oid::NULL;
        let mut cur = rt.read_oid(self.buckets, slot, sink)?;
        while !cur.is_null() {
            sink.compute(4);
            if rt.read_u64(cur, KEY, sink)? == key {
                let next = rt.read_oid(cur, NEXT, sink)?;
                if prev.is_null() {
                    rt.write_oid(self.buckets, slot, next, sink)?;
                    rt.persist(self.buckets, slot, 8, sink)?;
                } else {
                    rt.write_oid(prev, NEXT, next, sink)?;
                    rt.persist(prev, NEXT, 8, sink)?;
                }
                rt.pfree(cur, sink)?;
                self.bump_count(rt, -1, sink)?;
                return Ok(true);
            }
            prev = cur;
            cur = rt.read_oid(cur, NEXT, sink)?;
        }
        Ok(false)
    }

    fn contains(&mut self, rt: &mut PmRuntime, key: u64, sink: &mut dyn TraceSink) -> Result<bool> {
        Ok(self.find_node(rt, key, sink)?.is_some())
    }

    fn len(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn contract() {
        testutil::exercise_contract::<PersistentHashmap>();
    }

    #[test]
    fn persistence() {
        testutil::exercise_persistence::<PersistentHashmap>();
    }

    #[test]
    fn tracing() {
        testutil::exercise_tracing::<PersistentHashmap>();
    }

    #[test]
    fn chains_handle_collisions() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        // 2 buckets force heavy chaining.
        let mut map = PersistentHashmap::with_buckets(&mut rt, pool, 2, 16, &mut sink).unwrap();
        for k in 0..100u64 {
            map.insert(&mut rt, k, &mut sink).unwrap();
        }
        assert_eq!(map.len(), 100);
        for k in 0..100u64 {
            assert!(map.contains(&mut rt, k, &mut sink).unwrap());
        }
        // Remove from the middle of chains.
        for k in (0..100u64).step_by(3) {
            assert!(map.remove(&mut rt, k, &mut sink).unwrap());
        }
        for k in 0..100u64 {
            assert_eq!(map.contains(&mut rt, k, &mut sink).unwrap(), k % 3 != 0);
        }
    }

    #[test]
    fn verify_contract() {
        testutil::exercise_verify::<PersistentHashmap>();
    }

    #[test]
    fn verify_detects_torn_key_in_chain() {
        use super::super::CheckedStructure;
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut map = PersistentHashmap::with_buckets(&mut rt, pool, 64, 16, &mut sink).unwrap();
        let keys: Vec<u64> = (0..40).collect();
        for &k in &keys {
            map.insert(&mut rt, k, &mut sink).unwrap();
        }
        // Tear one entry's key: it now hashes to a different bucket than
        // the chain it sits in, stranding it where lookups cannot find it.
        let (node, _) = map.get(&mut rt, 7, &mut sink).unwrap().unwrap();
        rt.write_u64(node, KEY, 0xdead_beef_0000, &mut sink).unwrap();
        let report = map.verify(&mut rt, &keys, &[], &mut sink).unwrap();
        assert!(!report.is_clean());
        assert!(format!("{report}").contains("hashes elsewhere"), "{report}");
    }

    #[test]
    fn payload_roundtrip() {
        let (mut rt, pool, mut sink) = testutil::pool_fixture();
        let mut map = PersistentHashmap::with_buckets(&mut rt, pool, 16, 8, &mut sink).unwrap();
        let node = map.put(&mut rt, 5, 0xfeed, &mut sink).unwrap();
        let (found, payload) = map.get(&mut rt, 5, &mut sink).unwrap().unwrap();
        assert_eq!(found, node);
        assert_eq!(payload, 0xfeed);
        // Overwrite updates the payload in place.
        let node2 = map.put(&mut rt, 5, 0xbeef, &mut sink).unwrap();
        assert_eq!(node, node2);
        assert_eq!(map.get(&mut rt, 5, &mut sink).unwrap().unwrap().1, 0xbeef);
        assert_eq!(map.len(), 1);
        assert!(map.get(&mut rt, 6, &mut sink).unwrap().is_none());
    }
}
