//! A Zipfian key sampler (YCSB's request distribution).
//!
//! Uses the classic Gray et al. "quick approximation" with precomputed
//! constants, so sampling is O(1) per draw. Rank 0 is the hottest key.

use rand::Rng;

/// O(1) Zipfian sampler over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a sampler over `n` items with skew `theta` (YCSB uses
    /// 0.99; 0 = uniform-ish, larger = more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `[0, 1)`.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf over an empty set");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf { n, theta, alpha, zetan, eta }
    }

    /// The YCSB default skew (0.99 is outside our supported range for the
    /// approximation's stability; 0.9 is the conventional substitute).
    #[must_use]
    pub fn ycsb(n: u64) -> Self {
        Self::new(n, 0.9)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n, integral approximation for large n.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // integral of x^-theta from 10_000 to n.
            let a = 1.0 - theta;
            head + ((n as f64).powf(a) - 10_000f64.powf(a)) / a
        }
    }

    /// Number of items.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(100, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn skew_concentrates_mass_on_head() {
        let zipf = Zipf::ycsb(10_000);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head_hits = 0u32;
        const DRAWS: u32 = 20_000;
        for _ in 0..DRAWS {
            if zipf.sample(&mut rng) < 100 {
                head_hits += 1;
            }
        }
        // Under uniform, the top 1% would get ~1% of draws; under
        // theta=0.9 Zipf it gets the majority.
        let share = f64::from(head_hits) / f64::from(DRAWS);
        assert!(share > 0.35, "head share {share}");
    }

    #[test]
    fn low_theta_is_flatter() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut head_share = |theta: f64| {
            let zipf = Zipf::new(1_000, theta);
            let hits = (0..10_000).filter(|_| zipf.sample(&mut rng) < 10).count();
            hits as f64 / 10_000.0
        };
        assert!(head_share(0.1) < head_share(0.95));
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let zipf = Zipf::new(500, 0.9);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn large_n_constructs() {
        let zipf = Zipf::new(10_000_000, 0.9);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(zipf.sample(&mut rng) < 10_000_000);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 0.5);
    }
}
