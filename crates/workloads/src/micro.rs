//! The multi-PMO microbenchmarks (Table IV): AVL, RB-tree, B+tree, linked
//! list, string swap — each PMO holding one structure instance, with the
//! paper's per-operation permission protocol:
//!
//! > "we enable the write permissions of a PMO before and after every data
//! > structure operation ... The application has read permission for all
//! > PMOs. ... 90% instructions are insert operations." (§V)
//!
//! Setup (attach + read grants + population) and the measured operation
//! phase are separate [`Workload`] methods so experiments can window their
//! measurements to the operation phase.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmo_runtime::{Mode, PmRuntime};
use pmo_trace::{OpKind, Perm, PmoId, TraceEvent, TraceSink};

use crate::config::MicroConfig;
use crate::structs::{AvlTree, BplusTree, KeyedStructure, LinkedList, RbTree, StringArray};
use crate::Workload;

/// Which microbenchmark to run (Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MicroBench {
    /// AVL tree insert/delete.
    Avl,
    /// Red-black tree insert/delete.
    Rbt,
    /// B+tree insert/delete.
    BplusTree,
    /// Sorted linked-list insert/delete.
    LinkedList,
    /// Random string swaps in a string array.
    StringSwap,
}

impl MicroBench {
    /// All five benchmarks, in the paper's order.
    pub const ALL: [MicroBench; 5] = [
        MicroBench::Avl,
        MicroBench::Rbt,
        MicroBench::BplusTree,
        MicroBench::LinkedList,
        MicroBench::StringSwap,
    ];

    /// The paper's abbreviation (AVL, RBT, BT, LL, SS).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MicroBench::Avl => "AVL",
            MicroBench::Rbt => "RBT",
            MicroBench::BplusTree => "BT",
            MicroBench::LinkedList => "LL",
            MicroBench::StringSwap => "SS",
        }
    }
}

impl std::fmt::Display for MicroBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

enum Structures {
    Avl(Vec<AvlTree>),
    Rbt(Vec<RbTree>),
    Bplus(Vec<BplusTree>),
    List(Vec<LinkedList>),
    Strings(Vec<StringArray>),
}

struct State {
    rt: PmRuntime,
    pools: Vec<PmoId>,
    structures: Structures,
    /// Live keys per active PMO (victims for delete operations).
    live_keys: Vec<Vec<u64>>,
    rng: StdRng,
}

/// A runnable microbenchmark instance.
pub struct MicroWorkload {
    bench: MicroBench,
    config: MicroConfig,
    state: Option<State>,
}

impl MicroWorkload {
    /// Creates the workload (nothing runs until [`Workload::setup`]).
    #[must_use]
    pub fn new(bench: MicroBench, config: MicroConfig) -> Self {
        MicroWorkload { bench, config, state: None }
    }

    /// The benchmark variant.
    #[must_use]
    pub fn bench(&self) -> MicroBench {
        self.bench
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MicroConfig {
        &self.config
    }

    fn insert_one(state: &mut State, idx: usize, key: u64, sink: &mut dyn TraceSink) {
        let rt = &mut state.rt;
        match &mut state.structures {
            Structures::Avl(v) => v[idx].insert(rt, key, sink).expect("insert"),
            Structures::Rbt(v) => v[idx].insert(rt, key, sink).expect("insert"),
            Structures::Bplus(v) => v[idx].insert(rt, key, sink).expect("insert"),
            Structures::List(v) => v[idx].insert(rt, key, sink).expect("insert"),
            Structures::Strings(_) => unreachable!("string swap has no insert"),
        }
        state.live_keys[idx].push(key);
    }

    fn delete_one(state: &mut State, idx: usize, key: u64, sink: &mut dyn TraceSink) -> bool {
        let rt = &mut state.rt;
        match &mut state.structures {
            Structures::Avl(v) => v[idx].remove(rt, key, sink).expect("remove"),
            Structures::Rbt(v) => v[idx].remove(rt, key, sink).expect("remove"),
            Structures::Bplus(v) => v[idx].remove(rt, key, sink).expect("remove"),
            Structures::List(v) => v[idx].remove(rt, key, sink).expect("remove"),
            Structures::Strings(_) => unreachable!("string swap has no delete"),
        }
    }
}

impl Workload for MicroWorkload {
    fn name(&self) -> String {
        format!("{}-{}pmo", self.bench.label(), self.config.active_pmos)
    }

    fn setup(&mut self, sink: &mut dyn TraceSink) {
        let cfg = &self.config;
        let mut rt = PmRuntime::new();
        let rng = StdRng::seed_from_u64(cfg.seed);

        // Attach all PMOs ("1024 consecutive PMOs, each 8MB in size").
        let mut pools = Vec::with_capacity(cfg.pmos as usize);
        for i in 0..cfg.pmos {
            let pool = rt
                .pool_create(&format!("pmo-{i:04}"), cfg.pmo_bytes, Mode::private(), sink)
                .expect("pool creation");
            pools.push(pool);
        }
        // Baseline: read permission for all PMOs.
        for &pool in &pools {
            sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadOnly });
        }

        let active = cfg.active_pmos as usize;
        let structures = {
            // Structure creation writes metadata: wrap in a write window.
            let mut create_all = |mk: &mut dyn FnMut(&mut PmRuntime, PmoId, &mut dyn TraceSink)| {
                for &pool in pools.iter().take(active) {
                    sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
                    mk(&mut rt, pool, sink);
                    sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadOnly });
                }
            };
            match self.bench {
                MicroBench::Avl => {
                    let mut v = Vec::with_capacity(active);
                    create_all(&mut |rt, pool, sink| {
                        v.push(AvlTree::create(rt, pool, cfg.value_bytes, sink).expect("create"));
                    });
                    Structures::Avl(v)
                }
                MicroBench::Rbt => {
                    let mut v = Vec::with_capacity(active);
                    create_all(&mut |rt, pool, sink| {
                        v.push(RbTree::create(rt, pool, cfg.value_bytes, sink).expect("create"));
                    });
                    Structures::Rbt(v)
                }
                MicroBench::BplusTree => {
                    let mut v = Vec::with_capacity(active);
                    create_all(&mut |rt, pool, sink| {
                        v.push(BplusTree::create(rt, pool, cfg.value_bytes, sink).expect("create"));
                    });
                    Structures::Bplus(v)
                }
                MicroBench::LinkedList => {
                    let mut v = Vec::with_capacity(active);
                    create_all(&mut |rt, pool, sink| {
                        v.push(
                            LinkedList::create(rt, pool, cfg.value_bytes, sink).expect("create"),
                        );
                    });
                    Structures::List(v)
                }
                MicroBench::StringSwap => {
                    let mut v = Vec::with_capacity(active);
                    let slots = u64::from(cfg.initial_nodes.max(2));
                    create_all(&mut |rt, pool, sink| {
                        v.push(
                            StringArray::create(rt, pool, slots, cfg.value_bytes, sink)
                                .expect("create"),
                        );
                    });
                    Structures::Strings(v)
                }
            }
        };

        let mut state = State { rt, pools, structures, live_keys: vec![Vec::new(); active], rng };

        // Population: each structure starts with `initial_nodes` elements,
        // inserted under the same per-op permission protocol as the
        // measured phase (string arrays were populated at creation).
        if !matches!(state.structures, Structures::Strings(_)) {
            for idx in 0..active {
                let pool = state.pools[idx];
                for _ in 0..cfg.initial_nodes {
                    let key = state.rng.gen::<u64>();
                    sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
                    Self::insert_one(&mut state, idx, key, sink);
                    sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadOnly });
                }
            }
        }
        self.state = Some(state);
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let cfg = self.config.clone();
        let state = self.state.as_mut().expect("setup() must run before run()");
        let active = cfg.active_pmos as usize;
        for _ in 0..cfg.ops {
            let idx = state.rng.gen_range(0..active);
            let pool = state.pools[idx];
            // Enable write permission for the target PMO, operate, revert
            // to the read-only baseline.
            sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
            sink.event(TraceEvent::Op { kind: OpKind::Begin });
            if let Structures::Strings(arrays) = &mut state.structures {
                let slots = arrays[idx].slots();
                let a = state.rng.gen_range(0..slots);
                let b = state.rng.gen_range(0..slots);
                arrays[idx].swap(&mut state.rt, a, b, sink).expect("swap");
            } else {
                let insert =
                    state.rng.gen_range(0..100) < cfg.insert_pct || state.live_keys[idx].is_empty();
                if insert {
                    let key = state.rng.gen::<u64>();
                    Self::insert_one(state, idx, key, sink);
                } else {
                    let pick = state.rng.gen_range(0..state.live_keys[idx].len());
                    let key = state.live_keys[idx].swap_remove(pick);
                    let removed = Self::delete_one(state, idx, key, sink);
                    debug_assert!(removed, "live key {key:#x} must be present");
                }
            }
            sink.event(TraceEvent::Op { kind: OpKind::End });
            sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadOnly });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmo_trace::{CountingSink, RecordedTrace, TraceStats};

    fn tiny(bench: MicroBench) -> MicroWorkload {
        MicroWorkload::new(
            bench,
            MicroConfig {
                pmos: 8,
                active_pmos: 8,
                pmo_bytes: 1 << 20,
                initial_nodes: 8,
                ops: 50,
                insert_pct: 90,
                value_bytes: 64,
                seed: 7,
            },
        )
    }

    #[test]
    fn all_benchmarks_generate_clean_traces() {
        for bench in MicroBench::ALL {
            let mut w = tiny(bench);
            let mut stats = TraceStats::new();
            w.setup(&mut stats);
            w.run(&mut stats);
            let c = stats.counts();
            assert_eq!(c.attaches, 8, "{bench}");
            assert_eq!(c.ops, 50, "{bench}");
            assert!(c.loads > 0 && c.stores > 0, "{bench}");
            // Two SETPERMs per measured op, plus setup grants.
            assert!(c.set_perms >= 100, "{bench}: {}", c.set_perms);
            assert!(stats.pmo_accesses() > 0, "{bench} accesses PMO memory");
            assert_eq!(stats.touched_pmos(), 8, "{bench} touches every active PMO");
        }
    }

    #[test]
    fn traces_are_deterministic() {
        for bench in [MicroBench::Avl, MicroBench::StringSwap] {
            let run = |seed: u64| {
                let mut cfgd = tiny(bench);
                cfgd.config.seed = seed;
                let mut trace = RecordedTrace::new();
                cfgd.setup(&mut trace);
                cfgd.run(&mut trace);
                trace
            };
            assert_eq!(run(7), run(7), "{bench} same seed, same trace");
            assert_ne!(run(7), run(8), "{bench} different seed, different trace");
        }
    }

    #[test]
    fn active_subset_restricts_op_targets() {
        let mut w = tiny(MicroBench::Avl);
        w.config.active_pmos = 2;
        let mut stats = TraceStats::new();
        w.setup(&mut stats);
        w.run(&mut stats);
        // All 8 PMOs are attached (their headers are initialized), but
        // only the first 2 hold structures and receive operations.
        assert_eq!(stats.counts().attaches, 8);
        let active: u64 = (1..=2).map(|i| stats.accesses_for(PmoId::new(i))).sum();
        let idle: u64 = (3..=8).map(|i| stats.accesses_for(PmoId::new(i))).sum();
        assert!(active > idle * 10, "ops concentrate on active PMOs: active={active} idle={idle}");
    }

    #[test]
    fn op_mix_respects_insert_pct() {
        let mut w = tiny(MicroBench::LinkedList);
        w.config.ops = 400;
        w.config.insert_pct = 50;
        let mut counter = CountingSink::new();
        w.setup(&mut counter);
        w.run(&mut counter);
        // Can't observe inserts directly from counts; sanity-check via the
        // structure state: ~50% of 400 ops inserted on top of 8x8 initial.
        let state = w.state.as_ref().unwrap();
        let live: usize = state.live_keys.iter().map(Vec::len).sum();
        let inserted_minus_deleted = live as i64 - 64;
        assert!(
            inserted_minus_deleted.abs() < 120,
            "roughly balanced mix, got {inserted_minus_deleted}"
        );
    }
}
