//! Workload configurations (paper Tables III and IV).

/// Configuration of the multi-PMO microbenchmarks (Table IV / §V).
///
/// The paper's full scale is 1024 PMOs x 8MB, 1K initial nodes each, and
/// 1M operations (90% inserts). [`MicroConfig::paper`] reproduces that;
/// [`MicroConfig::default`] is a scaled-down configuration sized for quick
/// runs and CI, preserving every structural property (PMO size and
/// granule, per-op permission protocol, 90/10 op mix).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MicroConfig {
    /// Total PMOs attached (the x-axis of Figure 6 varies the *active*
    /// subset).
    pub pmos: u32,
    /// PMOs actively used by operations (<= `pmos`).
    pub active_pmos: u32,
    /// Size of each PMO in bytes (8MB in the paper -> 1GB VA granule).
    pub pmo_bytes: u64,
    /// Initial elements inserted into each active PMO's structure.
    pub initial_nodes: u32,
    /// Operations executed after population.
    pub ops: u64,
    /// Percentage of operations that are inserts (the rest delete).
    pub insert_pct: u8,
    /// Value payload carried by each element (64 bytes in the paper).
    pub value_bytes: u32,
    /// RNG seed (workloads are deterministic given the config).
    pub seed: u64,
}

impl MicroConfig {
    /// The paper's full-scale configuration.
    #[must_use]
    pub fn paper() -> Self {
        MicroConfig {
            pmos: 1024,
            active_pmos: 1024,
            pmo_bytes: 8 << 20,
            initial_nodes: 1024,
            ops: 1_000_000,
            insert_pct: 90,
            value_bytes: 64,
            seed: 0x15ca_2020,
        }
    }

    /// A scaled-down configuration for fast runs.
    #[must_use]
    pub fn quick() -> Self {
        MicroConfig { pmos: 64, active_pmos: 64, initial_nodes: 32, ops: 4_000, ..Self::paper() }
    }

    /// Returns a copy with a different active-PMO count (Figure 6 sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `active > self.pmos`.
    #[must_use]
    pub fn with_active_pmos(mut self, active: u32) -> Self {
        assert!(active <= self.pmos, "active PMOs cannot exceed attached PMOs");
        self.active_pmos = active;
        self
    }
}

impl Default for MicroConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// Configuration of the WHISPER-like single-PMO benchmarks (Table III).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WhisperConfig {
    /// Transactions / operations to execute.
    pub txns: u64,
    /// PMO size in bytes (2GB in the paper).
    pub pmo_bytes: u64,
    /// Whether to wrap *every individual PMO access* in an enable/disable
    /// permission pair. When false (default), one enable/disable pair
    /// brackets each transaction instead — which is what reproduces the
    /// paper's Table V switch rates (~1M/s) and 1-3% overheads; bracketing
    /// every load/store would push the switch rate two orders of magnitude
    /// past the reported rates.
    pub per_access_guard: bool,
    /// Number of distinct keys/records the benchmark works over.
    pub records: u64,
    /// RNG seed.
    pub seed: u64,
}

impl WhisperConfig {
    /// The paper's configuration: 100k transactions on a 2GB PMO
    /// (1M operations for Redis), per-transaction permission switching.
    #[must_use]
    pub fn paper() -> Self {
        WhisperConfig {
            txns: 100_000,
            pmo_bytes: 2 << 30,
            per_access_guard: false,
            records: 65_536,
            seed: 0x15ca_2020,
        }
    }

    /// A scaled-down configuration for fast runs.
    #[must_use]
    pub fn quick() -> Self {
        WhisperConfig { txns: 5_000, records: 4096, ..Self::paper() }
    }
}

impl Default for WhisperConfig {
    fn default() -> Self {
        Self::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scales_match_evaluation_section() {
        let m = MicroConfig::paper();
        assert_eq!(m.pmos, 1024);
        assert_eq!(m.pmo_bytes, 8 << 20);
        assert_eq!(m.initial_nodes, 1024);
        assert_eq!(m.ops, 1_000_000);
        assert_eq!(m.insert_pct, 90);
        assert_eq!(m.value_bytes, 64);
        let w = WhisperConfig::paper();
        assert_eq!(w.txns, 100_000);
        assert_eq!(w.pmo_bytes, 2 << 30);
        assert!(!w.per_access_guard, "per-txn switching reproduces Table V rates");
    }

    #[test]
    fn active_pmo_sweep() {
        let m = MicroConfig::paper().with_active_pmos(16);
        assert_eq!(m.active_pmos, 16);
        assert_eq!(m.pmos, 1024);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn active_beyond_total_panics() {
        let _ = MicroConfig::quick().with_active_pmos(10_000);
    }
}
