//! Benchmark workloads for the PMO domain-virtualization reproduction.
//!
//! Two families, matching the paper's evaluation (§V):
//!
//! - [`WhisperWorkload`]: WHISPER-like single-PMO applications (Echo,
//!   YCSB, TPCC, C-tree, Hashmap, Redis; Table III) with per-transaction
//!   permission switching — used for Table V;
//! - [`MicroWorkload`]: multi-PMO microbenchmarks (AVL, RB-tree, B+tree,
//!   linked list, string swap; Table IV) over up to 1024 PMOs with
//!   per-operation permission switching — used for Tables VI/VII and
//!   Figures 6/7.
//!
//! All workloads execute *functionally* on [`pmo_runtime`] (real persistent
//! data structures, real bytes) and stream their instruction/memory trace
//! into any [`pmo_trace::TraceSink`] — typically a `pmo_sim::Replay`. They
//! are deterministic for a given configuration, which is how the paper's
//! one-trace-many-schemes methodology is reproduced without storing
//! multi-million-event traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod guard;
mod micro;
mod server;
pub mod structs;
mod whisper;
mod zipf;

pub use config::{MicroConfig, WhisperConfig};
pub use guard::PerAccessGuard;
pub use micro::{MicroBench, MicroWorkload};
pub use server::{ServerConfig, ServerWorkload};
pub use whisper::{WhisperBench, WhisperWorkload};
pub use zipf::Zipf;

use pmo_trace::TraceSink;

/// A two-phase benchmark: `setup` attaches PMOs and populates structures,
/// `run` executes the measured operations. Experiments snapshot the
/// simulator between the phases to window their measurements.
pub trait Workload {
    /// Human-readable instance name (e.g. `"AVL-1024pmo"`).
    fn name(&self) -> String;

    /// Attach PMOs, create and populate structures.
    fn setup(&mut self, sink: &mut dyn TraceSink);

    /// Execute the measured operations.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Workload::setup`].
    fn run(&mut self, sink: &mut dyn TraceSink);

    /// Convenience: setup followed by run.
    fn generate(&mut self, sink: &mut dyn TraceSink) {
        self.setup(sink);
        self.run(sink);
    }
}
