//! WHISPER-like single-PMO benchmarks (Table III): Echo, YCSB, TPCC,
//! C-tree, Hashmap, Redis.
//!
//! Each runs against one large PMO (2GB in the paper), bracketing each
//! transaction in an enable/disable permission pair (the granularity that
//! reproduces Table V's ~1M switches/sec; per-access bracketing via
//! [`PerAccessGuard`] is available as
//! `WhisperConfig::per_access_guard`). Updates run as durable redo-log
//! transactions, so the trace carries organic log-write, flush and fence
//! traffic.
//!
//! Substitutions vs. the original WHISPER suite (documented per
//! DESIGN.md): the benchmarks are re-implementations of each
//! application's *core persistent operation loop*, not ports of the full
//! applications; C-tree is modeled as a balanced binary search tree
//! (access-pattern equivalent of PMDK's crit-bit tree).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmo_runtime::{Mode, Oid, PmRuntime};
use pmo_trace::{OpKind, Perm, PmoId, TraceEvent, TraceSink, Va};

use crate::config::WhisperConfig;
use crate::guard::PerAccessGuard;
use crate::structs::{KeyedStructure, LruList, PersistentHashmap, RbTree};
use crate::zipf::Zipf;
use crate::Workload;

/// Which WHISPER-like benchmark to run (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WhisperBench {
    /// Echo: transactional KV store (log append + index update).
    Echo,
    /// YCSB-like: 80% record updates, 20% reads.
    Ycsb,
    /// TPC-C-like: new-order transactions over several tables.
    Tpcc,
    /// C-tree: 100K tree inserts.
    Ctree,
    /// Hashmap: 100K hash-table inserts.
    Hashmap,
    /// Redis: dict + LRU list, gets/puts.
    Redis,
}

impl WhisperBench {
    /// All six benchmarks, in the paper's Table V order.
    pub const ALL: [WhisperBench; 6] = [
        WhisperBench::Echo,
        WhisperBench::Ycsb,
        WhisperBench::Tpcc,
        WhisperBench::Ctree,
        WhisperBench::Hashmap,
        WhisperBench::Redis,
    ];

    /// The paper's benchmark name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WhisperBench::Echo => "Echo",
            WhisperBench::Ycsb => "YCSB",
            WhisperBench::Tpcc => "TPCC",
            WhisperBench::Ctree => "C-tree",
            WhisperBench::Hashmap => "Hashmap",
            WhisperBench::Redis => "Redis",
        }
    }
}

impl std::fmt::Display for WhisperBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

const RECORD_BYTES: u32 = 128;

/// Non-persistent application work per transaction (request parsing,
/// dispatch, response formatting — the bulk of a real server request),
/// per benchmark. Sized so that transaction rates land in the paper's
/// Table V band (~0.7-1.2M switches/sec at 2 switches per transaction),
/// with TPCC doing the least non-PM work per transaction — the paper
/// attributes its largest overhead to "a higher percentage of PMO
/// accesses in the program".
fn txn_app_work(bench: WhisperBench) -> u32 {
    match bench {
        WhisperBench::Echo => 9_000,
        WhisperBench::Ycsb => 7_500,
        WhisperBench::Tpcc => 4_500,
        WhisperBench::Ctree => 9_500,
        WhisperBench::Hashmap => 9_000,
        WhisperBench::Redis => 8_000,
    }
}
const LOG_SLOTS: u64 = 4096;
const LOG_SLOT_BYTES: u64 = 64;

struct WState {
    rt: PmRuntime,
    pool: PmoId,
    regions: Vec<(Va, Va, PmoId)>,
    rng: StdRng,
    /// YCSB-style request skew over record ranks.
    zipf: Zipf,
    // Benchmark-specific persistent anchors.
    map: Option<PersistentHashmap>,
    tree: Option<RbTree>,
    lru: Option<LruList>,
    /// YCSB/TPCC record array.
    records: Oid,
    /// Echo/TPCC append log (circular).
    log: Oid,
    log_cursor: u64,
}

/// A runnable WHISPER-like benchmark instance.
pub struct WhisperWorkload {
    bench: WhisperBench,
    config: WhisperConfig,
    state: Option<WState>,
}

impl WhisperWorkload {
    /// Creates the workload (nothing runs until [`Workload::setup`]).
    #[must_use]
    pub fn new(bench: WhisperBench, config: WhisperConfig) -> Self {
        WhisperWorkload { bench, config, state: None }
    }

    /// The benchmark variant.
    #[must_use]
    pub fn bench(&self) -> WhisperBench {
        self.bench
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &WhisperConfig {
        &self.config
    }

    fn setup_inner(&mut self, sink: &mut dyn TraceSink) {
        let cfg = &self.config;
        let mut rt = PmRuntime::new();
        let rng = StdRng::seed_from_u64(cfg.seed);
        let pool =
            rt.pool_create("whisper", cfg.pmo_bytes, Mode::private(), sink).expect("pool creation");
        // In per-transaction mode the setup (structure creation and
        // population) runs inside one permission window; in per-access
        // mode the guard brackets each access instead.
        if !cfg.per_access_guard {
            sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
        }
        let mut state = WState {
            rt,
            pool,
            regions: Vec::new(),
            rng,
            zipf: Zipf::ycsb(cfg.records.max(2)),
            map: None,
            tree: None,
            lru: None,
            records: Oid::NULL,
            log: Oid::NULL,
            log_cursor: 0,
        };
        match self.bench {
            WhisperBench::Echo => {
                state.map = Some(
                    PersistentHashmap::with_buckets(&mut state.rt, pool, 4096, 64, sink)
                        .expect("map"),
                );
                state.log =
                    state.rt.pmalloc(pool, LOG_SLOTS * LOG_SLOT_BYTES, sink).expect("log area");
            }
            WhisperBench::Ycsb => {
                state.records = state
                    .rt
                    .pmalloc(pool, cfg.records * u64::from(RECORD_BYTES), sink)
                    .expect("records");
            }
            WhisperBench::Tpcc => {
                state.records = state
                    .rt
                    .pmalloc(pool, cfg.records * u64::from(RECORD_BYTES), sink)
                    .expect("customer table");
                state.log =
                    state.rt.pmalloc(pool, LOG_SLOTS * LOG_SLOT_BYTES, sink).expect("order log");
            }
            WhisperBench::Ctree => {
                state.tree = Some(RbTree::create(&mut state.rt, pool, 64, sink).expect("tree"));
            }
            WhisperBench::Hashmap => {
                state.map = Some(
                    PersistentHashmap::with_buckets(&mut state.rt, pool, 8192, 64, sink)
                        .expect("map"),
                );
            }
            WhisperBench::Redis => {
                let meta = state.rt.pool_root(pool, 128, sink).expect("root");
                state.map = Some(
                    PersistentHashmap::with_buckets(&mut state.rt, pool, 4096, 64, sink)
                        .expect("dict"),
                );
                state.lru = Some(LruList::open(&mut state.rt, pool, meta, 64, sink).expect("lru"));
            }
        }
        if !self.config.per_access_guard {
            sink.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::None });
        }
        self.state = Some(state);
    }

    fn one_txn(state: &mut WState, bench: WhisperBench, records: u64, sink: &mut dyn TraceSink) {
        match bench {
            WhisperBench::Echo => {
                // Log append (durable txn), then index update.
                let key = state.rng.gen_range(0..records * 4);
                let slot = state.log_cursor % LOG_SLOTS;
                state.log_cursor += 1;
                let entry = super::structs::value_for(key, LOG_SLOT_BYTES as u32);
                let mut tx = state.rt.begin_txn(state.pool, sink).expect("txn");
                tx.write_bytes(state.log, (slot * LOG_SLOT_BYTES) as u32, &entry)
                    .expect("log write");
                tx.commit().expect("commit");
                let map = state.map.as_mut().expect("echo map");
                if state.rng.gen_bool(0.5) {
                    map.put(&mut state.rt, key, state.log_cursor, sink).expect("put");
                } else {
                    let _ = map.get(&mut state.rt, key, sink).expect("get");
                }
            }
            WhisperBench::Ycsb => {
                // 80% writes (Table III); zipfian record popularity.
                let rec = state.zipf.sample(&mut state.rng).min(records - 1);
                let off = (rec * u64::from(RECORD_BYTES)) as u32;
                if state.rng.gen_range(0..100) < 80 {
                    let payload = super::structs::value_for(rec, 100);
                    let mut tx = state.rt.begin_txn(state.pool, sink).expect("txn");
                    tx.write_bytes(state.records, off, &payload).expect("update");
                    tx.commit().expect("commit");
                } else {
                    let mut buf = [0u8; 100];
                    state.rt.read_bytes(state.records, off, &mut buf, sink).expect("read");
                }
            }
            WhisperBench::Tpcc => {
                // New-order-like: read a customer, bump its balance, append
                // an order record — one durable transaction, 80% of ops;
                // 20% are stock-level-style reads.
                let cust = state.rng.gen_range(0..records);
                let off = (cust * u64::from(RECORD_BYTES)) as u32;
                if state.rng.gen_range(0..100) < 80 {
                    let balance = state.rt.read_u64(state.records, off, sink).expect("read");
                    let slot = state.log_cursor % LOG_SLOTS;
                    state.log_cursor += 1;
                    let order = super::structs::value_for(cust, LOG_SLOT_BYTES as u32);
                    let mut tx = state.rt.begin_txn(state.pool, sink).expect("txn");
                    tx.write_u64(state.records, off, balance.wrapping_add(1)).expect("bump");
                    tx.write_u64(state.records, off + 8, state.log_cursor).expect("last order");
                    tx.write_bytes(state.log, (slot * LOG_SLOT_BYTES) as u32, &order)
                        .expect("order append");
                    tx.commit().expect("commit");
                } else {
                    let mut buf = [0u8; 64];
                    state.rt.read_bytes(state.records, off, &mut buf, sink).expect("scan");
                }
            }
            WhisperBench::Ctree => {
                let key = state.rng.gen::<u64>();
                state
                    .tree
                    .as_mut()
                    .expect("tree")
                    .insert(&mut state.rt, key, sink)
                    .expect("insert");
            }
            WhisperBench::Hashmap => {
                let key = state.rng.gen::<u64>();
                state.map.as_mut().expect("map").insert(&mut state.rt, key, sink).expect("insert");
            }
            WhisperBench::Redis => {
                // lru-test: gets touch recency, puts insert + recency.
                let key = state.rng.gen_range(0..records * 2);
                let map = state.map.as_mut().expect("dict");
                let lru = state.lru.as_mut().expect("lru");
                match map.get(&mut state.rt, key, sink).expect("get") {
                    Some((_, payload)) if payload != 0 => {
                        lru.touch(&mut state.rt, Oid::from_raw(payload), sink).expect("touch");
                    }
                    _ => {
                        let node = lru.push_front(&mut state.rt, key, sink).expect("push");
                        map.put(&mut state.rt, key, node.to_raw(), sink).expect("put");
                    }
                }
            }
        }
    }
}

impl Workload for WhisperWorkload {
    fn name(&self) -> String {
        self.bench.label().to_string()
    }

    fn setup(&mut self, sink: &mut dyn TraceSink) {
        if self.config.per_access_guard {
            let mut guard = PerAccessGuard::new(sink);
            self.setup_inner(&mut guard);
            let (_, regions) = guard.into_parts();
            self.state.as_mut().expect("setup_inner sets state").regions = regions;
        } else {
            self.setup_inner(sink);
        }
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let cfg = self.config.clone();
        let bench = self.bench;
        let state = self.state.as_mut().expect("setup() must run before run()");
        if cfg.per_access_guard {
            let regions = std::mem::take(&mut state.regions);
            let mut guard = PerAccessGuard::with_regions(sink, regions);
            for _ in 0..cfg.txns {
                guard.event(TraceEvent::Op { kind: OpKind::Begin });
                Self::one_txn(state, bench, cfg.records, &mut guard);
                guard.event(TraceEvent::Op { kind: OpKind::End });
                guard.compute(txn_app_work(bench));
            }
            let (_, regions) = guard.into_parts();
            state.regions = regions;
        } else {
            for _ in 0..cfg.txns {
                sink.event(TraceEvent::SetPerm { pmo: state.pool, perm: Perm::ReadWrite });
                sink.event(TraceEvent::Op { kind: OpKind::Begin });
                Self::one_txn(state, bench, cfg.records, sink);
                sink.event(TraceEvent::Op { kind: OpKind::End });
                sink.event(TraceEvent::SetPerm { pmo: state.pool, perm: Perm::None });
                sink.compute(txn_app_work(bench));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmo_trace::{RecordedTrace, TraceStats};

    fn tiny(bench: WhisperBench) -> WhisperWorkload {
        WhisperWorkload::new(
            bench,
            WhisperConfig {
                txns: 40,
                pmo_bytes: 8 << 20,
                per_access_guard: true,
                records: 128,
                seed: 3,
            },
        )
    }

    #[test]
    fn all_benchmarks_generate_guarded_traces() {
        for bench in WhisperBench::ALL {
            let mut w = tiny(bench);
            let mut stats = TraceStats::new();
            w.setup(&mut stats);
            w.run(&mut stats);
            let c = stats.counts();
            assert_eq!(c.attaches, 1, "{bench}: single PMO");
            assert_eq!(c.ops, 40, "{bench}");
            assert!(c.loads + c.stores > 0, "{bench}");
            // Per-access guarding: every PMO access is bracketed. The +2
            // is pool creation's own header-formatting window, which the
            // runtime opens around its valued formatting stores.
            assert_eq!(
                c.set_perms,
                2 * stats.pmo_accesses() + 2,
                "{bench}: guard pairs must match PMO accesses"
            );
        }
    }

    #[test]
    fn per_txn_mode_has_two_switches_per_txn() {
        for bench in [WhisperBench::Ycsb, WhisperBench::Redis] {
            let mut w = tiny(bench);
            w.config.per_access_guard = false;
            let mut stats = TraceStats::new();
            w.setup(&mut stats);
            w.run(&mut stats);
            // 2 per txn plus the setup window's enable/disable pair and
            // pool creation's header-formatting pair.
            assert_eq!(stats.counts().set_perms, 84, "{bench}: 2 per txn");
        }
    }

    #[test]
    fn transactional_benchmarks_emit_persistence_traffic() {
        for bench in [WhisperBench::Echo, WhisperBench::Ycsb, WhisperBench::Tpcc] {
            let mut w = tiny(bench);
            let mut stats = TraceStats::new();
            w.setup(&mut stats);
            w.run(&mut stats);
            assert!(stats.counts().flushes > 0, "{bench} must flush");
            assert!(stats.counts().fences > 0, "{bench} must fence");
        }
    }

    #[test]
    fn deterministic_traces() {
        let run = || {
            let mut w = tiny(WhisperBench::Echo);
            let mut trace = RecordedTrace::new();
            w.setup(&mut trace);
            w.run(&mut trace);
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn redis_reuses_hot_keys() {
        let mut w = tiny(WhisperBench::Redis);
        w.config.txns = 300;
        let mut stats = TraceStats::new();
        w.setup(&mut stats);
        w.run(&mut stats);
        let state = w.state.as_ref().unwrap();
        // With 256 possible keys and 300 ops, some gets must have hit,
        // exercising LRU touches: the dict must stay below 256 entries.
        assert!(state.map.as_ref().unwrap().len() <= 256);
        assert!(!state.lru.as_ref().unwrap().is_empty());
    }
}
