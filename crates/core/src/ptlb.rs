//! The Permission Table Lookaside Buffer (PTLB) — design 2's per-core
//! permission cache.
//!
//! "A PTLB entry contains a 10-bit domain ID used as tag, a 2-bit
//! permission, and a dirty bit" (§IV.E). SETPERM completes entirely in the
//! PTLB; dirty evictions and context-switch flushes write back to the
//! Permission Table.

use pmo_simarch::{Policy, SetState};
use pmo_trace::{Perm, PmoId};

/// One PTLB entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PtlbEntry {
    /// Domain ID tag.
    pub pmo: PmoId,
    /// Domain permission for the current thread (2-bit encoding).
    pub perm: Perm,
    /// Whether the permission diverges from the Permission Table.
    pub dirty: bool,
}

/// The per-core PTLB.
#[derive(Debug)]
pub struct Ptlb {
    entries: Vec<Option<PtlbEntry>>,
    repl: SetState,
}

impl Ptlb {
    /// Creates an empty PTLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds 64.
    #[must_use]
    pub fn new(capacity: u32) -> Self {
        assert!((1..=64).contains(&capacity), "PTLB capacity must be 1..=64");
        Ptlb {
            entries: vec![None; capacity as usize],
            repl: SetState::new(Policy::TreePlru, capacity as u8),
        }
    }

    /// Associative lookup by domain ID; touches on hit.
    pub fn lookup(&mut self, pmo: PmoId) -> Option<&mut PtlbEntry> {
        let way =
            self.entries.iter().position(|e| e.as_ref().is_some_and(|entry| entry.pmo == pmo))?;
        self.repl.touch(way as u8);
        self.entries[way].as_mut()
    }

    /// Associative lookup without touching replacement state (the replay
    /// fast path validates its cached permission against this).
    #[must_use]
    pub fn probe(&self, pmo: PmoId) -> Option<&PtlbEntry> {
        self.entries.iter().flatten().find(|entry| entry.pmo == pmo)
    }

    /// Touches the entry for `pmo` without reading or changing it; returns
    /// whether it was present. The replay engine's permission-summary table
    /// revalidates through this: a summary hit must update PTLB recency
    /// exactly as the full [`Ptlb::lookup`] on the warm access path would.
    #[inline]
    pub fn touch(&mut self, pmo: PmoId) -> bool {
        let Some(way) =
            self.entries.iter().position(|e| e.as_ref().is_some_and(|entry| entry.pmo == pmo))
        else {
            return false;
        };
        self.repl.touch(way as u8);
        true
    }

    /// Inserts an entry, evicting the PLRU victim if full; returns the
    /// victim for writeback.
    pub fn insert(&mut self, entry: PtlbEntry) -> Option<PtlbEntry> {
        if let Some(existing) = self.lookup(entry.pmo) {
            *existing = entry;
            return None;
        }
        let way = if let Some(free) = self.entries.iter().position(Option::is_none) {
            free
        } else {
            self.repl.victim() as usize
        };
        let evicted = self.entries[way].replace(entry);
        self.repl.touch(way as u8);
        evicted
    }

    /// Invalidates the entry for `pmo` (detach); returns it.
    pub fn invalidate(&mut self, pmo: PmoId) -> Option<PtlbEntry> {
        let way =
            self.entries.iter().position(|e| e.as_ref().is_some_and(|entry| entry.pmo == pmo))?;
        self.entries[way].take()
    }

    /// Flushes all entries (context switch), returning dirty ones for PT
    /// writeback.
    pub fn flush(&mut self) -> Vec<PtlbEntry> {
        let mut dirty = Vec::new();
        for slot in &mut self.entries {
            if let Some(entry) = slot.take() {
                if entry.dirty {
                    dirty.push(entry);
                }
            }
        }
        dirty
    }

    /// Number of valid entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over every valid entry without touching replacement state
    /// (model-checker inspection).
    pub fn entries(&self) -> impl Iterator<Item = &PtlbEntry> + '_ {
        self.entries.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32, perm: Perm) -> PtlbEntry {
        PtlbEntry { pmo: PmoId::new(i), perm, dirty: false }
    }

    #[test]
    fn lookup_and_insert() {
        let mut ptlb = Ptlb::new(16);
        assert!(ptlb.lookup(PmoId::new(1)).is_none());
        ptlb.insert(e(1, Perm::ReadOnly));
        assert_eq!(ptlb.lookup(PmoId::new(1)).unwrap().perm, Perm::ReadOnly);
        assert_eq!(ptlb.occupancy(), 1);
        assert_eq!(ptlb.capacity(), 16);
    }

    #[test]
    fn setperm_in_place() {
        let mut ptlb = Ptlb::new(16);
        ptlb.insert(e(1, Perm::None));
        let entry = ptlb.lookup(PmoId::new(1)).unwrap();
        entry.perm = Perm::ReadWrite;
        entry.dirty = true;
        assert_eq!(ptlb.lookup(PmoId::new(1)).unwrap().perm, Perm::ReadWrite);
        assert!(ptlb.lookup(PmoId::new(1)).unwrap().dirty);
    }

    #[test]
    fn eviction_when_full() {
        let mut ptlb = Ptlb::new(4);
        for i in 1..=4 {
            assert_eq!(ptlb.insert(e(i, Perm::ReadOnly)), None);
        }
        let victim = ptlb.insert(e(9, Perm::ReadWrite));
        assert!(victim.is_some());
        assert_eq!(ptlb.occupancy(), 4);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut ptlb = Ptlb::new(4);
        ptlb.insert(e(1, Perm::ReadOnly));
        assert_eq!(ptlb.insert(e(1, Perm::ReadWrite)), None);
        assert_eq!(ptlb.occupancy(), 1);
        assert_eq!(ptlb.lookup(PmoId::new(1)).unwrap().perm, Perm::ReadWrite);
    }

    #[test]
    fn flush_returns_only_dirty() {
        let mut ptlb = Ptlb::new(4);
        ptlb.insert(PtlbEntry { pmo: PmoId::new(1), perm: Perm::ReadWrite, dirty: true });
        ptlb.insert(e(2, Perm::ReadOnly));
        let dirty = ptlb.flush();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].pmo, PmoId::new(1));
        assert_eq!(ptlb.occupancy(), 0);
    }

    #[test]
    fn invalidate_specific_domain() {
        let mut ptlb = Ptlb::new(4);
        ptlb.insert(e(1, Perm::ReadOnly));
        ptlb.insert(e(2, Perm::ReadOnly));
        assert!(ptlb.invalidate(PmoId::new(1)).is_some());
        assert!(ptlb.invalidate(PmoId::new(1)).is_none());
        assert_eq!(ptlb.occupancy(), 1);
    }
}
