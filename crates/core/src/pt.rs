//! The Permission Table (PT) — design 2's OS-managed permission store.
//!
//! "It is indexed by domain ID and thread ID, and contains the domain
//! permission for the thread" (§IV.E). The PTLB caches it per core; dirty
//! PTLB evictions and context switches write back here.

use std::collections::BTreeMap;

use pmo_trace::{Perm, PmoId, ThreadId};

/// The process-wide Permission Table.
#[derive(Debug, Default)]
pub struct PermissionTable {
    perms: BTreeMap<(PmoId, ThreadId), Perm>,
    domains: BTreeMap<PmoId, u32>, // live-domain registry (attach refcount)
}

impl PermissionTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a domain on attach.
    pub fn add_domain(&mut self, pmo: PmoId) {
        *self.domains.entry(pmo).or_insert(0) += 1;
    }

    /// Unregisters a domain on detach, dropping all its permissions.
    pub fn remove_domain(&mut self, pmo: PmoId) {
        if let Some(count) = self.domains.get_mut(&pmo) {
            *count -= 1;
            if *count == 0 {
                self.domains.remove(&pmo);
                self.perms.retain(|(p, _), _| *p != pmo);
            }
        }
    }

    /// Whether a domain is registered.
    #[must_use]
    pub fn contains(&self, pmo: PmoId) -> bool {
        self.domains.contains_key(&pmo)
    }

    /// The permission `thread` holds for `pmo` (default: inaccessible).
    #[must_use]
    pub fn get(&self, pmo: PmoId, thread: ThreadId) -> Perm {
        self.perms.get(&(pmo, thread)).copied().unwrap_or(Perm::None)
    }

    /// Stores a permission (PTLB writeback or direct OS update).
    pub fn set(&mut self, pmo: PmoId, thread: ThreadId, perm: Perm) {
        if perm == Perm::None {
            self.perms.remove(&(pmo, thread));
        } else {
            self.perms.insert((pmo, thread), perm);
        }
    }

    /// Number of registered domains.
    #[must_use]
    pub fn domains(&self) -> usize {
        self.domains.len()
    }

    /// Iterates over every stored `(domain, thread) → perm` entry
    /// (model-checker inspection; absent pairs hold [`Perm::None`]).
    pub fn entries(&self) -> impl Iterator<Item = ((PmoId, ThreadId), Perm)> + '_ {
        self.perms.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates over every registered domain ID (abstraction-function
    /// inspection: the attached set as this design sees it).
    pub fn domain_ids(&self) -> impl Iterator<Item = PmoId> + '_ {
        self.domains.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inaccessible() {
        let pt = PermissionTable::new();
        assert_eq!(pt.get(PmoId::new(1), ThreadId::MAIN), Perm::None);
    }

    #[test]
    fn per_thread_isolation() {
        let mut pt = PermissionTable::new();
        pt.add_domain(PmoId::new(1));
        pt.set(PmoId::new(1), ThreadId::new(0), Perm::ReadWrite);
        pt.set(PmoId::new(1), ThreadId::new(1), Perm::ReadOnly);
        assert_eq!(pt.get(PmoId::new(1), ThreadId::new(0)), Perm::ReadWrite);
        assert_eq!(pt.get(PmoId::new(1), ThreadId::new(1)), Perm::ReadOnly);
        assert_eq!(pt.get(PmoId::new(1), ThreadId::new(2)), Perm::None);
    }

    #[test]
    fn remove_domain_drops_permissions() {
        let mut pt = PermissionTable::new();
        pt.add_domain(PmoId::new(1));
        pt.set(PmoId::new(1), ThreadId::MAIN, Perm::ReadWrite);
        pt.remove_domain(PmoId::new(1));
        assert!(!pt.contains(PmoId::new(1)));
        assert_eq!(pt.get(PmoId::new(1), ThreadId::MAIN), Perm::None);
        assert_eq!(pt.domains(), 0);
    }

    #[test]
    fn setting_none_erases() {
        let mut pt = PermissionTable::new();
        pt.add_domain(PmoId::new(2));
        pt.set(PmoId::new(2), ThreadId::MAIN, Perm::ReadOnly);
        pt.set(PmoId::new(2), ThreadId::MAIN, Perm::None);
        assert_eq!(pt.get(PmoId::new(2), ThreadId::MAIN), Perm::None);
    }
}
