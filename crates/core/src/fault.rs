//! Protection-fault taxonomy.

use std::error::Error;
use std::fmt;

use pmo_trace::{AccessKind, Perm, PmoId, ThreadId, Va};

/// A protection violation detected by the MMU-integrated domain check.
///
/// Faults are the *security result* of the paper's designs: an access is
/// legal only if the page permission, the attach state, and the per-thread
/// domain permission all allow it (§IV.A); anything else raises one of
/// these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtectionFault {
    /// The per-thread domain permission denies the access
    /// (PKRU / PTLB / PT check failed).
    DomainDenied {
        /// Faulting thread.
        thread: ThreadId,
        /// Domain whose permission was insufficient.
        pmo: PmoId,
        /// What the access needed.
        attempted: AccessKind,
        /// What the thread holds.
        held: Perm,
        /// Faulting address.
        va: Va,
    },
    /// The page-level permission denies the access (classic MMU fault).
    PageDenied {
        /// Faulting thread.
        thread: ThreadId,
        /// What the access needed.
        attempted: AccessKind,
        /// The page's permission.
        held: Perm,
        /// Faulting address.
        va: Va,
    },
    /// The address is not mapped (and not coverable by demand paging).
    PageFault {
        /// Faulting address.
        va: Va,
    },
    /// `pkey_alloc` failed: all protection keys are in use (the default-MPK
    /// scalability wall the paper removes).
    KeysExhausted {
        /// The domain that could not get a key.
        pmo: PmoId,
    },
}

impl ProtectionFault {
    /// The faulting virtual address, if the fault has one.
    #[must_use]
    pub fn va(&self) -> Option<Va> {
        match self {
            ProtectionFault::DomainDenied { va, .. }
            | ProtectionFault::PageDenied { va, .. }
            | ProtectionFault::PageFault { va } => Some(*va),
            ProtectionFault::KeysExhausted { .. } => None,
        }
    }

    /// Whether this is a domain (intra-process isolation) violation, as
    /// opposed to a page fault or resource exhaustion.
    #[must_use]
    pub fn is_domain_violation(&self) -> bool {
        matches!(self, ProtectionFault::DomainDenied { .. })
    }
}

impl fmt::Display for ProtectionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtectionFault::DomainDenied { thread, pmo, attempted, held, va } => write!(
                f,
                "thread {thread} denied {attempted} of pmo {pmo} at {va:#x} (holds {held})"
            ),
            ProtectionFault::PageDenied { thread, attempted, held, va } => {
                write!(f, "thread {thread} denied {attempted} at {va:#x} (page is {held})")
            }
            ProtectionFault::PageFault { va } => write!(f, "page fault at {va:#x}"),
            ProtectionFault::KeysExhausted { pmo } => {
                write!(f, "no free protection key for pmo {pmo}")
            }
        }
    }
}

impl Error for ProtectionFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_display() {
        let d = ProtectionFault::DomainDenied {
            thread: ThreadId::MAIN,
            pmo: PmoId::new(3),
            attempted: AccessKind::Write,
            held: Perm::ReadOnly,
            va: 0x1000,
        };
        assert!(d.is_domain_violation());
        assert_eq!(d.va(), Some(0x1000));
        let p = ProtectionFault::PageFault { va: 0x2000 };
        assert!(!p.is_domain_violation());
        assert_eq!(p.va(), Some(0x2000));
        let k = ProtectionFault::KeysExhausted { pmo: PmoId::new(1) };
        assert_eq!(k.va(), None);
        for fault in [d, p, k] {
            assert!(!format!("{fault}").is_empty());
        }
    }
}
