//! The DTT Lookaside Buffer (DTTLB) — design 1's per-core cache of the DTT.
//!
//! A small fully-associative CAM (16 entries in Table II). Each entry
//! mirrors the paper's field list: VA-range tag (base + granule), 32-bit
//! PMO/domain ID, the protection key the domain maps to (valid bit ⇔ a key
//! is mapped), the domain permission *for the thread running on this core*,
//! and a dirty bit set when the cached key mapping or permission diverges
//! from the DTT.

use pmo_simarch::{Policy, SetState};
use pmo_trace::{Perm, PmoId, Va};

/// One DTTLB entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DttlbEntry {
    /// Region base (VA-range tag).
    pub base: Va,
    /// Region granule size.
    pub granule: u64,
    /// Domain ID.
    pub pmo: PmoId,
    /// Protection key the domain currently maps to (`None` ⇔ valid bit
    /// clear: the domain is not mapped to any key).
    pub key: Option<u8>,
    /// Domain permission for the current thread.
    pub perm: Perm,
    /// Whether this entry diverges from the DTT and must be written back.
    pub dirty: bool,
}

impl DttlbEntry {
    /// Whether the entry covers `va`.
    #[must_use]
    pub fn covers(&self, va: Va) -> bool {
        va >= self.base && va < self.base + self.granule
    }
}

/// The per-core DTTLB.
#[derive(Debug)]
pub struct Dttlb {
    entries: Vec<Option<DttlbEntry>>,
    repl: SetState,
}

impl Dttlb {
    /// Creates an empty DTTLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds 64.
    #[must_use]
    pub fn new(capacity: u32) -> Self {
        assert!((1..=64).contains(&capacity), "DTTLB capacity must be 1..=64");
        Dttlb {
            entries: vec![None; capacity as usize],
            repl: SetState::new(Policy::TreePlru, capacity as u8),
        }
    }

    /// Associative lookup by address; touches the entry on hit.
    pub fn lookup(&mut self, va: Va) -> Option<&mut DttlbEntry> {
        let way =
            self.entries.iter().position(|e| e.as_ref().is_some_and(|entry| entry.covers(va)))?;
        self.repl.touch(way as u8);
        self.entries[way].as_mut()
    }

    /// Lookup by domain ID (used by SETPERM and invalidation).
    pub fn lookup_pmo(&mut self, pmo: PmoId) -> Option<&mut DttlbEntry> {
        let way =
            self.entries.iter().position(|e| e.as_ref().is_some_and(|entry| entry.pmo == pmo))?;
        self.repl.touch(way as u8);
        self.entries[way].as_mut()
    }

    /// Inserts an entry, evicting the PLRU victim if full. Returns the
    /// evicted entry (whose dirty state the caller must write back).
    pub fn insert(&mut self, entry: DttlbEntry) -> Option<DttlbEntry> {
        // Re-insert over the same domain if present.
        if let Some(way) =
            self.entries.iter().position(|e| e.as_ref().is_some_and(|x| x.pmo == entry.pmo))
        {
            let old = self.entries[way].replace(entry);
            self.repl.touch(way as u8);
            debug_assert!(old.is_some());
            return None;
        }
        let way = if let Some(free) = self.entries.iter().position(Option::is_none) {
            free
        } else {
            self.repl.victim() as usize
        };
        let evicted = self.entries[way].replace(entry);
        self.repl.touch(way as u8);
        evicted
    }

    /// Invalidates the entry for `pmo` (SETPERM semantics, detach);
    /// returns it.
    pub fn invalidate_pmo(&mut self, pmo: PmoId) -> Option<DttlbEntry> {
        let way =
            self.entries.iter().position(|e| e.as_ref().is_some_and(|entry| entry.pmo == pmo))?;
        self.entries[way].take()
    }

    /// Flushes every entry (context switch), returning the dirty ones for
    /// DTT writeback.
    pub fn flush(&mut self) -> Vec<DttlbEntry> {
        let mut dirty = Vec::new();
        for slot in &mut self.entries {
            if let Some(entry) = slot.take() {
                if entry.dirty {
                    dirty.push(entry);
                }
            }
        }
        dirty
    }

    /// Number of valid entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over every valid entry without touching replacement state
    /// (model-checker inspection).
    pub fn entries(&self) -> impl Iterator<Item = &DttlbEntry> + '_ {
        self.entries.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB1: u64 = 1 << 30;

    fn entry(i: u32) -> DttlbEntry {
        DttlbEntry {
            base: u64::from(i) * GB1,
            granule: GB1,
            pmo: PmoId::new(i + 1),
            key: None,
            perm: Perm::None,
            dirty: false,
        }
    }

    #[test]
    fn lookup_by_va_and_pmo() {
        let mut tlb = Dttlb::new(16);
        tlb.insert(entry(3));
        assert!(tlb.lookup(3 * GB1 + 123).is_some());
        assert!(tlb.lookup(4 * GB1).is_none());
        assert!(tlb.lookup_pmo(PmoId::new(4)).is_some());
        assert!(tlb.lookup_pmo(PmoId::new(99)).is_none());
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.capacity(), 16);
    }

    #[test]
    fn fills_then_evicts() {
        let mut tlb = Dttlb::new(4);
        for i in 0..4 {
            assert_eq!(tlb.insert(entry(i)), None, "free slots first");
        }
        let evicted = tlb.insert(entry(9));
        assert!(evicted.is_some(), "full CAM evicts");
        assert_eq!(tlb.occupancy(), 4);
    }

    #[test]
    fn reinsert_same_domain_replaces() {
        let mut tlb = Dttlb::new(4);
        tlb.insert(entry(1));
        let mut e = entry(1);
        e.key = Some(7);
        assert_eq!(tlb.insert(e), None);
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.lookup_pmo(PmoId::new(2)).unwrap().key, Some(7));
    }

    #[test]
    fn plru_avoids_recent() {
        let mut tlb = Dttlb::new(4);
        for i in 0..4 {
            tlb.insert(entry(i));
        }
        // Touch domains 1, 2, 3 (pmo ids 2..4), leaving domain 0 cold.
        for i in 1..4 {
            tlb.lookup_pmo(PmoId::new(i + 1));
        }
        let evicted = tlb.insert(entry(9)).unwrap();
        assert_eq!(evicted.pmo, PmoId::new(1), "cold entry evicted");
    }

    #[test]
    fn invalidate_and_flush() {
        let mut tlb = Dttlb::new(4);
        let mut dirty = entry(0);
        dirty.dirty = true;
        tlb.insert(dirty);
        tlb.insert(entry(1));
        assert!(tlb.invalidate_pmo(PmoId::new(2)).is_some());
        assert_eq!(tlb.occupancy(), 1);
        let flushed = tlb.flush();
        assert_eq!(flushed.len(), 1, "only dirty entries returned");
        assert_eq!(flushed[0].pmo, PmoId::new(1));
        assert_eq!(tlb.occupancy(), 0);
    }
}
