//! Per-source cost attribution (the accounting behind Table VII).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Cycles attributed to each overhead source of a protection scheme.
///
/// The buckets mirror the paper's Table VII rows:
///
/// - `permission_change` — WRPKRU / SETPERM instruction cycles;
/// - `entry_changes` — DTTLB/PTLB entry add/remove/modify, free-key checks
///   and PKRU updates (the 1-cycle micro-operations of Table II);
/// - `translation_miss` — DTTLB misses (DTT walks) for MPK virtualization,
///   PTLB misses (Permission Table lookups) for domain virtualization;
/// - `tlb_invalidation` — shootdown cost on key remapping plus the
///   *estimated* cost of the TLB refills it induces (each invalidated entry
///   is charged one future miss penalty at shootdown time, matching the
///   paper's "subsequent TLB misses resulting from TLB invalidations are
///   also taken into account");
/// - `access_latency` — the PTLB lookup added to every domain access
///   (domain virtualization only);
/// - `software` — kernel time: syscalls and per-PTE rewrites (libmpk's
///   dominant cost; attach/detach for everyone).
///
/// The buckets are an attribution of where scheme-induced cycles go; the
/// replay engine separately accumulates total time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Permission-switch instruction cycles.
    pub permission_change: u64,
    /// Hardware-table entry manipulation cycles.
    pub entry_changes: u64,
    /// DTTLB / PTLB miss (table walk) cycles.
    pub translation_miss: u64,
    /// TLB shootdown cycles including estimated induced refills.
    pub tlb_invalidation: u64,
    /// Per-access lookup latency added to the critical path.
    pub access_latency: u64,
    /// Kernel/software cycles (syscalls, PTE rewrites).
    pub software: u64,
}

impl CostBreakdown {
    /// Zeroed breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of all buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.permission_change
            + self.entry_changes
            + self.translation_miss
            + self.tlb_invalidation
            + self.access_latency
            + self.software
    }

    /// Each bucket as a percentage of `base` cycles (Table VII's "% of
    /// lowerbound execution time" presentation).
    #[must_use]
    pub fn as_percent_of(&self, base: u64) -> BreakdownPercent {
        let pct = |v: u64| if base == 0 { 0.0 } else { v as f64 * 100.0 / base as f64 };
        BreakdownPercent {
            permission_change: pct(self.permission_change),
            entry_changes: pct(self.entry_changes),
            translation_miss: pct(self.translation_miss),
            tlb_invalidation: pct(self.tlb_invalidation),
            access_latency: pct(self.access_latency),
            software: pct(self.software),
            total: pct(self.total()),
        }
    }
}

impl Add for CostBreakdown {
    type Output = CostBreakdown;

    fn add(self, rhs: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            permission_change: self.permission_change + rhs.permission_change,
            entry_changes: self.entry_changes + rhs.entry_changes,
            translation_miss: self.translation_miss + rhs.translation_miss,
            tlb_invalidation: self.tlb_invalidation + rhs.tlb_invalidation,
            access_latency: self.access_latency + rhs.access_latency,
            software: self.software + rhs.software,
        }
    }
}

impl AddAssign for CostBreakdown {
    fn add_assign(&mut self, rhs: CostBreakdown) {
        *self = *self + rhs;
    }
}

impl Sub for CostBreakdown {
    type Output = CostBreakdown;

    /// Bucket-wise saturating difference (used to window measurements to a
    /// phase of a replay).
    fn sub(self, rhs: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            permission_change: self.permission_change.saturating_sub(rhs.permission_change),
            entry_changes: self.entry_changes.saturating_sub(rhs.entry_changes),
            translation_miss: self.translation_miss.saturating_sub(rhs.translation_miss),
            tlb_invalidation: self.tlb_invalidation.saturating_sub(rhs.tlb_invalidation),
            access_latency: self.access_latency.saturating_sub(rhs.access_latency),
            software: self.software.saturating_sub(rhs.software),
        }
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "perm-change {} + entry-changes {} + table-miss {} + tlb-inval {} + \
             access-latency {} + software {} = {} cycles",
            self.permission_change,
            self.entry_changes,
            self.translation_miss,
            self.tlb_invalidation,
            self.access_latency,
            self.software,
            self.total()
        )
    }
}

/// [`CostBreakdown`] expressed as percentages of a base execution time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BreakdownPercent {
    /// Permission-switch percentage.
    pub permission_change: f64,
    /// Entry-change percentage.
    pub entry_changes: f64,
    /// Table-miss percentage.
    pub translation_miss: f64,
    /// TLB-invalidation percentage.
    pub tlb_invalidation: f64,
    /// Access-latency percentage.
    pub access_latency: f64,
    /// Software percentage.
    pub software: f64,
    /// Total percentage.
    pub total: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_addition() {
        let a = CostBreakdown {
            permission_change: 10,
            entry_changes: 1,
            translation_miss: 30,
            tlb_invalidation: 286,
            access_latency: 5,
            software: 100,
        };
        assert_eq!(a.total(), 432);
        let b = a + a;
        assert_eq!(b.total(), 864);
        let mut c = a;
        c += a;
        assert_eq!(b, c);
    }

    #[test]
    fn percent_of_base() {
        let a = CostBreakdown { permission_change: 50, ..CostBreakdown::default() };
        let p = a.as_percent_of(1000);
        assert!((p.permission_change - 5.0).abs() < 1e-12);
        assert!((p.total - 5.0).abs() < 1e-12);
        // Zero base does not divide by zero.
        assert_eq!(a.as_percent_of(0).total, 0.0);
    }

    #[test]
    fn display_is_complete() {
        let text = format!("{}", CostBreakdown::new());
        assert!(text.contains("perm-change"));
        assert!(text.contains("software"));
    }
}
