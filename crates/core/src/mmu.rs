//! Shared MMU state each protection scheme embeds: the two-level TLB
//! (typed to the scheme's per-page payload), the radix page table with
//! demand paging, and the registry of attached PMO regions.

use std::collections::{BTreeMap, BTreeSet};

use pmo_simarch::{vpn, MemKind, PageTable, Pte, SimConfig, TlbHierarchy, PAGE_SIZE};
use pmo_trace::{Perm, PmoId, Va};

use crate::fault::ProtectionFault;

/// The smallest page-table granule covering `size` bytes, validated
/// against `base`'s alignment (§IV.A's placement rule; the attach layer in
/// `pmo-runtime` reserves regions with exactly this rule, and schemes
/// re-derive it from the attach event).
///
/// # Panics
///
/// Panics if `size` is zero or exceeds 512GB, or if `base` is not aligned
/// to the derived granule.
#[must_use]
pub fn granule_covering(base: Va, size: u64) -> u64 {
    assert!(size > 0, "PMO size must be positive");
    let granule = [0x1000u64, 0x20_0000, 0x4000_0000, 0x80_0000_0000]
        .into_iter()
        .find(|g| size <= *g)
        .expect("PMO larger than 512GB");
    assert_eq!(base % granule, 0, "attach base {base:#x} not aligned to granule {granule:#x}");
    granule
}

/// An attached PMO's reserved VA region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// Domain / PMO ID.
    pub pmo: PmoId,
    /// Region base (granule-aligned).
    pub base: Va,
    /// Reserved granule size (4KB/2MB/1GB/512GB).
    pub granule: u64,
    /// Bytes actually backed by the PMO (≤ `granule`; the paper: "the PMO
    /// does not have to use the entire VA range allocated to it").
    pub pool_size: u64,
    /// Whether the backing memory is NVM.
    pub nvm: bool,
}

impl Region {
    /// Whether `va` falls inside the backed part of the region.
    #[must_use]
    pub fn backs(&self, va: Va) -> bool {
        va >= self.base && va < self.base + self.pool_size
    }

    /// Whether `va` falls anywhere in the reserved region.
    #[must_use]
    pub fn covers(&self, va: Va) -> bool {
        va >= self.base && va < self.base + self.granule
    }

    /// Number of 4KB pages backing the pool (what `pkey_mprotect` rewrites).
    #[must_use]
    pub fn pool_pages(&self) -> u64 {
        self.pool_size.div_ceil(PAGE_SIZE)
    }

    /// The VPN range `[start, end)` of the reserved region, for shootdowns.
    #[must_use]
    pub fn vpn_range(&self) -> (u64, u64) {
        (vpn(self.base), vpn(self.base + self.granule))
    }
}

/// TLB payload for MPK-based schemes: the PTE's protection key plus the
/// page attributes every scheme needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PkPayload {
    /// Protection key (0 = NULL key, domainless).
    pub pkey: u8,
    /// Page-level permission.
    pub page_perm: Perm,
    /// Backing memory kind.
    pub mem: MemKind,
}

/// TLB payload for the domain-virtualization scheme: the 10-bit domain ID
/// stored in place of the protection key (§IV.E).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DomPayload {
    /// Domain ID ([`PmoId::NULL`] = domainless).
    pub domain: PmoId,
    /// Page-level permission.
    pub page_perm: Perm,
    /// Backing memory kind.
    pub mem: MemKind,
}

/// TLB payload for unprotected / lowerbound schemes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlainPayload {
    /// Page-level permission.
    pub page_perm: Perm,
    /// Backing memory kind.
    pub mem: MemKind,
}

/// The MMU state a scheme embeds.
#[derive(Debug)]
pub struct MmuBase<P> {
    /// Two-level TLB hierarchy.
    pub tlb: TlbHierarchy<P>,
    /// The process page table.
    pub page_table: PageTable,
    regions: BTreeMap<Va, Region>,
    by_pmo: BTreeMap<PmoId, Va>,
    /// Page-aligned VAs demand-mapped as anonymous memory (outside any
    /// region at map time). Tracked so [`MmuBase::attach_region`] can
    /// replace exactly these mappings — `mmap(MAP_FIXED)` semantics —
    /// without walking the whole reserved granule.
    anon_pages: BTreeSet<Va>,
    next_pfn: u64,
    demand_maps: u64,
}

impl<P: Copy> MmuBase<P> {
    /// Creates an MMU from the simulation config.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        MmuBase {
            tlb: TlbHierarchy::new(config),
            page_table: PageTable::new(),
            regions: BTreeMap::new(),
            by_pmo: BTreeMap::new(),
            anon_pages: BTreeSet::new(),
            next_pfn: 1,
            demand_maps: 0,
        }
    }

    /// Registers an attached region, replacing any anonymous mappings the
    /// process demand-mapped in the reserved range while the PMO was
    /// detached (`mmap(MAP_FIXED)` semantics: the fixed mapping discards
    /// whatever was there, and their TLB entries with it — a stale
    /// anonymous PTE would otherwise keep granting read-write access to
    /// the re-attached domain's addresses). Returns the number of TLB
    /// entries invalidated.
    ///
    /// # Panics
    ///
    /// Panics if the PMO is already attached (attach-layer invariant).
    pub fn attach_region(&mut self, region: Region) -> u64 {
        let prior = self.by_pmo.insert(region.pmo, region.base);
        assert!(prior.is_none(), "PMO already attached in MMU");
        let end = region.base + region.granule;
        let stale: Vec<Va> = self.anon_pages.range(region.base..end).copied().collect();
        let mut removed = 0;
        for va in stale {
            self.page_table.unmap_range(va, PAGE_SIZE);
            self.anon_pages.remove(&va);
            removed += self.tlb.invalidate_range(vpn(va), vpn(va) + 1);
        }
        self.regions.insert(region.base, region);
        removed
    }

    /// Removes a region on detach: unmaps its pages and invalidates its
    /// TLB entries. Returns the region and the number of TLB entries
    /// invalidated.
    pub fn detach_region(&mut self, pmo: PmoId) -> Option<(Region, u64)> {
        let base = self.by_pmo.remove(&pmo)?;
        let region = self.regions.remove(&base)?;
        self.page_table.unmap_range(region.base, region.pool_size.div_ceil(PAGE_SIZE) * PAGE_SIZE);
        let (start, end) = region.vpn_range();
        let removed = self.tlb.invalidate_range(start, end);
        Some((region, removed))
    }

    /// The region containing `va`, if any.
    #[must_use]
    pub fn region_at(&self, va: Va) -> Option<Region> {
        let (_, region) = self.regions.range(..=va).next_back()?;
        region.covers(va).then_some(*region)
    }

    /// The region of a PMO, if attached.
    #[must_use]
    pub fn region_of(&self, pmo: PmoId) -> Option<Region> {
        let base = self.by_pmo.get(&pmo)?;
        self.regions.get(base).copied()
    }

    /// Number of attached regions.
    #[must_use]
    pub fn regions_len(&self) -> usize {
        self.regions.len()
    }

    /// Iterates over every attached region (model-checker inspection).
    pub fn regions(&self) -> impl Iterator<Item = &Region> + '_ {
        self.regions.values()
    }

    /// Walks the page table, demand-mapping on first touch.
    ///
    /// - Inside a region's backed range: maps an NVM/DRAM page; `pkey_for`
    ///   supplies the PTE protection key (MPK schemes tag pages with their
    ///   domain's current key; others pass `|_| 0`).
    /// - Inside a region but beyond the pool's backed bytes: page fault.
    /// - Outside all regions: anonymous DRAM page (process heap/stack).
    ///
    /// Returns the PTE and the region (if the address is PMO memory).
    ///
    /// # Errors
    ///
    /// Returns [`ProtectionFault::PageFault`] for unbacked region addresses.
    pub fn walk_or_map(
        &mut self,
        va: Va,
        pkey_for: impl FnOnce(&Region) -> u8,
    ) -> Result<(Pte, Option<Region>), ProtectionFault> {
        let region = self.region_at(va);
        if let Some(pte) = self.page_table.walk(va) {
            return Ok((pte, region));
        }
        match region {
            Some(r) if r.backs(va) => {
                let pte = Pte {
                    pfn: self.next_pfn,
                    perm: Perm::ReadWrite,
                    pkey: pkey_for(&r),
                    mem: if r.nvm { MemKind::Nvm } else { MemKind::Dram },
                };
                self.next_pfn += 1;
                self.demand_maps += 1;
                self.page_table.map_page(va & !(PAGE_SIZE - 1), pte);
                Ok((pte, Some(r)))
            }
            Some(_) => Err(ProtectionFault::PageFault { va }),
            None => {
                let pte =
                    Pte { pfn: self.next_pfn, perm: Perm::ReadWrite, pkey: 0, mem: MemKind::Dram };
                self.next_pfn += 1;
                self.demand_maps += 1;
                self.page_table.map_page(va & !(PAGE_SIZE - 1), pte);
                self.anon_pages.insert(va & !(PAGE_SIZE - 1));
                Ok((pte, None))
            }
        }
    }

    /// Invalidates a region's TLB entries (the `Range_Flush` shootdown of
    /// §IV.D); returns the number of entries removed.
    pub fn shootdown(&mut self, region: &Region) -> u64 {
        let (start, end) = region.vpn_range();
        self.tlb.invalidate_range(start, end)
    }

    /// Total demand-mapped pages.
    #[must_use]
    pub fn demand_maps(&self) -> u64 {
        self.demand_maps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB1: u64 = 1 << 30;

    fn region(id: u32, base: Va) -> Region {
        Region { pmo: PmoId::new(id), base, granule: GB1, pool_size: 8 << 20, nvm: true }
    }

    fn mmu() -> MmuBase<PkPayload> {
        MmuBase::new(&SimConfig::isca2020())
    }

    #[test]
    fn demand_maps_pmo_pages_as_nvm() {
        let mut m = mmu();
        m.attach_region(region(1, GB1));
        let (pte, r) = m.walk_or_map(GB1 + 0x1234, |_| 7).unwrap();
        assert_eq!(pte.mem, MemKind::Nvm);
        assert_eq!(pte.pkey, 7);
        assert_eq!(r.unwrap().pmo, PmoId::new(1));
        // Second walk hits the existing mapping (pkey closure not applied).
        let (pte2, _) = m.walk_or_map(GB1 + 0x1000, |_| 9).unwrap();
        assert_eq!(pte2, pte, "same page, stable PTE");
        assert_eq!(m.demand_maps(), 1);
    }

    #[test]
    fn unbacked_region_addresses_fault() {
        let mut m = mmu();
        m.attach_region(region(1, GB1));
        // The 8MB pool backs only the first 8MB of the 1GB reservation.
        let beyond = GB1 + (8 << 20) + 0x1000;
        assert!(matches!(m.walk_or_map(beyond, |_| 0), Err(ProtectionFault::PageFault { .. })));
    }

    #[test]
    fn anonymous_memory_is_dram_domainless() {
        let mut m = mmu();
        let (pte, r) = m.walk_or_map(0x10_0000, |_| 5).unwrap();
        assert_eq!(pte.mem, MemKind::Dram);
        assert_eq!(pte.pkey, 0);
        assert!(r.is_none());
    }

    #[test]
    fn region_lookup_boundaries() {
        let mut m = mmu();
        m.attach_region(region(1, GB1));
        m.attach_region(region(2, 2 * GB1));
        assert_eq!(m.region_at(GB1).unwrap().pmo, PmoId::new(1));
        assert_eq!(m.region_at(2 * GB1 - 1).unwrap().pmo, PmoId::new(1));
        assert_eq!(m.region_at(2 * GB1).unwrap().pmo, PmoId::new(2));
        assert!(m.region_at(GB1 - 1).is_none());
        assert_eq!(m.regions_len(), 2);
        assert_eq!(m.region_of(PmoId::new(2)).unwrap().base, 2 * GB1);
    }

    #[test]
    fn attach_replaces_anonymous_mappings_in_range() {
        let mut m = mmu();
        // Touch an address inside the (future) region while nothing is
        // attached: an anonymous read-write DRAM page appears.
        let (pte, r) = m.walk_or_map(GB1 + 0x1000, |_| 0).unwrap();
        assert!(r.is_none());
        assert_eq!(pte.mem, MemKind::Dram);
        m.tlb.fill(vpn(GB1 + 0x1000), PkPayload { pkey: 0, page_perm: pte.perm, mem: pte.mem });
        // Attaching over it must discard the anonymous page and its TLB
        // entries (MAP_FIXED), so the next touch maps the PMO page.
        let removed = m.attach_region(region(1, GB1));
        assert_eq!(removed, 2, "stale entry removed from both TLB levels");
        let (pte2, r2) = m.walk_or_map(GB1 + 0x1000, |_| 3).unwrap();
        assert_eq!(r2.unwrap().pmo, PmoId::new(1));
        assert_eq!(pte2.mem, MemKind::Nvm, "PMO page, not the stale anonymous one");
        assert_eq!(pte2.pkey, 3);
        // A second attach elsewhere with no stale pages removes nothing.
        assert_eq!(m.attach_region(region(2, 2 * GB1)), 0);
    }

    #[test]
    fn detach_unmaps_and_invalidates() {
        let mut m = mmu();
        m.attach_region(region(1, GB1));
        let (pte, _) = m.walk_or_map(GB1, |_| 1).unwrap();
        m.tlb.fill(vpn(GB1), PkPayload { pkey: 1, page_perm: pte.perm, mem: pte.mem });
        let (r, removed) = m.detach_region(PmoId::new(1)).unwrap();
        assert_eq!(r.pmo, PmoId::new(1));
        assert_eq!(removed, 2, "entry removed from both TLB levels");
        assert!(m.page_table.walk(GB1).is_none());
        assert!(m.detach_region(PmoId::new(1)).is_none());
    }

    #[test]
    fn shootdown_counts_entries() {
        let mut m = mmu();
        m.attach_region(region(1, GB1));
        for i in 0..4 {
            let va = GB1 + i * PAGE_SIZE;
            let (pte, _) = m.walk_or_map(va, |_| 1).unwrap();
            m.tlb.fill(vpn(va), PkPayload { pkey: 1, page_perm: pte.perm, mem: pte.mem });
        }
        let r = m.region_of(PmoId::new(1)).unwrap();
        assert_eq!(m.shootdown(&r), 8, "4 pages x 2 TLB levels");
        assert_eq!(m.shootdown(&r), 0, "second shootdown finds nothing");
    }

    #[test]
    fn pool_pages_math() {
        let r = region(1, GB1);
        assert_eq!(r.pool_pages(), 2048, "8MB / 4KB");
        assert!(r.backs(GB1));
        assert!(!r.backs(GB1 + (8 << 20)));
        assert!(r.covers(GB1 + (8 << 20)));
        assert!(!r.covers(2 * GB1));
    }
}
