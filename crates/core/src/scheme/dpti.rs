//! Domain page-table isolation (DPTI): per-domain page tables, zero
//! protection keys (after Canella et al.'s kernel-style page-table
//! isolation, applied per protection domain).
//!
//! Each thread owns a page-table hierarchy whose PTEs encode its current
//! domain permissions directly — the access check is free (the permission
//! rides the ordinary page walk), and no keys exist to run out of. The
//! costs move elsewhere: SETPERM is an `mprotect`-style kernel call that
//! rewrites the pool's PTEs (plus a ranged shootdown when write access is
//! revoked), and every context switch is a CR3 write that flushes the
//! domain-tagged TLB entries.
//!
//! The model keeps the per-thread tables as permission maps and reads
//! them through the *loaded* root (`cr3`) — so the planted
//! stale-CR3-on-switch bug makes the incoming thread observably run on
//! the outgoing thread's address space.

use pmo_simarch::{vpn, MemKind, SimConfig, TlbStats};
use pmo_trace::{AccessKind, Perm, PmoId, ThreadId, TraceEvent, Va};

use std::collections::BTreeMap;

use crate::breakdown::CostBreakdown;
use crate::fault::ProtectionFault;
use crate::mmu::{granule_covering, DomPayload, MmuBase, Region};
use crate::scheme::{
    AccessResult, FastHint, ProtectionScheme, ProtocolBug, SchemeKind, SchemeStats,
};

/// Domain page-table isolation.
#[derive(Debug)]
pub struct Dpti {
    mmu: MmuBase<DomPayload>,
    /// Per-thread page-table permission views: what thread `t`'s PTEs
    /// encode for each attached domain. Canonical (no [`Perm::None`]
    /// rows) so the refinement abstraction compares against the spec's
    /// permission map directly.
    tables: BTreeMap<ThreadId, BTreeMap<PmoId, Perm>>,
    /// The loaded page-table root. Coherent with `current` only when the
    /// kernel reloads CR3 on every switch — the obligation the planted
    /// [`ProtocolBug::StaleCr3OnSwitch`] bug violates.
    cr3: ThreadId,
    /// Protocol events (revocation shootdowns) awaiting `drain_events`.
    pending: Vec<TraceEvent>,
    bug: Option<ProtocolBug>,
    cfg: SimConfig,
    current: ThreadId,
    stats: SchemeStats,
    breakdown: CostBreakdown,
}

impl Dpti {
    /// Creates the scheme.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        Self::with_bug(config, None)
    }

    /// Creates the scheme with an optional planted [`ProtocolBug`]
    /// (model-checker self-validation only).
    #[must_use]
    pub fn with_bug(config: &SimConfig, bug: Option<ProtocolBug>) -> Self {
        Dpti {
            mmu: MmuBase::new(config),
            tables: BTreeMap::new(),
            cr3: ThreadId::MAIN,
            pending: Vec::new(),
            bug,
            cfg: config.clone(),
            current: ThreadId::MAIN,
            stats: SchemeStats::default(),
            breakdown: CostBreakdown::default(),
        }
    }

    /// The per-thread page-table views (model-checker inspection).
    #[must_use]
    pub fn tables(&self) -> &BTreeMap<ThreadId, BTreeMap<PmoId, Perm>> {
        &self.tables
    }

    /// The loaded page-table root (model-checker inspection).
    #[must_use]
    pub fn cr3(&self) -> ThreadId {
        self.cr3
    }

    /// The MMU (TLB hierarchy + regions; model-checker inspection).
    #[must_use]
    pub fn mmu(&self) -> &MmuBase<DomPayload> {
        &self.mmu
    }

    /// The permission the *loaded* page table encodes for `domain`.
    fn loaded_perm(&self, domain: PmoId) -> Perm {
        self.tables.get(&self.cr3).and_then(|t| t.get(&domain)).copied().unwrap_or(Perm::None)
    }

    /// Drops every thread's PTE permissions for `pmo` (attach/detach).
    fn drop_domain_rows(&mut self, pmo: PmoId) {
        for table in self.tables.values_mut() {
            table.remove(&pmo);
        }
        self.tables.retain(|_, t| !t.is_empty());
    }
}

impl ProtectionScheme for Dpti {
    fn name(&self) -> &'static str {
        "domain page-table isolation (per-domain page tables)"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::Dpti
    }

    fn attach(&mut self, pmo: PmoId, base: Va, size: u64, nvm: bool) -> u64 {
        let granule = granule_covering(base, size);
        let region = Region { pmo, base, granule, pool_size: size, nvm };
        let removed = self.mmu.attach_region(region);
        self.stats.tlb_entries_invalidated += removed;
        self.drop_domain_rows(pmo);
        // Attach clones the pool's mappings into the per-domain tables.
        let cycles = self.cfg.attach_kernel_cycles
            + self.cfg.syscall_cycles
            + self.cfg.pte_write_cycles * region.pool_pages();
        self.breakdown.software += cycles;
        cycles
    }

    fn detach(&mut self, pmo: PmoId) -> u64 {
        if let Some((_, removed)) = self.mmu.detach_region(pmo) {
            self.stats.tlb_entries_invalidated += removed;
        }
        self.drop_domain_rows(pmo);
        let cycles = self.cfg.attach_kernel_cycles + self.cfg.syscall_cycles;
        self.breakdown.software += cycles;
        cycles
    }

    fn set_perm(&mut self, pmo: PmoId, perm: Perm) -> u64 {
        self.stats.set_perms += 1;
        // SETPERM is an mprotect-style kernel call rewriting the calling
        // thread's PTEs for the whole pool.
        let mut cycles = self.cfg.syscall_cycles;
        self.breakdown.software += self.cfg.syscall_cycles;
        let Some(region) = self.mmu.region_of(pmo) else {
            // No per-domain table exists for a detached domain: the call
            // fails in the kernel before touching any PTE.
            return cycles;
        };
        let pte_writes = self.cfg.pte_write_cycles * region.pool_pages();
        cycles += pte_writes;
        self.breakdown.permission_change += pte_writes;
        let table = self.tables.entry(self.current).or_default();
        let prev = table.get(&pmo).copied().unwrap_or(Perm::None);
        if perm == Perm::None {
            table.remove(&pmo);
            if table.is_empty() {
                self.tables.remove(&self.current);
            }
        } else {
            table.insert(pmo, perm);
        }
        if prev.allows_write() && !perm.allows_write() {
            // Revoking write access must shoot down the pool's cached
            // translations before the revoke is architecturally visible.
            let removed = self.mmu.shootdown(&region);
            self.stats.tlb_entries_invalidated += removed;
            let refills = removed * self.cfg.tlb_miss_penalty;
            let shoot = self.cfg.tlb_invalidation_cycles * u64::from(self.cfg.threads);
            cycles += refills + shoot;
            self.stats.shootdowns += 1;
            self.breakdown.tlb_invalidation += refills + shoot;
            self.pending.push(TraceEvent::Shootdown { pmo });
        }
        cycles
    }

    fn access(&mut self, va: Va, kind: AccessKind) -> AccessResult {
        let (payload, _, cycles) = self.mmu.tlb.lookup(vpn(va));
        let payload = match payload {
            Some(p) => p,
            None => {
                let domain = self.mmu.region_at(va).map_or(PmoId::NULL, |r| r.pmo);
                match self.mmu.walk_or_map(va, |_| 0) {
                    Ok((pte, _)) => {
                        let p = DomPayload { domain, page_perm: pte.perm, mem: pte.mem };
                        self.mmu.tlb.fill(vpn(va), p);
                        p
                    }
                    Err(fault) => {
                        self.stats.faults += 1;
                        return AccessResult { cycles, mem: MemKind::Dram, fault: Some(fault) };
                    }
                }
            }
        };
        // The permission rides the loaded page table's PTEs: no lookup
        // structure, no extra latency — the check reads what CR3 points
        // at, which is the whole point of the stale-CR3 hazard.
        let domain_perm = if payload.domain.is_null() {
            Perm::ReadWrite
        } else {
            self.loaded_perm(payload.domain)
        };
        let effective = domain_perm.meet(payload.page_perm);
        let fault = if effective.allows(kind) {
            None
        } else {
            self.stats.faults += 1;
            Some(ProtectionFault::DomainDenied {
                thread: self.current,
                pmo: payload.domain,
                attempted: kind,
                held: domain_perm,
                va,
            })
        };
        AccessResult { cycles, mem: payload.mem, fault }
    }

    fn context_switch(&mut self, to: ThreadId) -> u64 {
        let mut cycles = 0;
        if self.bug == Some(ProtocolBug::StaleCr3OnSwitch) {
            // Planted bug: the kernel skips the CR3 reload — the incoming
            // thread keeps running on the outgoing thread's page tables.
        } else {
            self.cr3 = to;
            // CR3 write flushes the domain-tagged (non-global) entries;
            // each flushed entry is charged one future refill.
            cycles += self.cfg.cr3_write_cycles;
            let regions: Vec<Region> = self.mmu.regions().copied().collect();
            let mut removed = 0;
            for region in &regions {
                removed += self.mmu.shootdown(region);
            }
            self.stats.tlb_entries_invalidated += removed;
            let refills = removed * self.cfg.tlb_miss_penalty;
            cycles += refills;
            self.breakdown.tlb_invalidation += refills;
            self.breakdown.software += self.cfg.cr3_write_cycles;
        }
        self.current = to;
        self.stats.context_switches += 1;
        cycles
    }

    fn current_thread(&self) -> ThreadId {
        self.current
    }

    fn breakdown(&self) -> CostBreakdown {
        self.breakdown
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn tlb_stats(&self) -> TlbStats {
        *self.mmu.tlb.stats()
    }

    fn drain_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.pending)
    }

    fn fast_hint(&self, va: Va) -> Option<FastHint> {
        let payload = self.mmu.tlb.probe_l1(vpn(va))?;
        let domain_perm = if payload.domain.is_null() {
            Perm::ReadWrite
        } else {
            self.loaded_perm(payload.domain)
        };
        Some(FastHint {
            cycles: self.mmu.tlb.l1_latency(),
            mem: payload.mem,
            effective: domain_perm.meet(payload.page_perm),
            access_latency: 0,
            thread: self.current,
            held: domain_perm,
            fault_pmo: Some(payload.domain),
        })
    }

    fn note_fast_hits(&mut self, _hint: &FastHint, hits: u64, denied: u64) {
        self.mmu.tlb.note_l1_hits(hits);
        self.stats.faults += denied;
    }

    fn fast_revalidate(&mut self, va: Va) -> bool {
        // Context switches flush domain-tagged entries and write-revoking
        // SETPERMs shoot down the range, so TLB presence implies the
        // stored verdict is still what a warm walk would compute.
        self.mmu.tlb.touch_l1(vpn(va)).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB1: u64 = 1 << 30;

    fn scheme_with(n: u32) -> Dpti {
        let mut s = Dpti::new(&SimConfig::isca2020());
        for i in 1..=n {
            s.attach(PmoId::new(i), u64::from(i) * GB1, 8 << 20, true);
        }
        s
    }

    #[test]
    fn enforces_domain_permissions() {
        let mut s = scheme_with(2);
        assert!(!s.access(GB1, AccessKind::Read).allowed());
        s.set_perm(PmoId::new(1), Perm::ReadOnly);
        assert!(s.access(GB1, AccessKind::Read).allowed());
        assert!(!s.access(GB1, AccessKind::Write).allowed());
        assert!(!s.access(2 * GB1, AccessKind::Read).allowed());
    }

    #[test]
    fn domain_access_has_zero_extra_latency() {
        let mut s = scheme_with(1);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.access(GB1, AccessKind::Write); // warm the TLB
        let warm = s.access(GB1, AccessKind::Write);
        assert_eq!(warm.cycles, 1, "permission rides the PTE: L1 TLB hit only");
    }

    #[test]
    fn no_key_pressure_at_any_domain_count() {
        let mut s = scheme_with(64);
        for i in 1..=64u32 {
            s.set_perm(PmoId::new(i), Perm::ReadWrite);
            assert!(s.access(u64::from(i) * GB1, AccessKind::Write).allowed());
        }
        assert_eq!(s.stats().key_evictions, 0, "no keys exist to evict");
        assert_eq!(s.stats().domainless_fallbacks, 0);
    }

    #[test]
    fn setperm_pays_pte_rewrite_and_revoke_pays_shootdown() {
        let mut s = scheme_with(1);
        let cfg = SimConfig::isca2020();
        let grant = s.set_perm(PmoId::new(1), Perm::ReadWrite);
        // 8MB pool = 2048 PTEs.
        assert_eq!(grant, cfg.syscall_cycles + cfg.pte_write_cycles * 2048);
        s.access(GB1, AccessKind::Write);
        let revoke = s.set_perm(PmoId::new(1), Perm::None);
        assert!(revoke > grant, "write revocation adds the shootdown");
        assert_eq!(s.stats().shootdowns, 1);
        let events = s.drain_events();
        assert!(matches!(events[0], TraceEvent::Shootdown { pmo } if pmo == PmoId::new(1)));
    }

    #[test]
    fn context_switch_loads_the_new_root() {
        let mut s = scheme_with(2);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        assert!(s.access(GB1, AccessKind::Write).allowed());
        let cycles = s.context_switch(ThreadId::new(1));
        assert!(cycles >= SimConfig::isca2020().cr3_write_cycles);
        assert!(!s.access(GB1, AccessKind::Write).allowed(), "thread 1 has no PTE grant");
        s.context_switch(ThreadId::MAIN);
        assert!(s.access(GB1, AccessKind::Write).allowed(), "main's tables intact");
    }

    #[test]
    fn setperm_on_detached_domain_is_a_noop() {
        let mut s = scheme_with(1);
        s.detach(PmoId::new(1));
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.attach(PmoId::new(1), GB1, 8 << 20, true);
        assert!(
            !s.access(GB1, AccessKind::Read).allowed(),
            "re-attached domain must start inaccessible"
        );
    }

    #[test]
    fn thousand_domains_supported() {
        let mut s = scheme_with(1000);
        for i in (1..=1000u32).step_by(97) {
            s.set_perm(PmoId::new(i), Perm::ReadWrite);
            assert!(s.access(u64::from(i) * GB1, AccessKind::Write).allowed());
            s.set_perm(PmoId::new(i), Perm::None);
            assert!(!s.access(u64::from(i) * GB1, AccessKind::Write).allowed());
        }
        assert_eq!(s.stats().key_evictions, 0);
    }

    #[test]
    fn planted_stale_cr3_bug_keeps_the_old_address_space() {
        let mut s = Dpti::with_bug(&SimConfig::isca2020(), Some(ProtocolBug::StaleCr3OnSwitch));
        s.attach(PmoId::new(1), GB1, 8 << 20, true);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.context_switch(ThreadId::new(1));
        assert!(
            s.access(GB1, AccessKind::Write).allowed(),
            "bug: thread 1 runs on main's page tables"
        );
        let mut clean = Dpti::new(&SimConfig::isca2020());
        clean.attach(PmoId::new(1), GB1, 8 << 20, true);
        clean.set_perm(PmoId::new(1), Perm::ReadWrite);
        clean.context_switch(ThreadId::new(1));
        assert!(!clean.access(GB1, AccessKind::Write).allowed());
    }
}
