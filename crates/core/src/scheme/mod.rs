//! The pluggable protection schemes the paper evaluates.
//!
//! | Scheme | Paper role |
//! |---|---|
//! | [`Unprotected`] | the no-protection *baseline* of §V |
//! | [`Lowerbound`] | ideal MPK virtualization: WRPKRU cost only |
//! | [`DefaultMpk`] | stock Intel MPK, 16 keys, no virtualization |
//! | [`LibMpk`] | software MPK virtualization (Park et al., ATC'19) |
//! | [`MpkVirt`] | **design 1**: hardware MPK virtualization (DTT+DTTLB) |
//! | [`DomainVirt`] | **design 2**: hardware domain virtualization (DRT+PT+PTLB) |
//!
//! Every scheme is *functional* (it actually tracks per-thread domain
//! permissions and detects violations) and *timed* (it charges the Table II
//! cycle costs and attributes them to [`CostBreakdown`] buckets).

mod domain_virt;
mod libmpk;
mod lowerbound;
mod mpk;
mod mpk_virt;
mod unprotected;

pub use domain_virt::DomainVirt;
pub use libmpk::LibMpk;
pub use lowerbound::Lowerbound;
pub use mpk::DefaultMpk;
pub use mpk_virt::MpkVirt;
pub use unprotected::Unprotected;

use std::fmt;

use pmo_simarch::{MemKind, SimConfig, TlbStats};
use pmo_trace::{AccessKind, Perm, PmoId, ThreadId, TraceEvent, Va};

use crate::breakdown::CostBreakdown;
use crate::fault::ProtectionFault;

/// The outcome of one checked memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Translation + protection cycles (cache/memory latency is charged by
    /// the replay engine on top of this).
    pub cycles: u64,
    /// The kind of memory backing the address (drives DRAM vs NVM latency).
    pub mem: MemKind,
    /// A protection violation, if the access was denied.
    pub fault: Option<ProtectionFault>,
}

impl AccessResult {
    /// Whether the access was permitted.
    #[must_use]
    pub fn allowed(&self) -> bool {
        self.fault.is_none()
    }
}

/// Event counters a scheme accumulates during replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// Permission-switch instructions executed.
    pub set_perms: u64,
    /// Domain → key reassignments (evictions) performed.
    pub key_evictions: u64,
    /// DTTLB misses (DTT walks).
    pub dttlb_misses: u64,
    /// PTLB misses (Permission Table lookups).
    pub ptlb_misses: u64,
    /// Ranged TLB shootdowns issued.
    pub shootdowns: u64,
    /// TLB entries invalidated by shootdowns.
    pub tlb_entries_invalidated: u64,
    /// Protection faults raised.
    pub faults: u64,
    /// Software fault-handler invocations (libmpk guard-key faults).
    pub sw_faults: u64,
    /// Context switches observed.
    pub context_switches: u64,
    /// Domains that could not get a key and fell back to domainless
    /// (default MPK beyond 16 domains — the weakening the paper motivates).
    pub domainless_fallbacks: u64,
}

/// A protection scheme: the MMU-integrated domain machinery of §IV.
///
/// The replay engine (`pmo-sim`) drives this trait once per trace event.
/// All methods return the cycles the operation adds to execution time.
pub trait ProtectionScheme {
    /// Human-readable scheme name.
    fn name(&self) -> &'static str;

    /// The scheme's kind tag.
    fn kind(&self) -> SchemeKind;

    /// Handles a PMO attach (system call): registers the region and the
    /// scheme's table entries. Returns cycles.
    fn attach(&mut self, pmo: PmoId, base: Va, size: u64, nvm: bool) -> u64;

    /// Handles a PMO detach. Returns cycles.
    fn detach(&mut self, pmo: PmoId) -> u64;

    /// Executes a permission switch (WRPKRU / `pkey_set` / SETPERM) for the
    /// *current thread*. Returns cycles.
    fn set_perm(&mut self, pmo: PmoId, perm: Perm) -> u64;

    /// Checks and times one memory access by the current thread.
    fn access(&mut self, va: Va, kind: AccessKind) -> AccessResult;

    /// Switches the core to another thread (flushing thread-private
    /// structures as the design requires). Returns cycles.
    fn context_switch(&mut self, to: ThreadId) -> u64;

    /// The thread currently running.
    fn current_thread(&self) -> ThreadId;

    /// Cost attribution so far (Table VII buckets).
    fn breakdown(&self) -> CostBreakdown;

    /// Event counters so far.
    fn stats(&self) -> SchemeStats;

    /// TLB statistics so far.
    fn tlb_stats(&self) -> TlbStats;

    /// Drains protocol-level trace events the scheme emitted internally
    /// since the last drain (today: [`TraceEvent::Shootdown`] on the
    /// key-eviction path of MPK virtualization, so the hb-race pass and
    /// the model checker see the same shootdown signal as `pool_close`).
    /// Schemes with no internal events return nothing (the default).
    fn drain_events(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// A protocol bug planted into a scheme at construction time, for
/// model-checker self-validation (the state-machine analogue of
/// `pmo-analyzer`'s trace-level `SeededBug` mutations): a checker that
/// cannot catch a planted coherence bug cannot be trusted to prove its
/// absence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolBug {
    /// MPK-virt: skip the ranged TLB shootdown when a key is reassigned
    /// to another domain (the victim's stale key keeps granting).
    SkipEvictionShootdown,
    /// MPK-virt: leave the PKRU register stale after a SETPERM on a
    /// domain that currently holds a key.
    SkipPkruUpdateOnSetPerm,
    /// Domain-virt: skip the PTLB invalidation on detach (a re-attached
    /// domain inherits the stale cached permission).
    SkipPtlbInvalidateOnDetach,
    /// Domain-virt: skip the PTLB flush on a context switch (the incoming
    /// thread inherits the outgoing thread's cached permissions).
    SkipPtlbFlushOnSwitch,
}

impl ProtocolBug {
    /// Every plantable bug class.
    pub const ALL: [ProtocolBug; 4] = [
        ProtocolBug::SkipEvictionShootdown,
        ProtocolBug::SkipPkruUpdateOnSetPerm,
        ProtocolBug::SkipPtlbInvalidateOnDetach,
        ProtocolBug::SkipPtlbFlushOnSwitch,
    ];

    /// Short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProtocolBug::SkipEvictionShootdown => "skip-eviction-shootdown",
            ProtocolBug::SkipPkruUpdateOnSetPerm => "skip-pkru-update-on-setperm",
            ProtocolBug::SkipPtlbInvalidateOnDetach => "skip-ptlb-invalidate-on-detach",
            ProtocolBug::SkipPtlbFlushOnSwitch => "skip-ptlb-flush-on-switch",
        }
    }
}

impl fmt::Display for ProtocolBug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifies a scheme; use [`SchemeKind::build`] to construct one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// No protection (baseline).
    Unprotected,
    /// Ideal MPK virtualization (WRPKRU cost only).
    Lowerbound,
    /// Stock Intel MPK.
    DefaultMpk,
    /// Software MPK virtualization (libmpk).
    LibMpk,
    /// Hardware MPK virtualization (design 1).
    MpkVirt,
    /// Hardware domain virtualization (design 2).
    DomainVirt,
}

impl SchemeKind {
    /// All schemes, in the order the paper discusses them.
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::Unprotected,
        SchemeKind::Lowerbound,
        SchemeKind::DefaultMpk,
        SchemeKind::LibMpk,
        SchemeKind::MpkVirt,
        SchemeKind::DomainVirt,
    ];

    /// Constructs the scheme.
    #[must_use]
    pub fn build(self, config: &SimConfig) -> Box<dyn ProtectionScheme> {
        match self {
            SchemeKind::Unprotected => Box::new(Unprotected::new(config)),
            SchemeKind::Lowerbound => Box::new(Lowerbound::new(config)),
            SchemeKind::DefaultMpk => Box::new(DefaultMpk::new(config)),
            SchemeKind::LibMpk => Box::new(LibMpk::new(config)),
            SchemeKind::MpkVirt => Box::new(MpkVirt::new(config)),
            SchemeKind::DomainVirt => Box::new(DomainVirt::new(config)),
        }
    }

    /// Short label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Unprotected => "baseline",
            SchemeKind::Lowerbound => "lowerbound",
            SchemeKind::DefaultMpk => "mpk",
            SchemeKind::LibMpk => "libmpk",
            SchemeKind::MpkVirt => "mpk-virt",
            SchemeKind::DomainVirt => "domain-virt",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_are_send() {
        // Schemes move across threads in parallel experiment sweeps.
        fn assert_send<T: Send>() {}
        assert_send::<Unprotected>();
        assert_send::<Lowerbound>();
        assert_send::<DefaultMpk>();
        assert_send::<LibMpk>();
        assert_send::<MpkVirt>();
        assert_send::<DomainVirt>();
    }

    #[test]
    fn build_all_schemes() {
        let config = SimConfig::isca2020();
        for kind in SchemeKind::ALL {
            let scheme = kind.build(&config);
            assert_eq!(scheme.kind(), kind);
            assert!(!scheme.name().is_empty());
            assert!(!format!("{kind}").is_empty());
            assert_eq!(scheme.current_thread(), ThreadId::MAIN);
            assert_eq!(scheme.stats(), SchemeStats::default());
        }
    }
}
