//! The pluggable protection schemes the paper evaluates.
//!
//! | Scheme | Paper role |
//! |---|---|
//! | [`Unprotected`] | the no-protection *baseline* of §V |
//! | [`Lowerbound`] | ideal MPK virtualization: WRPKRU cost only |
//! | [`DefaultMpk`] | stock Intel MPK, 16 keys, no virtualization |
//! | [`LibMpk`] | software MPK virtualization (Park et al., ATC'19) |
//! | [`MpkVirt`] | **design 1**: hardware MPK virtualization (DTT+DTTLB) |
//! | [`DomainVirt`] | **design 2**: hardware domain virtualization (DRT+PT+PTLB) |
//! | [`Erim`] | ERIM call gates over raw MPK (Vahldiek-Oberwagner et al.) |
//! | [`Dpti`] | domain page-table isolation, zero keys (Canella et al.) |
//!
//! Every scheme is *functional* (it actually tracks per-thread domain
//! permissions and detects violations) and *timed* (it charges the Table II
//! cycle costs and attributes them to [`CostBreakdown`] buckets).

mod domain_virt;
mod dpti;
mod erim;
mod libmpk;
mod lowerbound;
mod mpk;
mod mpk_virt;
mod unprotected;

pub use domain_virt::DomainVirt;
pub use dpti::Dpti;
pub use erim::Erim;
pub use libmpk::LibMpk;
pub use lowerbound::Lowerbound;
pub use mpk::DefaultMpk;
pub use mpk_virt::MpkVirt;
pub use unprotected::Unprotected;

use std::fmt;

use pmo_simarch::{MemKind, SimConfig, TlbStats};
use pmo_trace::{AccessKind, Perm, PmoId, ThreadId, TraceEvent, Va};

use crate::breakdown::CostBreakdown;
use crate::fault::ProtectionFault;

/// The outcome of one checked memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Translation + protection cycles (cache/memory latency is charged by
    /// the replay engine on top of this).
    pub cycles: u64,
    /// The kind of memory backing the address (drives DRAM vs NVM latency).
    pub mem: MemKind,
    /// A protection violation, if the access was denied.
    pub fault: Option<ProtectionFault>,
}

impl AccessResult {
    /// Whether the access was permitted.
    #[must_use]
    pub fn allowed(&self) -> bool {
        self.fault.is_none()
    }
}

/// Event counters a scheme accumulates during replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// Permission-switch instructions executed.
    pub set_perms: u64,
    /// Domain → key reassignments (evictions) performed.
    pub key_evictions: u64,
    /// DTTLB misses (DTT walks).
    pub dttlb_misses: u64,
    /// PTLB misses (Permission Table lookups).
    pub ptlb_misses: u64,
    /// Ranged TLB shootdowns issued.
    pub shootdowns: u64,
    /// TLB entries invalidated by shootdowns.
    pub tlb_entries_invalidated: u64,
    /// Protection faults raised.
    pub faults: u64,
    /// Software fault-handler invocations (libmpk guard-key faults).
    pub sw_faults: u64,
    /// Context switches observed.
    pub context_switches: u64,
    /// Domains that could not get a key and fell back to domainless
    /// (default MPK beyond 16 domains — the weakening the paper motivates).
    pub domainless_fallbacks: u64,
}

/// A memoized per-page access verdict for the replay fast path.
///
/// Captures everything a *warm* (L1-TLB-hit, PTLB-hit) access to one page
/// computes — modeled cycles, memory backing, and the effective permission
/// — so consecutive accesses to the same page can skip the TLB/DTT/PT
/// machinery entirely. A hint is only valid while the scheme state is
/// untouched: any attach/detach/set-perm/context-switch/shootdown, or any
/// access to a *different* page, invalidates it. The hint memoizes the
/// simulator's work, never the simulated costs: replaying through a hint
/// must charge exactly the cycles and produce exactly the fault the slow
/// path would.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FastHint {
    /// Scheme-side cycles per access (TLB hit latency, plus the PTLB
    /// access latency under domain virtualization).
    pub cycles: u64,
    /// Memory backing of the page (drives DRAM vs NVM latency).
    pub mem: MemKind,
    /// The effective permission (page ∧ domain) the verdict applies.
    pub effective: Perm,
    /// Cycles per access attributed to `CostBreakdown::access_latency`
    /// (non-zero only under domain virtualization's per-access PTLB read).
    pub access_latency: u64,
    /// Thread the hint was computed for (reported in faults).
    pub thread: ThreadId,
    /// Permission reported as "held" if the access is denied.
    pub held: Perm,
    /// `Some(pmo)` if a denial is a domain violation against `pmo`;
    /// `None` if it is a plain page-permission fault.
    pub fault_pmo: Option<PmoId>,
}

impl FastHint {
    /// The fault a denied access through this hint raises — identical to
    /// what the slow path would construct.
    #[must_use]
    pub fn fault(&self, va: Va, attempted: AccessKind) -> ProtectionFault {
        match self.fault_pmo {
            Some(pmo) => ProtectionFault::DomainDenied {
                thread: self.thread,
                pmo,
                attempted,
                held: self.held,
                va,
            },
            None => {
                ProtectionFault::PageDenied { thread: self.thread, attempted, held: self.held, va }
            }
        }
    }
}

/// A protection scheme: the MMU-integrated domain machinery of §IV.
///
/// The replay engine (`pmo-sim`) drives this trait once per trace event.
/// All methods return the cycles the operation adds to execution time.
pub trait ProtectionScheme {
    /// Human-readable scheme name.
    fn name(&self) -> &'static str;

    /// The scheme's kind tag.
    fn kind(&self) -> SchemeKind;

    /// Handles a PMO attach (system call): registers the region and the
    /// scheme's table entries. Returns cycles.
    fn attach(&mut self, pmo: PmoId, base: Va, size: u64, nvm: bool) -> u64;

    /// Handles a PMO detach. Returns cycles.
    fn detach(&mut self, pmo: PmoId) -> u64;

    /// Executes a permission switch (WRPKRU / `pkey_set` / SETPERM) for the
    /// *current thread*. Returns cycles.
    fn set_perm(&mut self, pmo: PmoId, perm: Perm) -> u64;

    /// Checks and times one memory access by the current thread.
    fn access(&mut self, va: Va, kind: AccessKind) -> AccessResult;

    /// Switches the core to another thread (flushing thread-private
    /// structures as the design requires). Returns cycles.
    fn context_switch(&mut self, to: ThreadId) -> u64;

    /// The thread currently running.
    fn current_thread(&self) -> ThreadId;

    /// Cost attribution so far (Table VII buckets).
    fn breakdown(&self) -> CostBreakdown;

    /// Event counters so far.
    fn stats(&self) -> SchemeStats;

    /// TLB statistics so far.
    fn tlb_stats(&self) -> TlbStats;

    /// Drains protocol-level trace events the scheme emitted internally
    /// since the last drain (today: [`TraceEvent::Shootdown`] on the
    /// key-eviction path of MPK virtualization, so the hb-race pass and
    /// the model checker see the same shootdown signal as `pool_close`).
    /// Schemes with no internal events return nothing (the default).
    fn drain_events(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Computes a memoized verdict for subsequent accesses to `va`'s page,
    /// or `None` when the page is not warm in the L1 TLB (or warm accesses
    /// to it mutate scheme state, as libmpk guard-key pages do). Must not
    /// mutate any state: accounting for accesses served through the hint
    /// is settled later via [`ProtectionScheme::note_fast_hits`].
    fn fast_hint(&self, _va: Va) -> Option<FastHint> {
        None
    }

    /// Settles the accounting for `hits` accesses (of which `denied` were
    /// denied) served through a [`FastHint`] since it was issued: credits
    /// the skipped L1 TLB hits, fault counts, and per-access latency
    /// attribution so stats match a slow-path replay exactly.
    fn note_fast_hits(&mut self, _hint: &FastHint, _hits: u64, _denied: u64) {}

    /// Revalidates a *stored* [`FastHint`] for `va`'s page before the
    /// replay engine re-arms it from its permission-summary table:
    /// returns whether the hint is still exact, and on success touches
    /// exactly the recency state a warm (L1-TLB-hit) access to `va` would
    /// touch — the L1 TLB way, plus the PTLB way under domain
    /// virtualization. No statistics, no promotion, no other effects.
    ///
    /// Returning `false` means the page is no longer warm (the entry was
    /// evicted, shot down, or remapped) and the caller must take the full
    /// [`ProtectionScheme::access`] walk. The default is conservative:
    /// schemes without a revalidation rule never serve summary hits.
    fn fast_revalidate(&mut self, _va: Va) -> bool {
        false
    }
}

/// A protocol bug planted into a scheme at construction time, for
/// model-checker self-validation (the state-machine analogue of
/// `pmo-analyzer`'s trace-level `SeededBug` mutations): a checker that
/// cannot catch a planted coherence bug cannot be trusted to prove its
/// absence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolBug {
    /// MPK-virt: skip the ranged TLB shootdown when a key is reassigned
    /// to another domain (the victim's stale key keeps granting).
    SkipEvictionShootdown,
    /// MPK-virt: leave the PKRU register stale after a SETPERM on a
    /// domain that currently holds a key.
    SkipPkruUpdateOnSetPerm,
    /// Domain-virt: skip the PTLB invalidation on detach (a re-attached
    /// domain inherits the stale cached permission).
    SkipPtlbInvalidateOnDetach,
    /// Domain-virt: skip the PTLB flush on a context switch (the incoming
    /// thread inherits the outgoing thread's cached permissions).
    SkipPtlbFlushOnSwitch,
    /// ERIM: the call-gate exit trampoline skips the WRPKRU restore after
    /// a privilege-dropping SETPERM (the thread keeps the monitor's more
    /// permissive PKRU value past the gate).
    SkipGateExitKeyRestore,
    /// DPTI: the kernel skips the CR3 reload on a context switch (the
    /// incoming thread runs on the outgoing thread's page tables).
    StaleCr3OnSwitch,
}

impl ProtocolBug {
    /// Every plantable bug class.
    pub const ALL: [ProtocolBug; 6] = [
        ProtocolBug::SkipEvictionShootdown,
        ProtocolBug::SkipPkruUpdateOnSetPerm,
        ProtocolBug::SkipPtlbInvalidateOnDetach,
        ProtocolBug::SkipPtlbFlushOnSwitch,
        ProtocolBug::SkipGateExitKeyRestore,
        ProtocolBug::StaleCr3OnSwitch,
    ];

    /// Short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProtocolBug::SkipEvictionShootdown => "skip-eviction-shootdown",
            ProtocolBug::SkipPkruUpdateOnSetPerm => "skip-pkru-update-on-setperm",
            ProtocolBug::SkipPtlbInvalidateOnDetach => "skip-ptlb-invalidate-on-detach",
            ProtocolBug::SkipPtlbFlushOnSwitch => "skip-ptlb-flush-on-switch",
            ProtocolBug::SkipGateExitKeyRestore => "skip-gate-exit-key-restore",
            ProtocolBug::StaleCr3OnSwitch => "stale-cr3-on-switch",
        }
    }
}

impl fmt::Display for ProtocolBug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifies a scheme; use [`SchemeKind::build`] to construct one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// No protection (baseline).
    Unprotected,
    /// Ideal MPK virtualization (WRPKRU cost only).
    Lowerbound,
    /// Stock Intel MPK.
    DefaultMpk,
    /// Software MPK virtualization (libmpk).
    LibMpk,
    /// Hardware MPK virtualization (design 1).
    MpkVirt,
    /// Hardware domain virtualization (design 2).
    DomainVirt,
    /// ERIM call gates over raw MPK.
    Erim,
    /// Domain page-table isolation (zero keys).
    Dpti,
}

impl SchemeKind {
    /// All schemes: the paper's six in the order it discusses them, then
    /// the related-work designs the comparison matrix grew to cover.
    pub const ALL: [SchemeKind; 8] = [
        SchemeKind::Unprotected,
        SchemeKind::Lowerbound,
        SchemeKind::DefaultMpk,
        SchemeKind::LibMpk,
        SchemeKind::MpkVirt,
        SchemeKind::DomainVirt,
        SchemeKind::Erim,
        SchemeKind::Dpti,
    ];

    /// Constructs the scheme.
    #[must_use]
    pub fn build(self, config: &SimConfig) -> Box<dyn ProtectionScheme> {
        match self {
            SchemeKind::Unprotected => Box::new(Unprotected::new(config)),
            SchemeKind::Lowerbound => Box::new(Lowerbound::new(config)),
            SchemeKind::DefaultMpk => Box::new(DefaultMpk::new(config)),
            SchemeKind::LibMpk => Box::new(LibMpk::new(config)),
            SchemeKind::MpkVirt => Box::new(MpkVirt::new(config)),
            SchemeKind::DomainVirt => Box::new(DomainVirt::new(config)),
            SchemeKind::Erim => Box::new(Erim::new(config)),
            SchemeKind::Dpti => Box::new(Dpti::new(config)),
        }
    }

    /// Constructs the scheme as a statically dispatched [`AnyScheme`]
    /// (what the replay engine uses on its hot path).
    #[must_use]
    pub fn build_any(self, config: &SimConfig) -> AnyScheme {
        match self {
            SchemeKind::Unprotected => AnyScheme::Unprotected(Unprotected::new(config)),
            SchemeKind::Lowerbound => AnyScheme::Lowerbound(Lowerbound::new(config)),
            SchemeKind::DefaultMpk => AnyScheme::DefaultMpk(DefaultMpk::new(config)),
            SchemeKind::LibMpk => AnyScheme::LibMpk(LibMpk::new(config)),
            SchemeKind::MpkVirt => AnyScheme::MpkVirt(MpkVirt::new(config)),
            SchemeKind::DomainVirt => AnyScheme::DomainVirt(DomainVirt::new(config)),
            SchemeKind::Erim => AnyScheme::Erim(Erim::new(config)),
            SchemeKind::Dpti => AnyScheme::Dpti(Dpti::new(config)),
        }
    }

    /// Short label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Unprotected => "baseline",
            SchemeKind::Lowerbound => "lowerbound",
            SchemeKind::DefaultMpk => "mpk",
            SchemeKind::LibMpk => "libmpk",
            SchemeKind::MpkVirt => "mpk-virt",
            SchemeKind::DomainVirt => "domain-virt",
            SchemeKind::Erim => "erim",
            SchemeKind::Dpti => "dpti",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Closed enum over every scheme, for static dispatch on the replay hot
/// path (a `match` the branch predictor resolves per-replay, instead of a
/// `Box<dyn ProtectionScheme>` vtable load per access). Build one with
/// [`SchemeKind::build_any`].
#[allow(clippy::large_enum_variant)] // one scheme per replay; size is irrelevant
#[derive(Debug)]
pub enum AnyScheme {
    /// No protection (baseline).
    Unprotected(Unprotected),
    /// Ideal MPK virtualization.
    Lowerbound(Lowerbound),
    /// Stock Intel MPK.
    DefaultMpk(DefaultMpk),
    /// Software MPK virtualization.
    LibMpk(LibMpk),
    /// Hardware MPK virtualization (design 1).
    MpkVirt(MpkVirt),
    /// Hardware domain virtualization (design 2).
    DomainVirt(DomainVirt),
    /// ERIM call gates over raw MPK.
    Erim(Erim),
    /// Domain page-table isolation.
    Dpti(Dpti),
}

macro_rules! dispatch {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            AnyScheme::Unprotected($s) => $body,
            AnyScheme::Lowerbound($s) => $body,
            AnyScheme::DefaultMpk($s) => $body,
            AnyScheme::LibMpk($s) => $body,
            AnyScheme::MpkVirt($s) => $body,
            AnyScheme::DomainVirt($s) => $body,
            AnyScheme::Erim($s) => $body,
            AnyScheme::Dpti($s) => $body,
        }
    };
}

impl ProtectionScheme for AnyScheme {
    fn name(&self) -> &'static str {
        dispatch!(self, s => s.name())
    }

    fn kind(&self) -> SchemeKind {
        dispatch!(self, s => s.kind())
    }

    fn attach(&mut self, pmo: PmoId, base: Va, size: u64, nvm: bool) -> u64 {
        dispatch!(self, s => s.attach(pmo, base, size, nvm))
    }

    fn detach(&mut self, pmo: PmoId) -> u64 {
        dispatch!(self, s => s.detach(pmo))
    }

    fn set_perm(&mut self, pmo: PmoId, perm: Perm) -> u64 {
        dispatch!(self, s => s.set_perm(pmo, perm))
    }

    fn access(&mut self, va: Va, kind: AccessKind) -> AccessResult {
        dispatch!(self, s => s.access(va, kind))
    }

    fn context_switch(&mut self, to: ThreadId) -> u64 {
        dispatch!(self, s => s.context_switch(to))
    }

    fn current_thread(&self) -> ThreadId {
        dispatch!(self, s => s.current_thread())
    }

    fn breakdown(&self) -> CostBreakdown {
        dispatch!(self, s => s.breakdown())
    }

    fn stats(&self) -> SchemeStats {
        dispatch!(self, s => s.stats())
    }

    fn tlb_stats(&self) -> TlbStats {
        dispatch!(self, s => s.tlb_stats())
    }

    fn drain_events(&mut self) -> Vec<TraceEvent> {
        dispatch!(self, s => s.drain_events())
    }

    fn fast_hint(&self, va: Va) -> Option<FastHint> {
        dispatch!(self, s => s.fast_hint(va))
    }

    fn note_fast_hits(&mut self, hint: &FastHint, hits: u64, denied: u64) {
        dispatch!(self, s => s.note_fast_hits(hint, hits, denied));
    }

    fn fast_revalidate(&mut self, va: Va) -> bool {
        dispatch!(self, s => s.fast_revalidate(va))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_are_send() {
        // Schemes move across threads in parallel experiment sweeps.
        fn assert_send<T: Send>() {}
        assert_send::<Unprotected>();
        assert_send::<Lowerbound>();
        assert_send::<DefaultMpk>();
        assert_send::<LibMpk>();
        assert_send::<MpkVirt>();
        assert_send::<DomainVirt>();
        assert_send::<Erim>();
        assert_send::<Dpti>();
    }

    #[test]
    fn build_all_schemes() {
        let config = SimConfig::isca2020();
        for kind in SchemeKind::ALL {
            let scheme = kind.build(&config);
            assert_eq!(scheme.kind(), kind);
            assert!(!scheme.name().is_empty());
            assert!(!format!("{kind}").is_empty());
            assert_eq!(scheme.current_thread(), ThreadId::MAIN);
            assert_eq!(scheme.stats(), SchemeStats::default());
        }
    }
}
