//! Stock Intel MPK (§II.B): 16 protection keys, no virtualization.
//!
//! Works exactly like the paper's description while at most 15 domains
//! (key 0 is NULL) are attached. Beyond that, `pkey_alloc` fails and the
//! domain falls back to *domainless* — the security weakening that
//! motivates the paper (§IV.B).

use std::collections::BTreeMap;

use pmo_simarch::{vpn, MemKind, SimConfig, TlbStats};
use pmo_trace::{AccessKind, Perm, PmoId, ThreadId, Va};

use crate::breakdown::CostBreakdown;
use crate::fault::ProtectionFault;
use crate::keys::KeyAllocator;
use crate::mmu::{granule_covering, MmuBase, PkPayload, Region};
use crate::pkru::Pkru;
use crate::scheme::{AccessResult, FastHint, ProtectionScheme, SchemeKind, SchemeStats};

/// Stock MPK.
#[derive(Debug)]
pub struct DefaultMpk {
    mmu: MmuBase<PkPayload>,
    keys: KeyAllocator,
    /// Per-thread PKRU registers (default: all keys denied).
    pkru: BTreeMap<ThreadId, Pkru>,
    cfg: SimConfig,
    current: ThreadId,
    stats: SchemeStats,
    breakdown: CostBreakdown,
}

impl DefaultMpk {
    /// Creates the scheme.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        DefaultMpk {
            mmu: MmuBase::new(config),
            keys: KeyAllocator::new(config.pkeys),
            pkru: BTreeMap::new(),
            cfg: config.clone(),
            current: ThreadId::MAIN,
            stats: SchemeStats::default(),
            breakdown: CostBreakdown::default(),
        }
    }

    fn pkru_of(&self, thread: ThreadId) -> Pkru {
        self.pkru.get(&thread).copied().unwrap_or(Pkru::ALL_DENIED)
    }

    /// The PKRU register of the current thread (tests / RDPKRU).
    #[must_use]
    pub fn rdpkru(&self) -> Pkru {
        self.pkru_of(self.current)
    }
}

impl ProtectionScheme for DefaultMpk {
    fn name(&self) -> &'static str {
        "default Intel MPK (16 keys)"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::DefaultMpk
    }

    fn attach(&mut self, pmo: PmoId, base: Va, size: u64, nvm: bool) -> u64 {
        self.mmu.attach_region(Region {
            pmo,
            base,
            granule: granule_covering(base, size),
            pool_size: size,
            nvm,
        });
        // pkey_alloc + pkey_mprotect over the fresh (still unmapped) VMA.
        let mut cycles = self.cfg.attach_kernel_cycles + self.cfg.syscall_cycles;
        match self.keys.alloc(pmo) {
            Some(key) => {
                cycles += self.cfg.syscall_cycles; // pkey_mprotect
                                                   // A fresh key starts fully denied in every thread's PKRU.
                for reg in self.pkru.values_mut() {
                    *reg = reg.with_perm(key, Perm::None);
                }
            }
            None => {
                // pkey_alloc returned ENOSPC: the programmer forgoes the
                // domain (pages stay NULL-keyed).
                self.stats.domainless_fallbacks += 1;
            }
        }
        self.breakdown.software += cycles;
        cycles
    }

    fn detach(&mut self, pmo: PmoId) -> u64 {
        if let Some((region, removed)) = self.mmu.detach_region(pmo) {
            self.stats.tlb_entries_invalidated += removed;
            let _ = region;
        }
        self.keys.free(pmo);
        let cycles = self.cfg.attach_kernel_cycles + self.cfg.syscall_cycles;
        self.breakdown.software += cycles;
        cycles
    }

    fn set_perm(&mut self, pmo: PmoId, perm: Perm) -> u64 {
        self.stats.set_perms += 1;
        match self.keys.key_of(pmo) {
            Some(key) => {
                let reg = self.pkru.entry(self.current).or_insert(Pkru::ALL_DENIED);
                *reg = reg.with_perm(key, perm);
                self.keys.touch(key);
                self.breakdown.permission_change += self.cfg.wrpkru_cycles;
                self.cfg.wrpkru_cycles
            }
            // Domainless fallback: the program has no key to program.
            None => 0,
        }
    }

    fn access(&mut self, va: Va, kind: AccessKind) -> AccessResult {
        let (payload, _, cycles) = self.mmu.tlb.lookup(vpn(va));
        let payload = match payload {
            Some(p) => p,
            None => {
                let keys = &self.keys;
                match self.mmu.walk_or_map(va, |r| keys.key_of(r.pmo).unwrap_or(0)) {
                    Ok((pte, _)) => {
                        let p = PkPayload { pkey: pte.pkey, page_perm: pte.perm, mem: pte.mem };
                        self.mmu.tlb.fill(vpn(va), p);
                        p
                    }
                    Err(fault) => {
                        self.stats.faults += 1;
                        return AccessResult { cycles, mem: MemKind::Dram, fault: Some(fault) };
                    }
                }
            }
        };
        let domain_perm = if payload.pkey == 0 {
            Perm::ReadWrite // NULL key: domainless access, page perm rules
        } else {
            self.pkru_of(self.current).perm(payload.pkey)
        };
        let effective = domain_perm.meet(payload.page_perm);
        let fault = if effective.allows(kind) {
            None
        } else {
            self.stats.faults += 1;
            Some(ProtectionFault::DomainDenied {
                thread: self.current,
                pmo: self.keys.owner(payload.pkey).unwrap_or(PmoId::NULL),
                attempted: kind,
                held: domain_perm,
                va,
            })
        };
        AccessResult { cycles, mem: payload.mem, fault }
    }

    fn context_switch(&mut self, to: ThreadId) -> u64 {
        // PKRU is saved/restored with the thread state (XSAVE); the paper
        // treats this as part of normal context-switch cost.
        self.current = to;
        self.stats.context_switches += 1;
        0
    }

    fn current_thread(&self) -> ThreadId {
        self.current
    }

    fn breakdown(&self) -> CostBreakdown {
        self.breakdown
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn tlb_stats(&self) -> TlbStats {
        *self.mmu.tlb.stats()
    }

    fn fast_hint(&self, va: Va) -> Option<FastHint> {
        let payload = self.mmu.tlb.probe_l1(vpn(va))?;
        let domain_perm = if payload.pkey == 0 {
            Perm::ReadWrite
        } else {
            self.pkru_of(self.current).perm(payload.pkey)
        };
        Some(FastHint {
            cycles: self.mmu.tlb.l1_latency(),
            mem: payload.mem,
            effective: domain_perm.meet(payload.page_perm),
            access_latency: 0,
            thread: self.current,
            held: domain_perm,
            fault_pmo: Some(self.keys.owner(payload.pkey).unwrap_or(PmoId::NULL)),
        })
    }

    fn note_fast_hits(&mut self, _hint: &FastHint, hits: u64, denied: u64) {
        self.mmu.tlb.note_l1_hits(hits);
        self.stats.faults += denied;
    }

    fn fast_revalidate(&mut self, va: Va) -> bool {
        self.mmu.tlb.touch_l1(vpn(va)).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB1: u64 = 1 << 30;

    fn attach_n(s: &mut DefaultMpk, n: u32) {
        for i in 1..=n {
            s.attach(PmoId::new(i), u64::from(i) * GB1, 8 << 20, true);
        }
    }

    #[test]
    fn enforces_with_a_key() {
        let mut s = DefaultMpk::new(&SimConfig::isca2020());
        attach_n(&mut s, 1);
        assert!(!s.access(GB1, AccessKind::Read).allowed());
        assert_eq!(s.set_perm(PmoId::new(1), Perm::ReadOnly), 27);
        assert!(s.access(GB1, AccessKind::Read).allowed());
        assert!(!s.access(GB1, AccessKind::Write).allowed());
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        assert!(s.access(GB1, AccessKind::Write).allowed());
    }

    #[test]
    fn per_thread_pkru() {
        let mut s = DefaultMpk::new(&SimConfig::isca2020());
        attach_n(&mut s, 1);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.context_switch(ThreadId::new(1));
        assert!(!s.access(GB1, AccessKind::Read).allowed(), "thread 1 has no permission");
        s.context_switch(ThreadId::MAIN);
        assert!(s.access(GB1, AccessKind::Read).allowed());
    }

    #[test]
    fn sixteenth_domain_is_unprotected() {
        // The motivating weakness: beyond 15 domains MPK silently degrades.
        let mut s = DefaultMpk::new(&SimConfig::isca2020());
        attach_n(&mut s, 16);
        assert_eq!(s.stats().domainless_fallbacks, 1);
        // Domain 16 never got a key: accesses are allowed with no grant.
        let va16 = 16 * GB1;
        assert!(s.access(va16, AccessKind::Write).allowed(), "weakened security");
        // Domain 1 is still protected.
        assert!(!s.access(GB1, AccessKind::Write).allowed());
        // set_perm on the fallback domain is a no-op costing nothing.
        assert_eq!(s.set_perm(PmoId::new(16), Perm::None), 0);
        assert!(s.access(va16, AccessKind::Write).allowed());
    }

    #[test]
    fn key_reuse_after_detach_resets_pkru() {
        let mut s = DefaultMpk::new(&SimConfig::isca2020());
        attach_n(&mut s, 1);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.detach(PmoId::new(1));
        // A new domain gets the recycled key; the stale RW grant must not
        // leak to it.
        s.attach(PmoId::new(2), 2 * GB1, 8 << 20, true);
        assert!(!s.access(2 * GB1, AccessKind::Read).allowed());
    }

    #[test]
    fn rdpkru_reflects_wrpkru() {
        let mut s = DefaultMpk::new(&SimConfig::isca2020());
        attach_n(&mut s, 1);
        assert_eq!(s.rdpkru(), Pkru::ALL_DENIED);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        assert_ne!(s.rdpkru(), Pkru::ALL_DENIED);
    }

    #[test]
    fn attach_charges_software_cycles() {
        let mut s = DefaultMpk::new(&SimConfig::isca2020());
        let cycles = s.attach(PmoId::new(1), GB1, 8 << 20, true);
        assert!(cycles > 0);
        assert_eq!(s.breakdown().software, cycles);
    }
}
