//! The no-protection baseline (§V: "non-protected execution").

use pmo_simarch::{vpn, MemKind, SimConfig, TlbStats};
use pmo_trace::{AccessKind, Perm, PmoId, ThreadId, Va};

use crate::breakdown::CostBreakdown;
use crate::mmu::{granule_covering, MmuBase, PlainPayload, Region};
use crate::scheme::{AccessResult, FastHint, ProtectionScheme, SchemeKind, SchemeStats};

/// Baseline scheme: virtual memory only, no domain machinery, permission
/// switches are free (the baseline binary contains none).
#[derive(Debug)]
pub struct Unprotected {
    mmu: MmuBase<PlainPayload>,
    attach_cycles: u64,
    current: ThreadId,
    stats: SchemeStats,
    breakdown: CostBreakdown,
}

impl Unprotected {
    /// Creates the baseline scheme.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        Unprotected {
            mmu: MmuBase::new(config),
            attach_cycles: config.attach_kernel_cycles + config.syscall_cycles,
            current: ThreadId::MAIN,
            stats: SchemeStats::default(),
            breakdown: CostBreakdown::default(),
        }
    }
}

impl ProtectionScheme for Unprotected {
    fn name(&self) -> &'static str {
        "unprotected baseline"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::Unprotected
    }

    fn attach(&mut self, pmo: PmoId, base: Va, size: u64, nvm: bool) -> u64 {
        self.mmu.attach_region(Region {
            pmo,
            base,
            granule: granule_covering(base, size),
            pool_size: size,
            nvm,
        });
        // Attaching (mmap-ing) the PMO costs the same kernel work under
        // every scheme; charging it uniformly keeps overheads comparable.
        self.breakdown.software += self.attach_cycles;
        self.attach_cycles
    }

    fn detach(&mut self, pmo: PmoId) -> u64 {
        self.mmu.detach_region(pmo);
        self.breakdown.software += self.attach_cycles;
        self.attach_cycles
    }

    fn set_perm(&mut self, _pmo: PmoId, _perm: Perm) -> u64 {
        // The baseline binary carries no permission-switch instructions.
        0
    }

    fn access(&mut self, va: Va, kind: AccessKind) -> AccessResult {
        let (payload, _, mut cycles) = self.mmu.tlb.lookup(vpn(va));
        let payload = match payload {
            Some(p) => p,
            None => match self.mmu.walk_or_map(va, |_| 0) {
                Ok((pte, _)) => {
                    let p = PlainPayload { page_perm: pte.perm, mem: pte.mem };
                    self.mmu.tlb.fill(vpn(va), p);
                    p
                }
                Err(fault) => {
                    self.stats.faults += 1;
                    return AccessResult { cycles, mem: MemKind::Dram, fault: Some(fault) };
                }
            },
        };
        let fault = if payload.page_perm.allows(kind) {
            None
        } else {
            self.stats.faults += 1;
            Some(crate::fault::ProtectionFault::PageDenied {
                thread: self.current,
                attempted: kind,
                held: payload.page_perm,
                va,
            })
        };
        if fault.is_some() {
            cycles += 0;
        }
        AccessResult { cycles, mem: payload.mem, fault }
    }

    fn context_switch(&mut self, to: ThreadId) -> u64 {
        self.current = to;
        self.stats.context_switches += 1;
        0
    }

    fn current_thread(&self) -> ThreadId {
        self.current
    }

    fn breakdown(&self) -> CostBreakdown {
        self.breakdown
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn tlb_stats(&self) -> TlbStats {
        *self.mmu.tlb.stats()
    }

    fn fast_hint(&self, va: Va) -> Option<FastHint> {
        let payload = self.mmu.tlb.probe_l1(vpn(va))?;
        Some(FastHint {
            cycles: self.mmu.tlb.l1_latency(),
            mem: payload.mem,
            effective: payload.page_perm,
            access_latency: 0,
            thread: self.current,
            held: payload.page_perm,
            fault_pmo: None,
        })
    }

    fn note_fast_hits(&mut self, _hint: &FastHint, hits: u64, denied: u64) {
        self.mmu.tlb.note_l1_hits(hits);
        self.stats.faults += denied;
    }

    fn fast_revalidate(&mut self, va: Va) -> bool {
        self.mmu.tlb.touch_l1(vpn(va)).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB1: u64 = 1 << 30;

    #[test]
    fn everything_is_allowed() {
        let mut s = Unprotected::new(&SimConfig::isca2020());
        s.attach(PmoId::new(1), GB1, 8 << 20, true);
        // No permission ever granted, yet access succeeds: this is the
        // vulnerability the paper protects against.
        let r = s.access(GB1, AccessKind::Write);
        assert!(r.allowed());
        assert_eq!(r.mem, MemKind::Nvm);
        assert_eq!(s.set_perm(PmoId::new(1), Perm::None), 0);
        let r = s.access(GB1, AccessKind::Write);
        assert!(r.allowed(), "set_perm has no effect without protection");
    }

    #[test]
    fn tlb_warms_up() {
        let mut s = Unprotected::new(&SimConfig::isca2020());
        s.attach(PmoId::new(1), GB1, 8 << 20, true);
        let cold = s.access(GB1, AccessKind::Read).cycles;
        let warm = s.access(GB1, AccessKind::Read).cycles;
        assert!(cold > warm);
        assert_eq!(s.tlb_stats().misses, 1);
        assert_eq!(s.tlb_stats().l1_hits, 1);
    }

    #[test]
    fn unbacked_access_faults() {
        let mut s = Unprotected::new(&SimConfig::isca2020());
        // An 8KB pool reserves a 2MB granule; addresses in the reserved
        // region beyond the pool's backed bytes are page faults.
        s.attach(PmoId::new(1), GB1, 8192, true);
        let r = s.access(GB1 + 0x10_0000, AccessKind::Read);
        assert!(!r.allowed());
        assert_eq!(s.stats().faults, 1);
    }

    #[test]
    fn detach_then_access_is_anonymous() {
        let mut s = Unprotected::new(&SimConfig::isca2020());
        s.attach(PmoId::new(1), GB1, 8 << 20, true);
        s.access(GB1, AccessKind::Read);
        s.detach(PmoId::new(1));
        // After detach the VA is anonymous memory again (demand-mapped DRAM).
        let r = s.access(GB1, AccessKind::Read);
        assert_eq!(r.mem, MemKind::Dram);
    }
}
