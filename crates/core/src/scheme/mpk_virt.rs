//! Design 1 — Hardware-based MPK virtualization (§IV.D).
//!
//! Keeps stock MPK (protection keys in TLB entries, PKRU check) and adds a
//! hardware-walked Domain Translation Table (DTT) plus a per-core DTTLB so
//! that an unbounded number of domains can time-share the 15 usable keys.
//! On an access to a domain with no key, hardware assigns a free key or
//! reassigns a PLRU victim's key — the latter forcing a ranged TLB
//! shootdown of the victim's VA range, which is this design's dominant
//! overhead (Table VII).

use pmo_simarch::{vpn, MemKind, SimConfig, TlbStats};
use pmo_trace::{AccessKind, Perm, PmoId, ThreadId, TraceEvent, Va};

use crate::breakdown::CostBreakdown;
use crate::dtt::DomainTranslationTable;
use crate::dttlb::{Dttlb, DttlbEntry};
use crate::fault::ProtectionFault;
use crate::keys::KeyAllocator;
use crate::mmu::{granule_covering, MmuBase, PkPayload, Region};
use crate::pkru::{Pkru, NUM_KEYS};
use crate::scheme::{
    AccessResult, FastHint, ProtectionScheme, ProtocolBug, SchemeKind, SchemeStats,
};

/// Hardware MPK virtualization.
#[derive(Debug)]
pub struct MpkVirt {
    mmu: MmuBase<PkPayload>,
    dtt: DomainTranslationTable,
    dttlb: Dttlb,
    keys: KeyAllocator,
    /// The materialized per-core PKRU register the access check reads.
    /// Kept coherent with the DTT by SETPERM, key assignment/eviction,
    /// detach, and the context-switch rebuild — the coherence obligation
    /// the model checker's `pkru-desync` invariant verifies.
    pkru: Pkru,
    /// Protocol events (eviction shootdowns) awaiting `drain_events`.
    pending: Vec<TraceEvent>,
    bug: Option<ProtocolBug>,
    cfg: SimConfig,
    current: ThreadId,
    stats: SchemeStats,
    breakdown: CostBreakdown,
}

impl MpkVirt {
    /// Creates the scheme.
    ///
    /// # Panics
    ///
    /// Panics if the config asks for more keys than the 32-bit PKRU
    /// architecturally encodes.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        Self::with_bug(config, None)
    }

    /// Creates the scheme with an optional planted [`ProtocolBug`]
    /// (model-checker self-validation only).
    ///
    /// # Panics
    ///
    /// Panics if the config asks for more keys than the 32-bit PKRU
    /// architecturally encodes.
    #[must_use]
    pub fn with_bug(config: &SimConfig, bug: Option<ProtocolBug>) -> Self {
        assert!(config.pkeys as usize <= NUM_KEYS, "PKRU encodes at most {NUM_KEYS} keys");
        MpkVirt {
            mmu: MmuBase::new(config),
            dtt: DomainTranslationTable::new(),
            dttlb: Dttlb::new(config.dttlb_entries),
            keys: KeyAllocator::new(config.pkeys),
            pkru: Pkru::ALL_DENIED,
            pending: Vec::new(),
            bug,
            cfg: config.clone(),
            current: ThreadId::MAIN,
            stats: SchemeStats::default(),
            breakdown: CostBreakdown::default(),
        }
    }

    /// Reconstructs the PKRU for the current thread from the authoritative
    /// key-assignment and DTT state (the context-switch WRPKRU restore).
    fn rebuild_pkru(&self) -> Pkru {
        let mut pkru = Pkru::ALL_DENIED;
        for (key, pmo) in self.keys.assignments() {
            let perm = self.dtt.entry(pmo).map_or(Perm::None, |e| e.perm(self.current));
            pkru = pkru.with_perm(key, perm);
        }
        pkru
    }

    /// The materialized PKRU register (model-checker inspection).
    #[must_use]
    pub fn pkru(&self) -> Pkru {
        self.pkru
    }

    /// The key allocator (model-checker inspection).
    #[must_use]
    pub fn key_allocator(&self) -> &KeyAllocator {
        &self.keys
    }

    /// The DTT (model-checker inspection).
    #[must_use]
    pub fn dtt(&self) -> &DomainTranslationTable {
        &self.dtt
    }

    /// The per-core DTTLB (model-checker inspection).
    #[must_use]
    pub fn dttlb(&self) -> &Dttlb {
        &self.dttlb
    }

    /// The MMU (TLB hierarchy + regions; model-checker inspection).
    #[must_use]
    pub fn mmu(&self) -> &MmuBase<PkPayload> {
        &self.mmu
    }

    /// Resolves the protection key for a PMO address on a TLB miss:
    /// the DTTLB/DTT path of Figure 4 (steps 6-11).
    fn resolve_key(&mut self, va: Va, cycles: &mut u64) -> u8 {
        // The DTTLB is consulted in parallel with the page walk, so a hit
        // adds no latency to the miss path.
        if self.dttlb.lookup(va).is_none() {
            // DTTLB miss: hardware DTT walk.
            *cycles += self.cfg.dttlb_miss_cycles;
            self.breakdown.translation_miss += self.cfg.dttlb_miss_cycles;
            self.stats.dttlb_misses += 1;
            let hit = self.dtt.walk(va).expect("access inside a registered region");
            let entry = DttlbEntry {
                base: hit.base,
                granule: hit.granule,
                pmo: hit.value.pmo,
                key: self.keys.key_of(hit.value.pmo),
                perm: hit.value.perm(self.current),
                dirty: false,
            };
            if let Some(victim) = self.dttlb.insert(entry) {
                if victim.dirty {
                    // Lazy writeback of the evicted entry into the DTT.
                    *cycles += self.cfg.dttlb_entry_op_cycles;
                    self.breakdown.entry_changes += self.cfg.dttlb_entry_op_cycles;
                }
            }
        }
        let (pmo, cached_key) = {
            let e = self.dttlb.lookup(va).expect("just inserted");
            (e.pmo, e.key)
        };
        if let Some(key) = cached_key {
            self.keys.touch(key);
            return key;
        }
        // The domain holds no key: check the free-keys structure.
        *cycles += self.cfg.free_keys_cycles;
        self.breakdown.entry_changes += self.cfg.free_keys_cycles;
        let key = match self.keys.alloc(pmo) {
            Some(key) => key,
            None => {
                // Reassign a PLRU victim's key (Figure 4, step 10).
                let (key, victim) = self.keys.evict_and_assign(pmo);
                self.stats.key_evictions += 1;
                // Victim's DTTLB entry (if cached) becomes invalid + dirty.
                if let Some(ventry) = self.dttlb.lookup_pmo(victim) {
                    ventry.key = None;
                    ventry.dirty = true;
                }
                if let Some(dtt_victim) = self.dtt.entry_mut(victim) {
                    dtt_victim.key = None;
                }
                *cycles += 2 * self.cfg.dttlb_entry_op_cycles;
                self.breakdown.entry_changes += 2 * self.cfg.dttlb_entry_op_cycles;
                // Range_Flush of the victim PMO's VA range on all cores.
                // Each invalidated entry also costs one future refill; the
                // paper counts these "subsequent TLB misses resulting from
                // TLB invalidations" as invalidation overhead, and so do
                // we — charged here, at the shootdown.
                if self.bug == Some(ProtocolBug::SkipEvictionShootdown) {
                    // Planted bug: the victim's TLB entries keep the key.
                } else {
                    if let Some(victim_region) = self.mmu.region_of(victim) {
                        let removed = self.mmu.shootdown(&victim_region);
                        self.stats.tlb_entries_invalidated += removed;
                        let refills = removed * self.cfg.tlb_miss_penalty;
                        *cycles += refills;
                        self.breakdown.tlb_invalidation += refills;
                    }
                    self.pending.push(TraceEvent::Shootdown { pmo: victim });
                }
                let shoot = self.cfg.tlb_invalidation_cycles * u64::from(self.cfg.threads);
                *cycles += shoot;
                self.stats.shootdowns += 1;
                self.breakdown.tlb_invalidation += shoot;
                key
            }
        };
        // PKRU reflects the new domain behind the key (Figure 4, step 11).
        *cycles += self.cfg.pkru_update_cycles;
        self.breakdown.entry_changes += self.cfg.pkru_update_cycles;
        let perm = self.dtt.entry(pmo).map_or(Perm::None, |e| e.perm(self.current));
        self.pkru = self.pkru.with_perm(key, perm);
        let entry = self.dttlb.lookup(va).expect("present");
        entry.key = Some(key);
        entry.dirty = true;
        if let Some(dtt_entry) = self.dtt.entry_mut(pmo) {
            dtt_entry.key = Some(key);
        }
        key
    }
}

impl ProtectionScheme for MpkVirt {
    fn name(&self) -> &'static str {
        "hardware MPK virtualization (DTT + DTTLB)"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::MpkVirt
    }

    fn attach(&mut self, pmo: PmoId, base: Va, size: u64, nvm: bool) -> u64 {
        let granule = granule_covering(base, size);
        let removed = self.mmu.attach_region(Region { pmo, base, granule, pool_size: size, nvm });
        self.stats.tlb_entries_invalidated += removed;
        self.dtt.attach(pmo, base, granule);
        let cycles = self.cfg.attach_kernel_cycles + self.cfg.syscall_cycles;
        self.breakdown.software += cycles;
        cycles
    }

    fn detach(&mut self, pmo: PmoId) -> u64 {
        if let Some((_, removed)) = self.mmu.detach_region(pmo) {
            self.stats.tlb_entries_invalidated += removed;
        }
        self.dttlb.invalidate_pmo(pmo);
        self.dtt.detach(pmo);
        if let Some(key) = self.keys.free(pmo) {
            self.pkru = self.pkru.with_perm(key, Perm::None);
        }
        let cycles = self.cfg.attach_kernel_cycles + self.cfg.syscall_cycles;
        self.breakdown.software += cycles;
        cycles
    }

    fn set_perm(&mut self, pmo: PmoId, perm: Perm) -> u64 {
        self.stats.set_perms += 1;
        // SETPERM executes like WRPKRU (fence semantics, §IV.A).
        let mut cycles = self.cfg.wrpkru_cycles;
        self.breakdown.permission_change += self.cfg.wrpkru_cycles;
        if let Some(entry) = self.dtt.entry_mut(pmo) {
            entry.set_perm(self.current, perm);
        }
        // "SETPERM ... will result in invalidating the corresponding entry
        // (if cached) at the DTTLB."
        if self.dttlb.invalidate_pmo(pmo).is_some() {
            cycles += self.cfg.dttlb_entry_op_cycles;
            self.breakdown.entry_changes += self.cfg.dttlb_entry_op_cycles;
        }
        if let Some(key) = self.keys.key_of(pmo) {
            self.keys.touch(key);
            if self.bug != Some(ProtocolBug::SkipPkruUpdateOnSetPerm) {
                self.pkru = self.pkru.with_perm(key, perm);
            }
            cycles += self.cfg.pkru_update_cycles;
            self.breakdown.entry_changes += self.cfg.pkru_update_cycles;
        }
        cycles
    }

    fn access(&mut self, va: Va, kind: AccessKind) -> AccessResult {
        let (payload, _, mut cycles) = self.mmu.tlb.lookup(vpn(va));
        let payload = match payload {
            // TLB hit: handled identically to stock MPK, no extra cost.
            Some(p) => p,
            None => {
                let in_region = self.mmu.region_at(va).is_some();
                match self.mmu.walk_or_map(va, |_| 0) {
                    Ok((pte, _)) => {
                        let pkey = if in_region { self.resolve_key(va, &mut cycles) } else { 0 };
                        let p = PkPayload { pkey, page_perm: pte.perm, mem: pte.mem };
                        self.mmu.tlb.fill(vpn(va), p);
                        p
                    }
                    Err(fault) => {
                        self.stats.faults += 1;
                        return AccessResult { cycles, mem: MemKind::Dram, fault: Some(fault) };
                    }
                }
            }
        };
        // The hardware check reads the materialized PKRU register, not the
        // DTT: a stale register is a real (catchable) protection bug.
        let domain_perm =
            if payload.pkey == 0 { Perm::ReadWrite } else { self.pkru.perm(payload.pkey) };
        let effective = domain_perm.meet(payload.page_perm);
        let fault = if effective.allows(kind) {
            None
        } else {
            self.stats.faults += 1;
            Some(ProtectionFault::DomainDenied {
                thread: self.current,
                pmo: self.keys.owner(payload.pkey).unwrap_or(PmoId::NULL),
                attempted: kind,
                held: domain_perm,
                va,
            })
        };
        AccessResult { cycles, mem: payload.mem, fault }
    }

    fn context_switch(&mut self, to: ThreadId) -> u64 {
        // Dirty DTTLB entries are written back, then the DTTLB is flushed
        // and the PKRU will be reconstructed for the incoming thread.
        let dirty = self.dttlb.flush();
        let mut cycles = dirty.len() as u64 * self.cfg.dttlb_entry_op_cycles;
        self.breakdown.entry_changes += cycles;
        cycles += self.cfg.wrpkru_cycles; // PKRU restore for the new thread
        self.breakdown.software += self.cfg.wrpkru_cycles;
        self.current = to;
        self.pkru = self.rebuild_pkru();
        self.stats.context_switches += 1;
        cycles
    }

    fn current_thread(&self) -> ThreadId {
        self.current
    }

    fn breakdown(&self) -> CostBreakdown {
        self.breakdown
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn tlb_stats(&self) -> TlbStats {
        *self.mmu.tlb.stats()
    }

    fn drain_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.pending)
    }

    fn fast_hint(&self, va: Va) -> Option<FastHint> {
        let payload = self.mmu.tlb.probe_l1(vpn(va))?;
        // TLB hits never consult the DTTLB or reassign keys: the verdict
        // is a pure function of the payload and the materialized PKRU.
        let domain_perm =
            if payload.pkey == 0 { Perm::ReadWrite } else { self.pkru.perm(payload.pkey) };
        Some(FastHint {
            cycles: self.mmu.tlb.l1_latency(),
            mem: payload.mem,
            effective: domain_perm.meet(payload.page_perm),
            access_latency: 0,
            thread: self.current,
            held: domain_perm,
            fault_pmo: Some(self.keys.owner(payload.pkey).unwrap_or(PmoId::NULL)),
        })
    }

    fn note_fast_hits(&mut self, _hint: &FastHint, hits: u64, denied: u64) {
        self.mmu.tlb.note_l1_hits(hits);
        self.stats.faults += denied;
    }

    fn fast_revalidate(&mut self, va: Va) -> bool {
        // Any state change that could stale a warm verdict (key eviction,
        // SETPERM, detach) shoots the page out of the TLB first, so
        // presence in the L1 TLB is the whole validity condition.
        self.mmu.tlb.touch_l1(vpn(va)).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB1: u64 = 1 << 30;

    fn scheme_with(n: u32) -> MpkVirt {
        let mut s = MpkVirt::new(&SimConfig::isca2020());
        for i in 1..=n {
            s.attach(PmoId::new(i), u64::from(i) * GB1, 8 << 20, true);
        }
        s
    }

    #[test]
    fn enforces_domain_permissions() {
        let mut s = scheme_with(2);
        assert!(!s.access(GB1, AccessKind::Read).allowed());
        s.set_perm(PmoId::new(1), Perm::ReadOnly);
        assert!(s.access(GB1, AccessKind::Read).allowed());
        assert!(!s.access(GB1, AccessKind::Write).allowed());
        assert!(!s.access(2 * GB1, AccessKind::Read).allowed(), "other domain untouched");
    }

    #[test]
    fn no_evictions_with_few_domains() {
        let mut s = scheme_with(15);
        for i in 1..=15u32 {
            s.set_perm(PmoId::new(i), Perm::ReadWrite);
            assert!(s.access(u64::from(i) * GB1, AccessKind::Write).allowed());
        }
        assert_eq!(s.stats().key_evictions, 0, "15 domains fit 15 keys");
        assert_eq!(s.stats().shootdowns, 0);
    }

    #[test]
    fn sixteenth_domain_triggers_eviction_and_shootdown() {
        let mut s = scheme_with(16);
        for i in 1..=15u64 {
            s.set_perm(PmoId::new(i as u32), Perm::ReadWrite);
            // Offset per domain so pages land in distinct TLB sets (GB
            // multiples all alias to set 0 otherwise).
            s.access(i * GB1 + i * 4096, AccessKind::Write);
        }
        s.set_perm(PmoId::new(16), Perm::ReadWrite);
        let r = s.access(16 * GB1, AccessKind::Write);
        assert!(r.allowed());
        assert_eq!(s.stats().key_evictions, 1);
        assert_eq!(s.stats().shootdowns, 1);
        assert!(s.stats().tlb_entries_invalidated > 0);
        assert!(s.breakdown().tlb_invalidation >= 286);
    }

    #[test]
    fn victim_remains_logically_protected_and_reaccessible() {
        let mut s = scheme_with(16);
        for i in 1..=16u32 {
            s.set_perm(PmoId::new(i), Perm::ReadWrite);
            assert!(s.access(u64::from(i) * GB1, AccessKind::Write).allowed());
        }
        // Every domain stays accessible; victims transparently re-acquire
        // keys (unlike stock MPK's domainless fallback).
        for i in 1..=16u32 {
            assert!(s.access(u64::from(i) * GB1 + 64, AccessKind::Write).allowed());
        }
        assert!(s.stats().key_evictions >= 2);
        // And a domain with no grant is still denied.
        s.set_perm(PmoId::new(5), Perm::None);
        assert!(!s.access(5 * GB1, AccessKind::Write).allowed());
    }

    #[test]
    fn stale_tlb_keys_are_shot_down() {
        // Security invariant: after a key moves from domain A to domain B,
        // no TLB entry may still map A's pages to the key.
        let mut s = scheme_with(16);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        // Touch many pages of domain 1 so its TLB entries are hot.
        for p in 0..8u64 {
            assert!(s.access(GB1 + p * 4096, AccessKind::Write).allowed());
        }
        // Force domain 1's key away by touching the other 15 domains.
        for i in 2..=16u32 {
            s.set_perm(PmoId::new(i), Perm::ReadWrite);
            s.access(u64::from(i) * GB1, AccessKind::Write);
        }
        // Drop domain 1's permission, then access: must be denied even
        // though its TLB entries were recently hot.
        s.set_perm(PmoId::new(1), Perm::None);
        for p in 0..8u64 {
            assert!(
                !s.access(GB1 + p * 4096, AccessKind::Read).allowed(),
                "page {p}: stale key must not grant access"
            );
        }
    }

    #[test]
    fn single_pmo_has_mpk_cost_profile() {
        // Table V: with one PMO, hardware MPK virtualization matches stock
        // MPK (no evictions, no DTTLB misses after warmup, TLB hits free).
        let mut s = scheme_with(1);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.access(GB1, AccessKind::Write);
        let warm = s.access(GB1, AccessKind::Write);
        assert_eq!(warm.cycles, 1, "TLB hit costs only the L1 TLB lookup");
        assert_eq!(s.stats().key_evictions, 0);
        let b = s.breakdown();
        assert_eq!(b.tlb_invalidation, 0);
    }

    #[test]
    fn context_switch_flushes_thread_state() {
        let mut s = scheme_with(2);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        assert!(s.access(GB1, AccessKind::Write).allowed());
        s.context_switch(ThreadId::new(7));
        assert!(!s.access(GB1, AccessKind::Write).allowed(), "new thread has no grant");
        s.set_perm(PmoId::new(1), Perm::ReadOnly);
        assert!(s.access(GB1, AccessKind::Read).allowed());
        s.context_switch(ThreadId::MAIN);
        assert!(s.access(GB1, AccessKind::Write).allowed(), "main thread's grant intact");
        assert_eq!(s.stats().context_switches, 2);
    }

    #[test]
    fn dttlb_misses_counted_with_many_domains() {
        let mut s = scheme_with(32);
        for i in 1..=32u32 {
            s.set_perm(PmoId::new(i), Perm::ReadOnly);
            s.access(u64::from(i) * GB1, AccessKind::Read);
        }
        // 32 domains through a 16-entry DTTLB: misses must occur.
        assert!(s.stats().dttlb_misses >= 16);
        assert!(s.breakdown().translation_miss >= 16 * 30);
    }

    #[test]
    fn detach_frees_key_for_others() {
        let mut s = scheme_with(15);
        for i in 1..=15u32 {
            s.set_perm(PmoId::new(i), Perm::ReadWrite);
            s.access(u64::from(i) * GB1, AccessKind::Write);
        }
        s.detach(PmoId::new(3));
        s.attach(PmoId::new(99), 99 * GB1, 8 << 20, true);
        s.set_perm(PmoId::new(99), Perm::ReadWrite);
        assert!(s.access(99 * GB1, AccessKind::Write).allowed());
        assert_eq!(s.stats().key_evictions, 0, "freed key reused without eviction");
    }
}
