//! Design 2 — Hardware-based domain virtualization (§IV.E).
//!
//! Foregoes protection keys entirely: each TLB entry carries a domain ID
//! (filled from the Domain Range Table, walked in parallel with the page
//! table), and per-thread domain permissions live in the Permission Table,
//! cached by a per-core PTLB. SETPERM completes inside the PTLB, and key
//! remapping — and with it every TLB shootdown — disappears. The price is
//! one PTLB lookup cycle on every domain access.

use pmo_simarch::{vpn, MemKind, SimConfig, TlbStats};
use pmo_trace::{AccessKind, Perm, PmoId, ThreadId, Va};

use crate::breakdown::CostBreakdown;
use crate::drt::DomainRangeTable;
use crate::fault::ProtectionFault;
use crate::mmu::{granule_covering, DomPayload, MmuBase, Region};
use crate::pt::PermissionTable;
use crate::ptlb::{Ptlb, PtlbEntry};
use crate::scheme::{
    AccessResult, FastHint, ProtectionScheme, ProtocolBug, SchemeKind, SchemeStats,
};

/// Hardware domain virtualization.
#[derive(Debug)]
pub struct DomainVirt {
    mmu: MmuBase<DomPayload>,
    drt: DomainRangeTable,
    pt: PermissionTable,
    ptlb: Ptlb,
    bug: Option<ProtocolBug>,
    cfg: SimConfig,
    current: ThreadId,
    stats: SchemeStats,
    breakdown: CostBreakdown,
}

impl DomainVirt {
    /// Creates the scheme.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        Self::with_bug(config, None)
    }

    /// Creates the scheme with an optional planted [`ProtocolBug`]
    /// (model-checker self-validation only).
    #[must_use]
    pub fn with_bug(config: &SimConfig, bug: Option<ProtocolBug>) -> Self {
        DomainVirt {
            mmu: MmuBase::new(config),
            drt: DomainRangeTable::new(),
            pt: PermissionTable::new(),
            ptlb: Ptlb::new(config.ptlb_entries),
            bug,
            cfg: config.clone(),
            current: ThreadId::MAIN,
            stats: SchemeStats::default(),
            breakdown: CostBreakdown::default(),
        }
    }

    /// The Permission Table (model-checker inspection).
    #[must_use]
    pub fn pt(&self) -> &PermissionTable {
        &self.pt
    }

    /// The per-core PTLB (model-checker inspection).
    #[must_use]
    pub fn ptlb(&self) -> &Ptlb {
        &self.ptlb
    }

    /// The DRT (model-checker inspection).
    #[must_use]
    pub fn drt(&self) -> &DomainRangeTable {
        &self.drt
    }

    /// The MMU (TLB hierarchy + regions; model-checker inspection).
    #[must_use]
    pub fn mmu(&self) -> &MmuBase<DomPayload> {
        &self.mmu
    }

    /// The PTLB/PT permission check for a domain access (Figure 5, steps
    /// 4 and 8-9). Returns the domain permission and adds its latency.
    fn domain_perm(&mut self, domain: PmoId, cycles: &mut u64) -> Perm {
        // Every domain access pays the PTLB lookup.
        *cycles += self.cfg.ptlb_access_cycles;
        self.breakdown.access_latency += self.cfg.ptlb_access_cycles;
        if let Some(entry) = self.ptlb.lookup(domain) {
            return entry.perm;
        }
        // PTLB miss: Permission Table lookup plus a fill.
        *cycles += self.cfg.ptlb_miss_cycles;
        self.breakdown.translation_miss += self.cfg.ptlb_miss_cycles;
        self.stats.ptlb_misses += 1;
        let perm = self.pt.get(domain, self.current);
        if let Some(victim) = self.ptlb.insert(PtlbEntry { pmo: domain, perm, dirty: false }) {
            if victim.dirty {
                self.pt.set(victim.pmo, self.current, victim.perm);
                *cycles += self.cfg.ptlb_entry_op_cycles;
                self.breakdown.entry_changes += self.cfg.ptlb_entry_op_cycles;
            }
        }
        perm
    }
}

impl ProtectionScheme for DomainVirt {
    fn name(&self) -> &'static str {
        "hardware domain virtualization (DRT + PT + PTLB)"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::DomainVirt
    }

    fn attach(&mut self, pmo: PmoId, base: Va, size: u64, nvm: bool) -> u64 {
        let granule = granule_covering(base, size);
        let removed = self.mmu.attach_region(Region { pmo, base, granule, pool_size: size, nvm });
        self.stats.tlb_entries_invalidated += removed;
        self.drt.attach(pmo, base, granule);
        self.pt.add_domain(pmo);
        let cycles = self.cfg.attach_kernel_cycles + self.cfg.syscall_cycles;
        self.breakdown.software += cycles;
        cycles
    }

    fn detach(&mut self, pmo: PmoId) -> u64 {
        if let Some((_, removed)) = self.mmu.detach_region(pmo) {
            self.stats.tlb_entries_invalidated += removed;
        }
        if self.bug != Some(ProtocolBug::SkipPtlbInvalidateOnDetach) {
            self.ptlb.invalidate(pmo);
        }
        self.pt.remove_domain(pmo);
        self.drt.detach(pmo);
        let cycles = self.cfg.attach_kernel_cycles + self.cfg.syscall_cycles;
        self.breakdown.software += cycles;
        cycles
    }

    fn set_perm(&mut self, pmo: PmoId, perm: Perm) -> u64 {
        self.stats.set_perms += 1;
        // SETPERM instruction (fence semantics), completed in the PTLB.
        let mut cycles = self.cfg.wrpkru_cycles + self.cfg.ptlb_entry_op_cycles;
        self.breakdown.permission_change += self.cfg.wrpkru_cycles;
        self.breakdown.entry_changes += self.cfg.ptlb_entry_op_cycles;
        if !self.pt.contains(pmo) {
            // SETPERM on a detached domain is a no-op: there is no PT row
            // to update, and caching a grant in the PTLB here would leave
            // a stale entry that outlives a later re-attach (the entry is
            // never invalidated, because detach already ran). Found by
            // exhaustive small-world refinement checking.
            return cycles;
        }
        if let Some(entry) = self.ptlb.lookup(pmo) {
            entry.perm = perm;
            entry.dirty = true;
        } else {
            // PTLB miss: the entry is fetched from the Permission Table
            // (read-modify-write), then updated in place.
            cycles += self.cfg.ptlb_miss_cycles;
            self.breakdown.translation_miss += self.cfg.ptlb_miss_cycles;
            self.stats.ptlb_misses += 1;
            if let Some(victim) = self.ptlb.insert(PtlbEntry { pmo, perm, dirty: true }) {
                if victim.dirty {
                    self.pt.set(victim.pmo, self.current, victim.perm);
                    cycles += self.cfg.ptlb_entry_op_cycles;
                    self.breakdown.entry_changes += self.cfg.ptlb_entry_op_cycles;
                }
            }
        }
        cycles
    }

    fn access(&mut self, va: Va, kind: AccessKind) -> AccessResult {
        let (payload, _, mut cycles) = self.mmu.tlb.lookup(vpn(va));
        let payload = match payload {
            Some(p) => p,
            None => {
                // Page table walk and DRT walk proceed in parallel; the DRT
                // is shallower than the page table, so it adds no latency
                // (§V).
                match self.mmu.walk_or_map(va, |_| 0) {
                    Ok((pte, _)) => {
                        let domain = self.drt.domain_of(va);
                        let p = DomPayload { domain, page_perm: pte.perm, mem: pte.mem };
                        self.mmu.tlb.fill(vpn(va), p);
                        p
                    }
                    Err(fault) => {
                        self.stats.faults += 1;
                        return AccessResult { cycles, mem: MemKind::Dram, fault: Some(fault) };
                    }
                }
            }
        };
        let domain_perm = if payload.domain.is_null() {
            Perm::ReadWrite // domainless: no further action (Figure 5, step 3)
        } else {
            self.domain_perm(payload.domain, &mut cycles)
        };
        let effective = domain_perm.meet(payload.page_perm);
        let fault = if effective.allows(kind) {
            None
        } else {
            self.stats.faults += 1;
            Some(ProtectionFault::DomainDenied {
                thread: self.current,
                pmo: payload.domain,
                attempted: kind,
                held: domain_perm,
                va,
            })
        };
        AccessResult { cycles, mem: payload.mem, fault }
    }

    fn context_switch(&mut self, to: ThreadId) -> u64 {
        // Flush thread-specific PTLB state (dirty entries write back to the
        // PT); the TLB's domain IDs remain valid and are NOT flushed.
        let mut cycles = 0;
        if self.bug != Some(ProtocolBug::SkipPtlbFlushOnSwitch) {
            let dirty = self.ptlb.flush();
            cycles = dirty.len() as u64 * self.cfg.ptlb_entry_op_cycles;
            for entry in dirty {
                self.pt.set(entry.pmo, self.current, entry.perm);
            }
            self.breakdown.entry_changes += cycles;
        }
        self.current = to;
        self.stats.context_switches += 1;
        cycles
    }

    fn current_thread(&self) -> ThreadId {
        self.current
    }

    fn breakdown(&self) -> CostBreakdown {
        self.breakdown
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn tlb_stats(&self) -> TlbStats {
        *self.mmu.tlb.stats()
    }

    fn fast_hint(&self, va: Va) -> Option<FastHint> {
        let payload = self.mmu.tlb.probe_l1(vpn(va))?;
        if payload.domain.is_null() {
            // Domainless: no PTLB consultation (Figure 5, step 3).
            return Some(FastHint {
                cycles: self.mmu.tlb.l1_latency(),
                mem: payload.mem,
                effective: payload.page_perm,
                access_latency: 0,
                thread: self.current,
                held: Perm::ReadWrite,
                fault_pmo: Some(payload.domain),
            });
        }
        // Only memoize when the PTLB also holds the domain: a PTLB miss
        // walks the PT and fills, which must stay on the slow path.
        let entry = self.ptlb.probe(payload.domain)?;
        Some(FastHint {
            cycles: self.mmu.tlb.l1_latency() + self.cfg.ptlb_access_cycles,
            mem: payload.mem,
            effective: entry.perm.meet(payload.page_perm),
            access_latency: self.cfg.ptlb_access_cycles,
            thread: self.current,
            held: entry.perm,
            fault_pmo: Some(payload.domain),
        })
    }

    fn note_fast_hits(&mut self, hint: &FastHint, hits: u64, denied: u64) {
        self.mmu.tlb.note_l1_hits(hits);
        self.stats.faults += denied;
        self.breakdown.access_latency += hint.access_latency * hits;
    }

    fn fast_revalidate(&mut self, va: Va) -> bool {
        let Some(payload) = self.mmu.tlb.touch_l1(vpn(va)) else { return false };
        // Domainless pages skip the PTLB (Figure 5, step 3). Domain-backed
        // pages must still have their PTLB entry resident — and touched, so
        // PTLB replacement state matches what the memoized hit would do.
        payload.domain.is_null() || self.ptlb.touch(payload.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB1: u64 = 1 << 30;

    fn scheme_with(n: u32) -> DomainVirt {
        let mut s = DomainVirt::new(&SimConfig::isca2020());
        for i in 1..=n {
            s.attach(PmoId::new(i), u64::from(i) * GB1, 8 << 20, true);
        }
        s
    }

    #[test]
    fn enforces_domain_permissions() {
        let mut s = scheme_with(2);
        assert!(!s.access(GB1, AccessKind::Read).allowed());
        s.set_perm(PmoId::new(1), Perm::ReadOnly);
        assert!(s.access(GB1, AccessKind::Read).allowed());
        assert!(!s.access(GB1, AccessKind::Write).allowed());
        assert!(!s.access(2 * GB1, AccessKind::Read).allowed());
    }

    #[test]
    fn no_shootdowns_ever() {
        let mut s = scheme_with(64);
        for round in 0..3 {
            for i in 1..=64u32 {
                s.set_perm(PmoId::new(i), Perm::ReadWrite);
                assert!(s.access(u64::from(i) * GB1 + round, AccessKind::Write).allowed());
                s.set_perm(PmoId::new(i), Perm::None);
            }
        }
        assert_eq!(s.stats().shootdowns, 0, "design 2 removes shootdowns entirely");
        assert_eq!(s.stats().key_evictions, 0);
        assert_eq!(s.breakdown().tlb_invalidation, 0);
    }

    #[test]
    fn ptlb_latency_on_every_domain_access() {
        let mut s = scheme_with(1);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.access(GB1, AccessKind::Write); // warm TLB + PTLB
        let warm = s.access(GB1, AccessKind::Write);
        // L1 TLB hit (1) + PTLB lookup (1).
        assert_eq!(warm.cycles, 2);
        // Non-domain memory does not pay the PTLB cycle.
        s.access(0x10_0000, AccessKind::Read);
        let anon = s.access(0x10_0000, AccessKind::Read);
        assert_eq!(anon.cycles, 1);
    }

    #[test]
    fn ptlb_misses_with_many_domains() {
        let mut s = scheme_with(64);
        for i in 1..=64u32 {
            s.set_perm(PmoId::new(i), Perm::ReadOnly);
        }
        for i in 1..=64u32 {
            s.access(u64::from(i) * GB1, AccessKind::Read);
        }
        assert!(s.stats().ptlb_misses > 0, "64 domains through a 16-entry PTLB");
        assert!(s.breakdown().translation_miss > 0);
    }

    #[test]
    fn setperm_completes_in_ptlb_and_survives_eviction() {
        let mut s = scheme_with(32);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        // Evict domain 1's PTLB entry by touching 16+ other domains.
        for i in 2..=18u32 {
            s.set_perm(PmoId::new(i), Perm::ReadOnly);
        }
        // The dirty entry was written back to the PT; the grant survives.
        assert!(s.access(GB1, AccessKind::Write).allowed());
    }

    #[test]
    fn context_switch_flushes_ptlb_not_tlb() {
        let mut s = scheme_with(1);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.access(GB1, AccessKind::Write);
        let tlb_misses_before = s.tlb_stats().misses;
        s.context_switch(ThreadId::new(1));
        assert!(!s.access(GB1, AccessKind::Write).allowed(), "thread 1 has no grant");
        // The denied access hit the TLB (no new page walk): domain IDs in
        // the TLB remain valid across context switches.
        assert_eq!(s.tlb_stats().misses, tlb_misses_before);
        s.context_switch(ThreadId::MAIN);
        assert!(s.access(GB1, AccessKind::Write).allowed());
    }

    #[test]
    fn spatial_isolation_between_threads() {
        let mut s = scheme_with(2);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.context_switch(ThreadId::new(1));
        s.set_perm(PmoId::new(2), Perm::ReadOnly);
        assert!(!s.access(GB1, AccessKind::Read).allowed(), "t1 lacks pmo1");
        assert!(s.access(2 * GB1, AccessKind::Read).allowed());
        s.context_switch(ThreadId::MAIN);
        assert!(s.access(GB1, AccessKind::Write).allowed());
        assert!(!s.access(2 * GB1, AccessKind::Read).allowed(), "main lacks pmo2");
    }

    #[test]
    fn setperm_on_detached_domain_leaves_no_stale_ptlb_grant() {
        // Regression: SETPERM after detach used to insert a dirty PTLB
        // entry for the dead domain; a later re-attach then honored that
        // stale cached grant without any SETPERM ever succeeding.
        let mut s = scheme_with(1);
        s.detach(PmoId::new(1));
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.attach(PmoId::new(1), GB1, 8 << 20, true);
        assert!(
            !s.access(GB1, AccessKind::Read).allowed(),
            "re-attached domain must start inaccessible"
        );
    }

    #[test]
    fn detach_drops_permissions() {
        let mut s = scheme_with(1);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.detach(PmoId::new(1));
        s.attach(PmoId::new(1), GB1, 8 << 20, true);
        assert!(!s.access(GB1, AccessKind::Read).allowed());
    }

    #[test]
    fn thousand_domains_supported() {
        let mut s = scheme_with(1000);
        for i in (1..=1000u32).step_by(97) {
            s.set_perm(PmoId::new(i), Perm::ReadWrite);
            assert!(s.access(u64::from(i) * GB1, AccessKind::Write).allowed());
            s.set_perm(PmoId::new(i), Perm::None);
            assert!(!s.access(u64::from(i) * GB1, AccessKind::Write).allowed());
        }
        assert_eq!(s.stats().shootdowns, 0);
        assert_eq!(s.stats().domainless_fallbacks, 0);
    }
}
