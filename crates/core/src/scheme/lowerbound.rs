//! The ideal lowerbound (§V): MPK virtualization with *no* penalty beyond
//! executing the WRPKRU permission-switch instructions.
//!
//! "One can think of this scheme as having MPK virtualization without any
//! penalties for accessing the DTTLB or DTT." It still enforces the full
//! domain semantics functionally, so every scheme can be checked for
//! identical allow/deny behaviour against it.

use std::collections::BTreeMap;

use pmo_simarch::{vpn, MemKind, SimConfig, TlbStats};
use pmo_trace::{AccessKind, Perm, PmoId, ThreadId, Va};

use crate::breakdown::CostBreakdown;
use crate::fault::ProtectionFault;
use crate::mmu::{granule_covering, MmuBase, PlainPayload, Region};
use crate::scheme::{AccessResult, FastHint, ProtectionScheme, SchemeKind, SchemeStats};

/// Ideal MPK-virtualization lowerbound.
#[derive(Debug)]
pub struct Lowerbound {
    mmu: MmuBase<PlainPayload>,
    perms: BTreeMap<(ThreadId, PmoId), Perm>,
    wrpkru_cycles: u64,
    attach_cycles: u64,
    current: ThreadId,
    stats: SchemeStats,
    breakdown: CostBreakdown,
}

impl Lowerbound {
    /// Creates the lowerbound scheme.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        Lowerbound {
            mmu: MmuBase::new(config),
            perms: BTreeMap::new(),
            wrpkru_cycles: config.wrpkru_cycles,
            attach_cycles: config.attach_kernel_cycles + config.syscall_cycles,
            current: ThreadId::MAIN,
            stats: SchemeStats::default(),
            breakdown: CostBreakdown::default(),
        }
    }

    fn domain_perm(&self, pmo: PmoId) -> Perm {
        self.perms.get(&(self.current, pmo)).copied().unwrap_or(Perm::None)
    }
}

impl ProtectionScheme for Lowerbound {
    fn name(&self) -> &'static str {
        "ideal lowerbound (WRPKRU cost only)"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::Lowerbound
    }

    fn attach(&mut self, pmo: PmoId, base: Va, size: u64, nvm: bool) -> u64 {
        self.mmu.attach_region(Region {
            pmo,
            base,
            granule: granule_covering(base, size),
            pool_size: size,
            nvm,
        });
        self.breakdown.software += self.attach_cycles;
        self.attach_cycles
    }

    fn detach(&mut self, pmo: PmoId) -> u64 {
        self.mmu.detach_region(pmo);
        self.perms.retain(|(_, p), _| *p != pmo);
        self.breakdown.software += self.attach_cycles;
        self.attach_cycles
    }

    fn set_perm(&mut self, pmo: PmoId, perm: Perm) -> u64 {
        self.stats.set_perms += 1;
        if perm == Perm::None {
            self.perms.remove(&(self.current, pmo));
        } else {
            self.perms.insert((self.current, pmo), perm);
        }
        self.breakdown.permission_change += self.wrpkru_cycles;
        self.wrpkru_cycles
    }

    fn access(&mut self, va: Va, kind: AccessKind) -> AccessResult {
        let (payload, _, cycles) = self.mmu.tlb.lookup(vpn(va));
        let payload = match payload {
            Some(p) => p,
            None => match self.mmu.walk_or_map(va, |_| 0) {
                Ok((pte, _)) => {
                    let p = PlainPayload { page_perm: pte.perm, mem: pte.mem };
                    self.mmu.tlb.fill(vpn(va), p);
                    p
                }
                Err(fault) => {
                    self.stats.faults += 1;
                    return AccessResult { cycles, mem: MemKind::Dram, fault: Some(fault) };
                }
            },
        };
        // Zero-cost (ideal) domain check.
        let effective = match self.mmu.region_at(va) {
            Some(region) => self.domain_perm(region.pmo).meet(payload.page_perm),
            None => payload.page_perm,
        };
        let fault = if effective.allows(kind) {
            None
        } else {
            self.stats.faults += 1;
            Some(match self.mmu.region_at(va) {
                Some(region) => ProtectionFault::DomainDenied {
                    thread: self.current,
                    pmo: region.pmo,
                    attempted: kind,
                    held: self.domain_perm(region.pmo),
                    va,
                },
                None => ProtectionFault::PageDenied {
                    thread: self.current,
                    attempted: kind,
                    held: payload.page_perm,
                    va,
                },
            })
        };
        AccessResult { cycles, mem: payload.mem, fault }
    }

    fn context_switch(&mut self, to: ThreadId) -> u64 {
        self.current = to;
        self.stats.context_switches += 1;
        0
    }

    fn current_thread(&self) -> ThreadId {
        self.current
    }

    fn breakdown(&self) -> CostBreakdown {
        self.breakdown
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn tlb_stats(&self) -> TlbStats {
        *self.mmu.tlb.stats()
    }

    fn fast_hint(&self, va: Va) -> Option<FastHint> {
        let payload = self.mmu.tlb.probe_l1(vpn(va))?;
        let (effective, held, fault_pmo) = match self.mmu.region_at(va) {
            Some(region) => {
                let domain = self.domain_perm(region.pmo);
                (domain.meet(payload.page_perm), domain, Some(region.pmo))
            }
            None => (payload.page_perm, payload.page_perm, None),
        };
        Some(FastHint {
            cycles: self.mmu.tlb.l1_latency(),
            mem: payload.mem,
            effective,
            access_latency: 0,
            thread: self.current,
            held,
            fault_pmo,
        })
    }

    fn note_fast_hits(&mut self, _hint: &FastHint, hits: u64, denied: u64) {
        self.mmu.tlb.note_l1_hits(hits);
        self.stats.faults += denied;
    }

    fn fast_revalidate(&mut self, va: Va) -> bool {
        self.mmu.tlb.touch_l1(vpn(va)).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB1: u64 = 1 << 30;

    fn scheme_with_pmo() -> Lowerbound {
        let mut s = Lowerbound::new(&SimConfig::isca2020());
        s.attach(PmoId::new(1), GB1, 8 << 20, true);
        s
    }

    #[test]
    fn denies_without_permission() {
        let mut s = scheme_with_pmo();
        let r = s.access(GB1, AccessKind::Read);
        assert!(matches!(r.fault, Some(ProtectionFault::DomainDenied { .. })));
    }

    #[test]
    fn figure2a_temporal_sequence() {
        // The paper's Figure 2(a): +R allows ld, denies st; +W allows st;
        // -R -W denies ld.
        let mut s = scheme_with_pmo();
        let pmo = PmoId::new(1);
        assert_eq!(s.set_perm(pmo, Perm::ReadOnly), 27);
        assert!(s.access(GB1, AccessKind::Read).allowed());
        assert!(!s.access(GB1 + 8, AccessKind::Write).allowed());
        s.set_perm(pmo, Perm::ReadWrite);
        assert!(s.access(GB1 + 16, AccessKind::Write).allowed());
        s.set_perm(pmo, Perm::None);
        assert!(!s.access(GB1 + 24, AccessKind::Read).allowed());
    }

    #[test]
    fn figure2b_spatial_isolation() {
        // The paper's Figure 2(b): thread 1's permission does not leak to
        // thread 2.
        let mut s = scheme_with_pmo();
        let pmo = PmoId::new(1);
        s.set_perm(pmo, Perm::ReadWrite);
        assert!(s.access(GB1, AccessKind::Write).allowed());
        s.context_switch(ThreadId::new(2));
        assert!(!s.access(GB1, AccessKind::Read).allowed());
        assert!(!s.access(GB1, AccessKind::Write).allowed());
        s.context_switch(ThreadId::MAIN);
        assert!(s.access(GB1, AccessKind::Write).allowed());
    }

    #[test]
    fn only_wrpkru_cost_is_charged() {
        let mut s = scheme_with_pmo();
        let attach_software = s.breakdown().software;
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        let b = s.breakdown();
        assert_eq!(b.permission_change, 27);
        assert_eq!(
            b.total() - b.software,
            27,
            "beyond the uniform attach cost, only WRPKRU is charged"
        );
        assert_eq!(b.software, attach_software, "set_perm adds no software cost");
        // A warm access costs exactly the L1 TLB latency.
        s.access(GB1, AccessKind::Read);
        let warm = s.access(GB1, AccessKind::Read).cycles;
        assert_eq!(warm, 1);
    }

    #[test]
    fn non_pmo_memory_unaffected() {
        let mut s = scheme_with_pmo();
        assert!(s.access(0x10_0000, AccessKind::Write).allowed());
        assert_eq!(s.access(0x10_0000, AccessKind::Write).mem, MemKind::Dram);
    }

    #[test]
    fn detach_clears_permissions() {
        let mut s = scheme_with_pmo();
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.detach(PmoId::new(1));
        s.attach(PmoId::new(1), GB1, 8 << 20, true);
        assert!(!s.access(GB1, AccessKind::Read).allowed(), "perm did not survive detach");
    }
}
