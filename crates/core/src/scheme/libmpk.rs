//! libmpk — the software MPK-virtualization baseline (Park et al., USENIX
//! ATC'19), as the paper models it (§VI.B).
//!
//! A user-level library caches up to 15 domains in protection keys
//! (key 0 = NULL; optionally key 15 is reserved as a *guard* key that
//! traps stray accesses to evicted domains — `SimConfig::libmpk_guard_key`).
//! When a permission change or access targets an unmapped
//! domain, the library evicts a victim: two `pkey_mprotect` system calls
//! rewrite the pkey field of **every PTE of both domains** — cost
//! proportional to domain size — followed by TLB shootdowns. This is the
//! "17.4x slowdown per permission update" overhead the hardware designs
//! remove.

use std::collections::BTreeMap;

use pmo_simarch::{vpn, MemKind, SimConfig, TlbStats};
use pmo_trace::{AccessKind, Perm, PmoId, ThreadId, Va};

use crate::breakdown::CostBreakdown;
use crate::fault::ProtectionFault;
use crate::keys::KeyAllocator;
use crate::mmu::{granule_covering, MmuBase, PkPayload, Region};
use crate::scheme::{AccessResult, FastHint, ProtectionScheme, SchemeKind, SchemeStats};

/// The guard key tagging pages of evicted (unmapped) domains, when the
/// guard-key mode is enabled (`SimConfig::libmpk_guard_key`).
pub const GUARD_KEY: u8 = 15;

/// Software MPK virtualization.
#[derive(Debug)]
pub struct LibMpk {
    mmu: MmuBase<PkPayload>,
    keys: KeyAllocator,
    /// The per-thread permission each thread *wants* for each domain
    /// (libmpk's virtual PKRU; materialized into the real PKRU for mapped
    /// domains).
    desired: BTreeMap<(ThreadId, PmoId), Perm>,
    cfg: SimConfig,
    current: ThreadId,
    stats: SchemeStats,
    breakdown: CostBreakdown,
}

impl LibMpk {
    /// Creates the scheme per the configuration's `libmpk_guard_key`
    /// setting.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        let mut keys = KeyAllocator::new(config.pkeys);
        if config.libmpk_guard_key {
            keys.reserve(GUARD_KEY);
        }
        LibMpk {
            mmu: MmuBase::new(config),
            keys,
            desired: BTreeMap::new(),
            cfg: config.clone(),
            current: ThreadId::MAIN,
            stats: SchemeStats::default(),
            breakdown: CostBreakdown::default(),
        }
    }

    /// Creates the scheme with the guard key forced on (14 usable keys,
    /// fault-and-remap on stray accesses to evicted domains).
    #[must_use]
    pub fn with_guard_key(config: &SimConfig) -> Self {
        let mut config = config.clone();
        config.libmpk_guard_key = true;
        Self::new(&config)
    }

    /// The PTE key used for pages of unmapped domains.
    fn unmapped_key(&self) -> u8 {
        if self.cfg.libmpk_guard_key {
            GUARD_KEY
        } else {
            0
        }
    }

    fn desired_perm(&self, thread: ThreadId, pmo: PmoId) -> Perm {
        self.desired.get(&(thread, pmo)).copied().unwrap_or(Perm::None)
    }

    /// One `pkey_mprotect`: syscall + a PTE rewrite per page of the domain,
    /// plus the shootdown it triggers. Functionally rewrites the mapped
    /// PTEs and invalidates the region's TLB entries.
    fn pkey_mprotect(&mut self, region: &Region, key: u8) -> u64 {
        let mut cycles = self.cfg.syscall_cycles;
        self.breakdown.software += self.cfg.syscall_cycles;
        let pte_cost = self.cfg.pte_write_cycles * region.pool_pages();
        cycles += pte_cost;
        self.breakdown.software += pte_cost;
        self.mmu.page_table.set_pkey_range(region.base, region.pool_size, key);
        let removed = self.mmu.shootdown(region);
        let shoot = self.cfg.tlb_invalidation_cycles * u64::from(self.cfg.threads);
        // As for the hardware designs, each invalidated entry is charged
        // one future refill at the shootdown (the paper's accounting).
        let refills = removed * self.cfg.tlb_miss_penalty;
        cycles += shoot + refills;
        self.stats.shootdowns += 1;
        self.stats.tlb_entries_invalidated += removed;
        self.breakdown.tlb_invalidation += shoot + refills;
        cycles
    }

    /// Maps `pmo` to a protection key, evicting a victim if necessary.
    fn map_domain(&mut self, pmo: PmoId) -> u64 {
        debug_assert!(self.keys.key_of(pmo).is_none());
        let mut cycles = 0;
        let key = match self.keys.alloc(pmo) {
            Some(key) => key,
            None => {
                let (key, victim) = self.keys.evict_and_assign(pmo);
                self.stats.key_evictions += 1;
                if let Some(victim_region) = self.mmu.region_of(victim) {
                    let unmapped = self.unmapped_key();
                    cycles += self.pkey_mprotect(&victim_region, unmapped);
                }
                key
            }
        };
        if let Some(region) = self.mmu.region_of(pmo) {
            cycles += self.pkey_mprotect(&region, key);
        }
        cycles
    }
}

impl ProtectionScheme for LibMpk {
    fn name(&self) -> &'static str {
        "libmpk (software MPK virtualization)"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::LibMpk
    }

    fn attach(&mut self, pmo: PmoId, base: Va, size: u64, nvm: bool) -> u64 {
        self.mmu.attach_region(Region {
            pmo,
            base,
            granule: granule_covering(base, size),
            pool_size: size,
            nvm,
        });
        // mpk_mmap: the region starts guard-keyed (unmapped domain).
        let cycles = self.cfg.attach_kernel_cycles + self.cfg.syscall_cycles;
        self.breakdown.software += cycles;
        cycles
    }

    fn detach(&mut self, pmo: PmoId) -> u64 {
        if let Some((_, removed)) = self.mmu.detach_region(pmo) {
            self.stats.tlb_entries_invalidated += removed;
        }
        self.keys.free(pmo);
        self.desired.retain(|(_, p), _| *p != pmo);
        let cycles = self.cfg.attach_kernel_cycles + self.cfg.syscall_cycles;
        self.breakdown.software += cycles;
        cycles
    }

    fn set_perm(&mut self, pmo: PmoId, perm: Perm) -> u64 {
        self.stats.set_perms += 1;
        if perm == Perm::None {
            self.desired.remove(&(self.current, pmo));
        } else {
            self.desired.insert((self.current, pmo), perm);
        }
        let mut cycles = 0;
        match self.keys.key_of(pmo) {
            Some(key) => self.keys.touch(key),
            None => cycles += self.map_domain(pmo),
        }
        // The WRPKRU materializing the permission.
        cycles += self.cfg.wrpkru_cycles;
        self.breakdown.permission_change += self.cfg.wrpkru_cycles;
        cycles
    }

    fn access(&mut self, va: Va, kind: AccessKind) -> AccessResult {
        let unmapped = self.unmapped_key();
        let (payload, _, mut cycles) = self.mmu.tlb.lookup(vpn(va));
        let mut payload = match payload {
            Some(p) => p,
            None => {
                let keys = &self.keys;
                match self.mmu.walk_or_map(va, |r| keys.key_of(r.pmo).unwrap_or(unmapped)) {
                    Ok((pte, _)) => {
                        let p = PkPayload { pkey: pte.pkey, page_perm: pte.perm, mem: pte.mem };
                        self.mmu.tlb.fill(vpn(va), p);
                        p
                    }
                    Err(fault) => {
                        self.stats.faults += 1;
                        return AccessResult { cycles, mem: MemKind::Dram, fault: Some(fault) };
                    }
                }
            }
        };
        if self.cfg.libmpk_guard_key && payload.pkey == GUARD_KEY {
            // Access to an unmapped domain: the PKRU denies the guard key,
            // the signal handler maps the domain lazily and retries.
            self.stats.sw_faults += 1;
            let fault_entry = self.cfg.syscall_cycles;
            self.breakdown.software += fault_entry;
            cycles += fault_entry;
            if let Some(region) = self.mmu.region_at(va) {
                cycles += self.map_domain(region.pmo);
            }
            // Retry: the shootdown removed the stale entry; re-walk.
            cycles += self.cfg.tlb_miss_penalty;
            let keys = &self.keys;
            match self.mmu.walk_or_map(va, |r| keys.key_of(r.pmo).unwrap_or(unmapped)) {
                Ok((pte, _)) => {
                    payload = PkPayload { pkey: pte.pkey, page_perm: pte.perm, mem: pte.mem };
                    self.mmu.tlb.fill(vpn(va), payload);
                }
                Err(fault) => {
                    self.stats.faults += 1;
                    return AccessResult { cycles, mem: MemKind::Dram, fault: Some(fault) };
                }
            }
        }
        let domain_perm = if payload.pkey == 0 {
            Perm::ReadWrite
        } else {
            self.keys
                .owner(payload.pkey)
                .map_or(Perm::None, |pmo| self.desired_perm(self.current, pmo))
        };
        let effective = domain_perm.meet(payload.page_perm);
        let fault = if effective.allows(kind) {
            None
        } else {
            self.stats.faults += 1;
            Some(ProtectionFault::DomainDenied {
                thread: self.current,
                pmo: self.keys.owner(payload.pkey).unwrap_or(PmoId::NULL),
                attempted: kind,
                held: domain_perm,
                va,
            })
        };
        AccessResult { cycles, mem: payload.mem, fault }
    }

    fn context_switch(&mut self, to: ThreadId) -> u64 {
        // libmpk keeps per-thread virtual PKRU state in user space; the
        // hardware PKRU travels with the thread (XSAVE).
        self.current = to;
        self.stats.context_switches += 1;
        0
    }

    fn current_thread(&self) -> ThreadId {
        self.current
    }

    fn breakdown(&self) -> CostBreakdown {
        self.breakdown
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn tlb_stats(&self) -> TlbStats {
        *self.mmu.tlb.stats()
    }

    fn fast_hint(&self, va: Va) -> Option<FastHint> {
        let payload = self.mmu.tlb.probe_l1(vpn(va))?;
        if self.cfg.libmpk_guard_key && payload.pkey == GUARD_KEY {
            // Guard-keyed accesses fault into the library and remap the
            // domain — they mutate cross-page state and must stay slow.
            return None;
        }
        let domain_perm = if payload.pkey == 0 {
            Perm::ReadWrite
        } else {
            self.keys
                .owner(payload.pkey)
                .map_or(Perm::None, |pmo| self.desired_perm(self.current, pmo))
        };
        Some(FastHint {
            cycles: self.mmu.tlb.l1_latency(),
            mem: payload.mem,
            effective: domain_perm.meet(payload.page_perm),
            access_latency: 0,
            thread: self.current,
            held: domain_perm,
            fault_pmo: Some(self.keys.owner(payload.pkey).unwrap_or(PmoId::NULL)),
        })
    }

    fn note_fast_hits(&mut self, _hint: &FastHint, hits: u64, denied: u64) {
        self.mmu.tlb.note_l1_hits(hits);
        self.stats.faults += denied;
    }

    fn fast_revalidate(&mut self, va: Va) -> bool {
        match self.mmu.tlb.touch_l1(vpn(va)) {
            // Key stealing remaps the victim's pages to the guard key via
            // pkey_mprotect, which shoots them out of the TLB — so a
            // guard-keyed payload here can only mean a fresh walk brought
            // the page back in; its summary entry must not be served (the
            // warm guard-fault path mutates cross-page state).
            Some(payload) => !(self.cfg.libmpk_guard_key && payload.pkey == GUARD_KEY),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB1: u64 = 1 << 30;

    fn scheme_with(n: u32) -> LibMpk {
        let mut s = LibMpk::new(&SimConfig::isca2020());
        for i in 1..=n {
            s.attach(PmoId::new(i), u64::from(i) * GB1, 8 << 20, true);
        }
        s
    }

    #[test]
    fn small_domain_counts_behave_like_mpk() {
        let mut s = scheme_with(4);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        assert!(s.access(GB1, AccessKind::Write).allowed());
        assert!(!s.access(2 * GB1, AccessKind::Read).allowed());
        assert_eq!(s.stats().key_evictions, 0, "14 usable keys cover 4 domains");
    }

    #[test]
    fn second_set_perm_on_mapped_domain_is_cheap() {
        let mut s = scheme_with(1);
        let first = s.set_perm(PmoId::new(1), Perm::ReadOnly);
        let second = s.set_perm(PmoId::new(1), Perm::ReadWrite);
        assert!(first > second, "first maps the domain; second is WRPKRU only");
        assert_eq!(second, 27);
    }

    #[test]
    fn eviction_cost_scales_with_domain_pages() {
        // 15 domains map into 14 usable keys (guard on) -> one eviction.
        let mut s = scheme_with(15);
        for i in 1..=14 {
            s.set_perm(PmoId::new(i), Perm::ReadOnly);
        }
        assert_eq!(s.stats().key_evictions, 0);
        let cycles = s.set_perm(PmoId::new(15), Perm::ReadOnly);
        assert_eq!(s.stats().key_evictions, 1);
        let cfg = SimConfig::isca2020();
        // Two mprotects, each rewriting 2048 PTEs (8MB domain).
        let min_expected = 2 * (cfg.syscall_cycles + 2048 * cfg.pte_write_cycles);
        assert!(cycles >= min_expected, "{cycles} >= {min_expected}");
    }

    fn guarded_scheme_with(n: u32) -> LibMpk {
        let mut s = LibMpk::with_guard_key(&SimConfig::isca2020());
        for i in 1..=n {
            s.attach(PmoId::new(i), u64::from(i) * GB1, 8 << 20, true);
        }
        s
    }

    #[test]
    fn guard_faults_on_unmapped_domain_access() {
        let mut s = guarded_scheme_with(15);
        // Map all 14 keys and grant read everywhere.
        for i in 1..=14 {
            s.set_perm(PmoId::new(i), Perm::ReadOnly);
        }
        // Touch domain 15 without a set_perm: desired perm defaults to None
        // even after the lazy mapping, so the access is denied but the
        // domain got mapped via the fault path.
        let before = s.stats().sw_faults;
        let r = s.access(15 * GB1, AccessKind::Read);
        assert_eq!(s.stats().sw_faults, before + 1);
        assert!(!r.allowed(), "mapped by handler but no permission desired");
        // Now desire read and touch a domain that was just evicted.
        s.desired.insert((ThreadId::MAIN, PmoId::new(15)), Perm::ReadOnly);
        assert!(s.access(15 * GB1 + 64, AccessKind::Read).allowed());
    }

    #[test]
    fn evicted_domain_pages_are_guarded() {
        let mut s = guarded_scheme_with(15);
        for i in 1..=14 {
            s.set_perm(PmoId::new(i), Perm::ReadWrite);
        }
        // Touch domain 1 so its pages are mapped with its key.
        assert!(s.access(GB1, AccessKind::Write).allowed());
        // Map domain 15, evicting someone.
        s.set_perm(PmoId::new(15), Perm::ReadWrite);
        assert_eq!(s.stats().key_evictions, 1);
        assert!(s.access(15 * GB1, AccessKind::Write).allowed());
        // Every already-granted domain is still accessible: mapped ones
        // directly, the evicted one via a guard fault + remap.
        for i in 1..=14u32 {
            assert!(
                s.access(u64::from(i) * GB1, AccessKind::Write).allowed(),
                "domain {i} must remain logically accessible"
            );
        }
    }

    #[test]
    fn per_thread_isolation_is_preserved() {
        let mut s = scheme_with(2);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.context_switch(ThreadId::new(1));
        assert!(!s.access(GB1, AccessKind::Read).allowed());
        s.context_switch(ThreadId::MAIN);
        assert!(s.access(GB1, AccessKind::Read).allowed());
    }
}
