//! ERIM-style intra-process isolation: call-gate sessions over raw MPK
//! (Vahldiek-Oberwagner et al., USENIX Security'19).
//!
//! No new hardware: stock MPK keys and the per-thread PKRU, made safe by
//! a *trusted monitor* reached only through call gates. Every permission
//! switch runs the gate trampoline (WRPKRU plus the entry/exit sequence
//! ERIM's binary inspection proves unique), and the monitor keeps the
//! authoritative per-thread session table it restores the PKRU from on
//! every context switch. Domains beyond the 15 usable keys are
//! multiplexed in software: the monitor remaps a victim's key with
//! `pkey_mprotect` (per-PTE rewrite + ranged shootdown), which is this
//! scheme's key-pressure cliff.
//!
//! Gate exits that revoke write permission emit the
//! [`TraceEvent::Shootdown`] settle event the analyzer's `GatePass`
//! treats as closing the permission-switch gate.

use pmo_simarch::{vpn, MemKind, SimConfig, TlbStats};
use pmo_trace::{AccessKind, Perm, PmoId, ThreadId, TraceEvent, Va};

use std::collections::BTreeMap;

use crate::breakdown::CostBreakdown;
use crate::fault::ProtectionFault;
use crate::keys::KeyAllocator;
use crate::mmu::{granule_covering, MmuBase, PkPayload, Region};
use crate::pkru::{Pkru, NUM_KEYS};
use crate::scheme::{
    AccessResult, FastHint, ProtectionScheme, ProtocolBug, SchemeKind, SchemeStats,
};

/// ERIM: call-gate sessions over raw MPK.
#[derive(Debug)]
pub struct Erim {
    mmu: MmuBase<PkPayload>,
    keys: KeyAllocator,
    /// The monitor's authoritative session table: the permission each
    /// thread's last gate entry established per domain. Canonical (no
    /// [`Perm::None`] rows) so the refinement abstraction can compare it
    /// against the spec's permission map directly.
    sessions: BTreeMap<(ThreadId, PmoId), Perm>,
    /// The materialized per-core PKRU the hardware check reads. The gate
    /// trampoline and the monitor's switch-time restore keep it coherent
    /// with `sessions` — the obligation `pkru-desync` sweeps verify.
    pkru: Pkru,
    /// Protocol events (gate-exit settles, eviction shootdowns) awaiting
    /// `drain_events`.
    pending: Vec<TraceEvent>,
    bug: Option<ProtocolBug>,
    cfg: SimConfig,
    current: ThreadId,
    stats: SchemeStats,
    breakdown: CostBreakdown,
}

impl Erim {
    /// Creates the scheme.
    ///
    /// # Panics
    ///
    /// Panics if the config asks for more keys than the 32-bit PKRU
    /// architecturally encodes.
    #[must_use]
    pub fn new(config: &SimConfig) -> Self {
        Self::with_bug(config, None)
    }

    /// Creates the scheme with an optional planted [`ProtocolBug`]
    /// (model-checker self-validation only).
    ///
    /// # Panics
    ///
    /// Panics if the config asks for more keys than the 32-bit PKRU
    /// architecturally encodes.
    #[must_use]
    pub fn with_bug(config: &SimConfig, bug: Option<ProtocolBug>) -> Self {
        assert!(config.pkeys as usize <= NUM_KEYS, "PKRU encodes at most {NUM_KEYS} keys");
        Erim {
            mmu: MmuBase::new(config),
            keys: KeyAllocator::new(config.pkeys),
            sessions: BTreeMap::new(),
            pkru: Pkru::ALL_DENIED,
            pending: Vec::new(),
            bug,
            cfg: config.clone(),
            current: ThreadId::MAIN,
            stats: SchemeStats::default(),
            breakdown: CostBreakdown::default(),
        }
    }

    /// The materialized PKRU register (model-checker inspection).
    #[must_use]
    pub fn pkru(&self) -> Pkru {
        self.pkru
    }

    /// The key allocator (model-checker inspection).
    #[must_use]
    pub fn key_allocator(&self) -> &KeyAllocator {
        &self.keys
    }

    /// The monitor's session table (model-checker inspection).
    #[must_use]
    pub fn sessions(&self) -> &BTreeMap<(ThreadId, PmoId), Perm> {
        &self.sessions
    }

    /// The MMU (TLB hierarchy + regions; model-checker inspection).
    #[must_use]
    pub fn mmu(&self) -> &MmuBase<PkPayload> {
        &self.mmu
    }

    /// The session permission `thread` holds for `pmo`.
    fn session_perm(&self, thread: ThreadId, pmo: PmoId) -> Perm {
        self.sessions.get(&(thread, pmo)).copied().unwrap_or(Perm::None)
    }

    /// Reconstructs the PKRU for the current thread from the key
    /// assignments and the monitor's session table (the switch-time
    /// restore the monitor performs before resuming untrusted code).
    fn rebuild_pkru(&self) -> Pkru {
        let mut pkru = Pkru::ALL_DENIED;
        for (key, pmo) in self.keys.assignments() {
            pkru = pkru.with_perm(key, self.session_perm(self.current, pmo));
        }
        pkru
    }

    /// Resolves the protection key backing `pmo` on a TLB miss. Unlike
    /// MPK virtualization there is no hardware DTT: a domain without a
    /// key goes through the monitor's software remap (`pkey_mprotect` of
    /// the whole pool plus a ranged shootdown of the victim).
    fn resolve_key(&mut self, region: &Region, cycles: &mut u64) -> u8 {
        if let Some(key) = self.keys.key_of(region.pmo) {
            self.keys.touch(key);
            return key;
        }
        let key = match self.keys.alloc(region.pmo) {
            Some(key) => key,
            None => {
                let (key, victim) = self.keys.evict_and_assign(region.pmo);
                self.stats.key_evictions += 1;
                if let Some(victim_region) = self.mmu.region_of(victim) {
                    let removed = self.mmu.shootdown(&victim_region);
                    self.stats.tlb_entries_invalidated += removed;
                    let refills = removed * self.cfg.tlb_miss_penalty;
                    *cycles += refills;
                    self.breakdown.tlb_invalidation += refills;
                }
                self.pending.push(TraceEvent::Shootdown { pmo: victim });
                let shoot = self.cfg.tlb_invalidation_cycles * u64::from(self.cfg.threads);
                *cycles += shoot;
                self.stats.shootdowns += 1;
                self.breakdown.tlb_invalidation += shoot;
                self.pkru = self.pkru.with_perm(key, Perm::None);
                key
            }
        };
        // The monitor retags the pool's PTEs with the (re)assigned key.
        let remap = self.cfg.syscall_cycles + self.cfg.pte_write_cycles * region.pool_pages();
        *cycles += remap;
        self.breakdown.software += remap;
        self.pkru = self.pkru.with_perm(key, self.session_perm(self.current, region.pmo));
        key
    }
}

impl ProtectionScheme for Erim {
    fn name(&self) -> &'static str {
        "ERIM call gates over raw MPK"
    }

    fn kind(&self) -> SchemeKind {
        SchemeKind::Erim
    }

    fn attach(&mut self, pmo: PmoId, base: Va, size: u64, nvm: bool) -> u64 {
        let granule = granule_covering(base, size);
        let removed = self.mmu.attach_region(Region { pmo, base, granule, pool_size: size, nvm });
        self.stats.tlb_entries_invalidated += removed;
        // A fresh attach starts every thread's session at no access.
        self.sessions.retain(|&(_, p), _| p != pmo);
        let cycles = self.cfg.attach_kernel_cycles + self.cfg.syscall_cycles;
        self.breakdown.software += cycles;
        cycles
    }

    fn detach(&mut self, pmo: PmoId) -> u64 {
        if let Some((_, removed)) = self.mmu.detach_region(pmo) {
            self.stats.tlb_entries_invalidated += removed;
        }
        self.sessions.retain(|&(_, p), _| p != pmo);
        if let Some(key) = self.keys.free(pmo) {
            self.pkru = self.pkru.with_perm(key, Perm::None);
        }
        let cycles = self.cfg.attach_kernel_cycles + self.cfg.syscall_cycles;
        self.breakdown.software += cycles;
        cycles
    }

    fn set_perm(&mut self, pmo: PmoId, perm: Perm) -> u64 {
        self.stats.set_perms += 1;
        // The call gate: WRPKRU plus the trampoline around it.
        let cycles = self.cfg.wrpkru_cycles + self.cfg.erim_gate_cycles;
        self.breakdown.permission_change += self.cfg.wrpkru_cycles;
        self.breakdown.software += self.cfg.erim_gate_cycles;
        if self.mmu.region_of(pmo).is_none() {
            // SETPERM on a detached domain is a no-op: the monitor has no
            // session row to update, and recording one would outlive a
            // later re-attach.
            return cycles;
        }
        let prev = self.session_perm(self.current, pmo);
        if perm == Perm::None {
            self.sessions.remove(&(self.current, pmo));
        } else {
            self.sessions.insert((self.current, pmo), perm);
        }
        if let Some(key) = self.keys.key_of(pmo) {
            self.keys.touch(key);
            let held = self.pkru.perm(key);
            let downgrade = (held.allows_read() && !perm.allows_read())
                || (held.allows_write() && !perm.allows_write());
            if self.bug == Some(ProtocolBug::SkipGateExitKeyRestore) && downgrade {
                // Planted bug: the gate-exit trampoline forgets the
                // WRPKRU restore when the session drops privilege — the
                // thread keeps the monitor-only PKRU value.
            } else {
                self.pkru = self.pkru.with_perm(key, perm);
            }
        }
        if prev.allows_write() && !perm.allows_write() {
            // Write-revoking gate exit: the settle event the analyzer's
            // permission-switch gate (`GatePass`) waits for.
            self.pending.push(TraceEvent::Shootdown { pmo });
        }
        cycles
    }

    fn access(&mut self, va: Va, kind: AccessKind) -> AccessResult {
        let (payload, _, mut cycles) = self.mmu.tlb.lookup(vpn(va));
        let payload = match payload {
            Some(p) => p,
            None => {
                let region = self.mmu.region_at(va);
                match self.mmu.walk_or_map(va, |_| 0) {
                    Ok((pte, _)) => {
                        let pkey = match region {
                            Some(r) => self.resolve_key(&r, &mut cycles),
                            None => 0,
                        };
                        let p = PkPayload { pkey, page_perm: pte.perm, mem: pte.mem };
                        self.mmu.tlb.fill(vpn(va), p);
                        p
                    }
                    Err(fault) => {
                        self.stats.faults += 1;
                        return AccessResult { cycles, mem: MemKind::Dram, fault: Some(fault) };
                    }
                }
            }
        };
        // The hardware check reads the PKRU, exactly as under stock MPK.
        let domain_perm =
            if payload.pkey == 0 { Perm::ReadWrite } else { self.pkru.perm(payload.pkey) };
        let effective = domain_perm.meet(payload.page_perm);
        let fault = if effective.allows(kind) {
            None
        } else {
            self.stats.faults += 1;
            Some(ProtectionFault::DomainDenied {
                thread: self.current,
                pmo: self.keys.owner(payload.pkey).unwrap_or(PmoId::NULL),
                attempted: kind,
                held: domain_perm,
                va,
            })
        };
        AccessResult { cycles, mem: payload.mem, fault }
    }

    fn context_switch(&mut self, to: ThreadId) -> u64 {
        // The monitor restores the incoming thread's PKRU from its
        // session table (gate-mediated WRPKRU).
        let cycles = self.cfg.wrpkru_cycles + self.cfg.erim_gate_cycles;
        self.breakdown.software += cycles;
        self.current = to;
        self.pkru = self.rebuild_pkru();
        self.stats.context_switches += 1;
        cycles
    }

    fn current_thread(&self) -> ThreadId {
        self.current
    }

    fn breakdown(&self) -> CostBreakdown {
        self.breakdown
    }

    fn stats(&self) -> SchemeStats {
        self.stats
    }

    fn tlb_stats(&self) -> TlbStats {
        *self.mmu.tlb.stats()
    }

    fn drain_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.pending)
    }

    fn fast_hint(&self, va: Va) -> Option<FastHint> {
        let payload = self.mmu.tlb.probe_l1(vpn(va))?;
        let domain_perm =
            if payload.pkey == 0 { Perm::ReadWrite } else { self.pkru.perm(payload.pkey) };
        Some(FastHint {
            cycles: self.mmu.tlb.l1_latency(),
            mem: payload.mem,
            effective: domain_perm.meet(payload.page_perm),
            access_latency: 0,
            thread: self.current,
            held: domain_perm,
            fault_pmo: Some(self.keys.owner(payload.pkey).unwrap_or(PmoId::NULL)),
        })
    }

    fn note_fast_hits(&mut self, _hint: &FastHint, hits: u64, denied: u64) {
        self.mmu.tlb.note_l1_hits(hits);
        self.stats.faults += denied;
    }

    fn fast_revalidate(&mut self, va: Va) -> bool {
        self.mmu.tlb.touch_l1(vpn(va)).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB1: u64 = 1 << 30;

    fn scheme_with(n: u32) -> Erim {
        let mut s = Erim::new(&SimConfig::isca2020());
        for i in 1..=n {
            s.attach(PmoId::new(i), u64::from(i) * GB1, 8 << 20, true);
        }
        s
    }

    #[test]
    fn enforces_domain_permissions() {
        let mut s = scheme_with(2);
        assert!(!s.access(GB1, AccessKind::Read).allowed());
        s.set_perm(PmoId::new(1), Perm::ReadOnly);
        assert!(s.access(GB1, AccessKind::Read).allowed());
        assert!(!s.access(GB1, AccessKind::Write).allowed());
        assert!(!s.access(2 * GB1, AccessKind::Read).allowed(), "other domain untouched");
    }

    #[test]
    fn gate_adds_trampoline_cost_to_setperm() {
        let mut s = scheme_with(1);
        let cfg = SimConfig::isca2020();
        let cycles = s.set_perm(PmoId::new(1), Perm::ReadWrite);
        assert_eq!(cycles, cfg.wrpkru_cycles + cfg.erim_gate_cycles);
    }

    #[test]
    fn key_pressure_goes_through_software_remap() {
        let mut s = scheme_with(16);
        for i in 1..=16u64 {
            s.set_perm(PmoId::new(i as u32), Perm::ReadWrite);
            assert!(s.access(i * GB1 + i * 4096, AccessKind::Write).allowed());
        }
        assert_eq!(s.stats().key_evictions, 1, "16th domain steals a key");
        assert_eq!(s.stats().shootdowns, 1);
        // The monitor's remap is a syscall plus a per-PTE rewrite of the
        // 8MB pool — the cliff stock hardware virtualization avoids.
        assert!(s.breakdown().software >= SimConfig::isca2020().syscall_cycles);
    }

    #[test]
    fn victim_remains_logically_protected_and_reaccessible() {
        let mut s = scheme_with(16);
        for i in 1..=16u32 {
            s.set_perm(PmoId::new(i), Perm::ReadWrite);
            assert!(s.access(u64::from(i) * GB1, AccessKind::Write).allowed());
        }
        for i in 1..=16u32 {
            assert!(s.access(u64::from(i) * GB1 + 64, AccessKind::Write).allowed());
        }
        s.set_perm(PmoId::new(5), Perm::None);
        assert!(!s.access(5 * GB1, AccessKind::Write).allowed());
    }

    #[test]
    fn context_switch_restores_per_thread_sessions() {
        let mut s = scheme_with(2);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        assert!(s.access(GB1, AccessKind::Write).allowed());
        s.context_switch(ThreadId::new(7));
        assert!(!s.access(GB1, AccessKind::Write).allowed(), "new thread has no session");
        s.set_perm(PmoId::new(1), Perm::ReadOnly);
        assert!(s.access(GB1, AccessKind::Read).allowed());
        s.context_switch(ThreadId::MAIN);
        assert!(s.access(GB1, AccessKind::Write).allowed(), "main thread's session intact");
        assert_eq!(s.stats().context_switches, 2);
    }

    #[test]
    fn write_revoking_gate_exit_emits_settle_event() {
        let mut s = scheme_with(1);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        assert!(s.drain_events().is_empty(), "grants do not settle");
        s.set_perm(PmoId::new(1), Perm::ReadOnly);
        let events = s.drain_events();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], TraceEvent::Shootdown { pmo } if pmo == PmoId::new(1)));
    }

    #[test]
    fn setperm_on_detached_domain_is_a_noop() {
        let mut s = scheme_with(1);
        s.detach(PmoId::new(1));
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        s.attach(PmoId::new(1), GB1, 8 << 20, true);
        assert!(
            !s.access(GB1, AccessKind::Read).allowed(),
            "re-attached domain must start inaccessible"
        );
    }

    #[test]
    fn planted_gate_exit_bug_leaves_stale_pkru_grant() {
        let mut s =
            Erim::with_bug(&SimConfig::isca2020(), Some(ProtocolBug::SkipGateExitKeyRestore));
        s.attach(PmoId::new(1), GB1, 8 << 20, true);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        assert!(s.access(GB1, AccessKind::Write).allowed());
        s.set_perm(PmoId::new(1), Perm::None);
        assert!(
            s.access(GB1, AccessKind::Write).allowed(),
            "bug: the revoked grant must remain live in the stale PKRU"
        );
        let clean = {
            let mut c = scheme_with(1);
            c.set_perm(PmoId::new(1), Perm::ReadWrite);
            c.access(GB1, AccessKind::Write);
            c.set_perm(PmoId::new(1), Perm::None);
            c.access(GB1, AccessKind::Write).allowed()
        };
        assert!(!clean, "without the bug the revoke takes effect");
    }
}
