//! Protection-key allocation and victim selection.
//!
//! Models both the kernel's `pkey_alloc`/`pkey_free` bitmap and the
//! hardware "Free Keys" structure of the MPK-virtualization design, plus
//! pseudo-LRU victim selection among mapped domains for key reassignment.

use pmo_simarch::{Policy, SetState};
use pmo_trace::PmoId;

/// Allocator over protection keys `1..count` (key 0 is the reserved NULL
/// key) with PLRU victim selection for key reassignment.
#[derive(Clone, Debug)]
pub struct KeyAllocator {
    /// `owner[k]`: the domain currently holding key `k` (index 0 unused).
    owner: Vec<Option<PmoId>>,
    /// Keys reserved by the scheme (never handed to domains), e.g.
    /// libmpk's guard key.
    reserved: Vec<u8>,
    repl: SetState,
}

impl KeyAllocator {
    /// Creates an allocator over `count` architected keys (16 for MPK).
    ///
    /// # Panics
    ///
    /// Panics if `count < 2` or `count > 64`.
    #[must_use]
    pub fn new(count: u32) -> Self {
        assert!((2..=64).contains(&count), "key count must be in 2..=64");
        KeyAllocator {
            owner: vec![None; count as usize],
            reserved: Vec::new(),
            repl: SetState::new(Policy::TreePlru, count as u8),
        }
    }

    /// Reserves `key` so it is never allocated to a domain.
    ///
    /// # Panics
    ///
    /// Panics if the key is out of range, already reserved, or in use.
    pub fn reserve(&mut self, key: u8) {
        assert!((key as usize) < self.owner.len(), "key out of range");
        assert!(key != 0, "key 0 is implicitly reserved as NULL");
        assert!(self.owner[key as usize].is_none(), "key in use");
        assert!(!self.reserved.contains(&key), "key already reserved");
        self.reserved.push(key);
    }

    /// Number of keys usable by domains.
    #[must_use]
    pub fn usable(&self) -> u32 {
        (self.owner.len() - 1 - self.reserved.len()) as u32
    }

    /// Number of keys currently assigned to domains.
    #[must_use]
    pub fn in_use(&self) -> u32 {
        self.owner.iter().flatten().count() as u32
    }

    /// The domain holding `key`, if any.
    #[must_use]
    pub fn owner(&self, key: u8) -> Option<PmoId> {
        self.owner.get(key as usize).copied().flatten()
    }

    /// The key held by `domain`, if any (linear scan: the structure is at
    /// most 16 entries, a CAM in hardware).
    #[must_use]
    pub fn key_of(&self, domain: PmoId) -> Option<u8> {
        self.owner.iter().position(|o| *o == Some(domain)).map(|k| k as u8)
    }

    /// Allocates a free key to `domain` (`pkey_alloc` / free-keys check).
    /// Returns `None` if every usable key is taken.
    pub fn alloc(&mut self, domain: PmoId) -> Option<u8> {
        debug_assert!(self.key_of(domain).is_none(), "domain already holds a key");
        let key = (1..self.owner.len())
            .find(|&k| self.owner[k].is_none() && !self.reserved.contains(&(k as u8)))?;
        self.owner[key] = Some(domain);
        self.repl.touch(key as u8);
        Some(key as u8)
    }

    /// Frees the key held by `domain` (`pkey_free`); returns it.
    pub fn free(&mut self, domain: PmoId) -> Option<u8> {
        let key = self.key_of(domain)?;
        self.owner[key as usize] = None;
        Some(key)
    }

    /// Records a use of `key` for PLRU victim selection.
    pub fn touch(&mut self, key: u8) {
        self.repl.touch(key);
    }

    /// Iterates over every `key → owning domain` assignment
    /// (model-checker inspection).
    pub fn assignments(&self) -> impl Iterator<Item = (u8, PmoId)> + '_ {
        self.owner.iter().enumerate().filter_map(|(k, o)| o.map(|d| (k as u8, d)))
    }

    /// Picks a victim key for reassignment (PLRU among in-use, non-reserved
    /// keys) and hands it to `new_domain`. Returns `(key, evicted_domain)`.
    ///
    /// # Panics
    ///
    /// Panics if no key is in use (callers must try [`KeyAllocator::alloc`]
    /// first).
    pub fn evict_and_assign(&mut self, new_domain: PmoId) -> (u8, PmoId) {
        assert!(self.in_use() > 0, "no key to evict");
        // Walk PLRU victims until we land on an evictable key. The walk
        // must be bounded: with a non-power-of-two key count the tree can
        // park on a phantom leaf that aliases to key 0, and touching key 0
        // does not move it, so an unbounded rotation livelocks.
        for _ in 0..2 * self.owner.len() {
            let candidate = self.repl.victim();
            let usable = candidate != 0
                && !self.reserved.contains(&candidate)
                && self.owner[candidate as usize].is_some();
            if usable {
                return self.reassign(candidate, new_domain);
            }
            // Rotate the PLRU away from the unusable candidate.
            self.repl.touch(candidate);
        }
        // PLRU never surfaced an evictable key: take the lowest in-use one.
        let candidate = (1..self.owner.len())
            .find(|&k| self.owner[k].is_some() && !self.reserved.contains(&(k as u8)))
            .expect("in_use > 0 guarantees an evictable key") as u8;
        self.reassign(candidate, new_domain)
    }

    fn reassign(&mut self, key: u8, new_domain: PmoId) -> (u8, PmoId) {
        let victim = self.owner[key as usize].take().expect("key is in use");
        self.owner[key as usize] = Some(new_domain);
        self.repl.touch(key);
        (key, victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: u32) -> PmoId {
        PmoId::new(n)
    }

    #[test]
    fn alloc_up_to_fifteen() {
        let mut ka = KeyAllocator::new(16);
        assert_eq!(ka.usable(), 15);
        let mut keys = Vec::new();
        for i in 1..=15 {
            let k = ka.alloc(d(i)).expect("key available");
            assert_ne!(k, 0, "key 0 is never allocated");
            keys.push(k);
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 15, "keys are distinct");
        assert_eq!(ka.alloc(d(16)), None, "sixteenth domain gets no key");
        assert_eq!(ka.in_use(), 15);
    }

    #[test]
    fn free_then_realloc() {
        let mut ka = KeyAllocator::new(16);
        let k = ka.alloc(d(1)).unwrap();
        assert_eq!(ka.key_of(d(1)), Some(k));
        assert_eq!(ka.owner(k), Some(d(1)));
        assert_eq!(ka.free(d(1)), Some(k));
        assert_eq!(ka.key_of(d(1)), None);
        assert_eq!(ka.alloc(d(2)), Some(k), "lowest free key reused");
        assert_eq!(ka.free(d(1)), None, "double free is None");
    }

    #[test]
    fn eviction_reassigns() {
        let mut ka = KeyAllocator::new(16);
        for i in 1..=15 {
            ka.alloc(d(i)).unwrap();
        }
        let (key, victim) = ka.evict_and_assign(d(100));
        assert!(key >= 1);
        assert!(victim.raw() <= 15);
        assert_eq!(ka.owner(key), Some(d(100)));
        assert_eq!(ka.key_of(victim), None);
        assert_eq!(ka.in_use(), 15);
    }

    #[test]
    fn eviction_avoids_hot_keys() {
        // Tree-PLRU is approximate, so assert the PLRU contract rather
        // than exact LRU order: a repeatedly-touched key is never the
        // victim, and repeated evictions cycle through many domains.
        let mut ka = KeyAllocator::new(16);
        for i in 1..=15 {
            ka.alloc(d(i)).unwrap();
        }
        let hot = ka.key_of(d(1)).unwrap();
        let mut victims = std::collections::BTreeSet::new();
        for round in 0..32u32 {
            ka.touch(hot);
            let (key, victim) = ka.evict_and_assign(d(100 + round));
            assert_ne!(victim, d(1), "hot key must not be evicted");
            assert_ne!(key, hot);
            victims.insert(victim);
        }
        assert!(victims.len() >= 8, "evictions rotate over many domains: {victims:?}");
    }

    #[test]
    fn reserved_keys_never_allocated() {
        let mut ka = KeyAllocator::new(16);
        ka.reserve(15);
        assert_eq!(ka.usable(), 14);
        for i in 1..=14 {
            let k = ka.alloc(d(i)).unwrap();
            assert_ne!(k, 15);
        }
        assert_eq!(ka.alloc(d(99)), None);
        // Eviction also avoids the reserved key.
        let (key, _) = ka.evict_and_assign(d(100));
        assert_ne!(key, 15);
    }

    #[test]
    fn tiny_allocator_sustains_eviction_pressure() {
        // Regression: with 3 architected keys (2 usable) the tree-PLRU
        // parks on a phantom leaf aliasing to key 0 and an unbounded
        // victim walk livelocks. 3 domains cycling over 2 keys must keep
        // making progress and preserve the owner/key bijection.
        let mut ka = KeyAllocator::new(3);
        assert_eq!(ka.usable(), 2);
        ka.alloc(d(1)).unwrap();
        ka.alloc(d(2)).unwrap();
        for round in 0..64u32 {
            let incoming = d(1 + round % 3);
            if ka.key_of(incoming).is_some() {
                continue;
            }
            let (key, victim) = ka.evict_and_assign(incoming);
            assert!(key == 1 || key == 2, "only usable keys are reassigned");
            assert_ne!(victim, incoming);
            assert_eq!(ka.owner(key), Some(incoming));
            assert_eq!(ka.key_of(victim), None);
            assert_eq!(ka.in_use(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "no key to evict")]
    fn evict_empty_panics() {
        let mut ka = KeyAllocator::new(16);
        let _ = ka.evict_and_assign(d(1));
    }
}
