//! # pmo-protect — the paper's contribution
//!
//! Hardware-based domain virtualization for intra-process isolation of
//! Persistent Memory Objects (ISCA 2020), implemented as a set of
//! functional + timed protection schemes over the `pmo-simarch` substrate:
//!
//! - **Design 1, [`scheme::MpkVirt`]** — hardware MPK virtualization: a
//!   radix [`DomainTranslationTable`] walked by hardware and cached by a
//!   per-core [`Dttlb`] lets unlimited domains time-share the 15 usable
//!   protection keys, with ranged TLB shootdowns on key reassignment.
//! - **Design 2, [`scheme::DomainVirt`]** — hardware domain
//!   virtualization: TLB entries carry a 10-bit domain ID filled from the
//!   [`DomainRangeTable`]; per-thread permissions live in the
//!   [`PermissionTable`], cached by a per-core [`Ptlb`]. No keys, no
//!   shootdowns.
//! - Baselines: [`scheme::Unprotected`], [`scheme::Lowerbound`],
//!   [`scheme::DefaultMpk`], and [`scheme::LibMpk`] (the software
//!   virtualization this paper beats by 11-52x).
//!
//! Every scheme implements [`scheme::ProtectionScheme`]: it *functionally*
//! enforces the paper's three-legality rule (page permission ∧ attached ∧
//! per-thread domain permission, §IV.A) and *charges* the Table II cycle
//! costs, attributed into [`CostBreakdown`] buckets for Table VII.
//!
//! # Example
//!
//! ```
//! use pmo_protect::scheme::{ProtectionScheme, SchemeKind};
//! use pmo_simarch::SimConfig;
//! use pmo_trace::{AccessKind, Perm, PmoId};
//!
//! let config = SimConfig::isca2020();
//! let mut scheme = SchemeKind::DomainVirt.build(&config);
//! let base = 0x40_0000_0000;
//! scheme.attach(PmoId::new(1), base, 8 << 20, true);
//!
//! // Inaccessible by default; SETPERM grants, the MMU checks.
//! assert!(!scheme.access(base, AccessKind::Read).allowed());
//! scheme.set_perm(PmoId::new(1), Perm::ReadWrite);
//! assert!(scheme.access(base, AccessKind::Write).allowed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod breakdown;
mod drt;
mod dtt;
mod dttlb;
mod fault;
mod keys;
mod mmu;
mod pkru;
mod pt;
mod ptlb;
mod radix;
pub mod scheme;

pub use area::{domain_virt_area, mpk_virt_area, AreaReport, DTTLB_ENTRY_BITS, PTLB_ENTRY_BITS};
pub use breakdown::{BreakdownPercent, CostBreakdown};
pub use drt::DomainRangeTable;
pub use dtt::{DomainTranslationTable, DttEntry};
pub use dttlb::{Dttlb, DttlbEntry};
pub use fault::ProtectionFault;
pub use keys::KeyAllocator;
pub use mmu::{granule_covering, DomPayload, MmuBase, PkPayload, PlainPayload, Region};
pub use pkru::{Pkru, NUM_KEYS};
pub use pt::PermissionTable;
pub use ptlb::{Ptlb, PtlbEntry};
pub use radix::{RangeHit, RangeRadix};
pub use scheme::{
    AccessResult, AnyScheme, FastHint, ProtectionScheme, ProtocolBug, SchemeKind, SchemeStats,
};

// Re-export the identifiers shared through `pmo-trace` so downstream users
// need only this crate for the protection API.
pub use pmo_trace::{AccessKind, Perm, PmoId, ThreadId, Va};
