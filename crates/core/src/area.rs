//! Hardware area and memory overhead model (paper Table VIII).

use pmo_simarch::SimConfig;
use std::fmt;

/// Bits per DTTLB entry: 36-bit VA-range tag + 32-bit PMO/domain ID +
/// valid + dirty + 4-bit protection key + 2-bit region-size field
/// (the paper rounds this to 76 bits).
pub const DTTLB_ENTRY_BITS: u32 = 36 + 32 + 1 + 1 + 4 + 2;

/// Bits per PTLB entry: 10-bit domain-ID tag + 2-bit permission
/// (the paper's "16 entries x 12 bits"; the dirty bit rides along as in
/// the paper's own rounding).
pub const PTLB_ENTRY_BITS: u32 = 10 + 2;

/// Area/memory overheads of one design.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AreaReport {
    /// Dedicated per-core registers added.
    pub registers_per_core: u32,
    /// Dedicated per-core buffer size in bytes (DTTLB or PTLB).
    pub buffer_bytes: u64,
    /// Extra bits added to each TLB entry (0 for design 1).
    pub tlb_extra_bits: u32,
    /// Software (per-process, pageable) memory in bytes.
    pub software_bytes: u64,
}

/// Computes design 1's (hardware MPK virtualization) area report.
///
/// The DTT holds, per domain, a key field and a 2-bit permission per
/// thread; with the paper's sizing assumptions (1024 domains, up to 1024
/// threads) this is 256KB per process.
#[must_use]
pub fn mpk_virt_area(config: &SimConfig, domains: u64, threads: u64) -> AreaReport {
    let dtt_bits = domains * (2 * threads + 64); // perms + key/id/valid overhead
    AreaReport {
        registers_per_core: 1, // DTT base pointer
        buffer_bytes: u64::from(config.dttlb_entries) * u64::from(DTTLB_ENTRY_BITS) / 8,
        tlb_extra_bits: 0, // "No other changes": TLB keeps its 4-bit key
        software_bytes: dtt_bits / 8,
    }
}

/// Computes design 2's (hardware domain virtualization) area report.
///
/// The DRT needs ~16 bytes per domain (16KB for 1024 domains); the PT
/// stores a 2-bit permission per (domain, thread) pair (256KB for
/// 1024 x 1024).
#[must_use]
pub fn domain_virt_area(config: &SimConfig, domains: u64, threads: u64) -> AreaReport {
    let drt_bytes = domains * 16;
    let pt_bits = domains * 2 * threads;
    AreaReport {
        registers_per_core: 2, // DRT and PT base pointers
        buffer_bytes: u64::from(config.ptlb_entries) * u64::from(PTLB_ENTRY_BITS) / 8,
        // The 10-bit domain ID replaces the 4-bit protection key: +6 bits.
        tlb_extra_bits: config.domain_id_bits - 4,
        software_bytes: drt_bytes + pt_bits / 8,
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} register(s)/core, {}B buffer/core, +{} bits/TLB entry, {}KB software tables",
            self.registers_per_core,
            self.buffer_bytes,
            self.tlb_extra_bits,
            self.software_bytes / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_viii() {
        let config = SimConfig::isca2020();
        let d1 = mpk_virt_area(&config, 1024, 1024);
        // "16 entries x 76 bits = 152 Bytes buffer per core."
        assert_eq!(DTTLB_ENTRY_BITS, 76);
        assert_eq!(d1.buffer_bytes, 152);
        assert_eq!(d1.registers_per_core, 1);
        assert_eq!(d1.tlb_extra_bits, 0);
        // "256KB memory per process per DTT."
        assert_eq!(d1.software_bytes, 1024 * (2 * 1024 + 64) / 8);
        assert!((250_000..=280_000).contains(&d1.software_bytes));

        let d2 = domain_virt_area(&config, 1024, 1024);
        // "16 entries x 12 bits = 24 Bytes buffer per core."
        assert_eq!(PTLB_ENTRY_BITS, 12);
        assert_eq!(d2.buffer_bytes, 24);
        assert_eq!(d2.registers_per_core, 2);
        // "Extend 6 bits to each TLB entry."
        assert_eq!(d2.tlb_extra_bits, 6);
        // "256KB + 16KB memory per process for DRT and PT."
        assert_eq!(d2.software_bytes, 1024 * 16 + 1024 * 2 * 1024 / 8);
        assert!((270_000..=290_000).contains(&d2.software_bytes));
    }

    #[test]
    fn buffers_are_negligible() {
        // "Only DTTLB and PTLB require dedicated hardware tables and their
        // sizes are negligible (both less than 0.2KB)."
        let config = SimConfig::isca2020();
        assert!(mpk_virt_area(&config, 1024, 1024).buffer_bytes < 205);
        assert!(domain_virt_area(&config, 1024, 1024).buffer_bytes < 205);
    }

    #[test]
    fn display_formats() {
        let config = SimConfig::isca2020();
        let text = format!("{}", domain_virt_area(&config, 1024, 1024));
        assert!(text.contains("24B buffer"));
    }
}
