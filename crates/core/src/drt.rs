//! The Domain Range Table (DRT) — design 2's VA → domain-ID mapping.
//!
//! Per §IV.E the DRT "is organized similarly to DTT with a hierarchical
//! table, but without keeping domain permission information": it only
//! resolves which domain an address belongs to; permissions live in the
//! Permission Table. Walked in parallel with the page table on a TLB miss
//! (and shallower than it), so it adds no latency to that path.

use std::collections::BTreeMap;

use pmo_trace::{PmoId, Va};

use crate::radix::RangeRadix;

/// The process-wide DRT.
#[derive(Debug, Default)]
pub struct DomainRangeTable {
    tree: RangeRadix<PmoId>,
    regions: BTreeMap<PmoId, (Va, u64)>,
}

impl DomainRangeTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a PMO's region on attach.
    ///
    /// # Panics
    ///
    /// Panics on overlapping or misaligned regions.
    pub fn attach(&mut self, pmo: PmoId, base: Va, granule: u64) {
        self.tree.insert(base, granule, pmo);
        self.regions.insert(pmo, (base, granule));
    }

    /// Removes a PMO's region on detach; returns whether it existed.
    pub fn detach(&mut self, pmo: PmoId) -> bool {
        match self.regions.remove(&pmo) {
            Some((base, _)) => self.tree.remove(base).is_some(),
            None => false,
        }
    }

    /// Hardware walk: the domain covering `va`, or [`PmoId::NULL`] if the
    /// address "does not belong to any domain, so a NULL domain is used".
    #[must_use]
    pub fn domain_of(&self, va: Va) -> PmoId {
        self.tree.lookup(va).map_or(PmoId::NULL, |hit| *hit.value)
    }

    /// The walk depth for `va` (levels descended), for timing studies.
    #[must_use]
    pub fn walk_depth(&self, va: Va) -> Option<u32> {
        self.tree.lookup(va).map(|hit| hit.depth)
    }

    /// The VA region of a domain.
    #[must_use]
    pub fn region_of(&self, pmo: PmoId) -> Option<(Va, u64)> {
        self.regions.get(&pmo).copied()
    }

    /// Number of attached domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether no domains are attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB1: u64 = 1 << 30;

    #[test]
    fn resolves_domains_and_null() {
        let mut drt = DomainRangeTable::new();
        drt.attach(PmoId::new(1), GB1, GB1);
        drt.attach(PmoId::new(2), 2 * GB1, GB1);
        assert_eq!(drt.domain_of(GB1 + 7), PmoId::new(1));
        assert_eq!(drt.domain_of(2 * GB1), PmoId::new(2));
        assert_eq!(drt.domain_of(0x100), PmoId::NULL, "outside all domains");
        assert_eq!(drt.len(), 2);
        assert_eq!(drt.region_of(PmoId::new(2)), Some((2 * GB1, GB1)));
    }

    #[test]
    fn detach_removes() {
        let mut drt = DomainRangeTable::new();
        drt.attach(PmoId::new(1), GB1, GB1);
        assert!(drt.detach(PmoId::new(1)));
        assert!(!drt.detach(PmoId::new(1)));
        assert_eq!(drt.domain_of(GB1), PmoId::NULL);
        assert!(drt.is_empty());
    }

    #[test]
    fn shallow_walks_for_large_regions() {
        let mut drt = DomainRangeTable::new();
        drt.attach(PmoId::new(1), GB1, GB1);
        assert_eq!(drt.walk_depth(GB1), Some(2), "1GB entries resolve at depth 2");
        assert_eq!(drt.walk_depth(0), None);
    }
}
