//! The PKRU register (Intel MPK's per-logical-core permission register).
//!
//! 32 bits: for each of the 16 protection keys, bit `2k` is AD (access
//! disable) and bit `2k+1` is WD (write disable). `WRPKRU` replaces the
//! whole register; `RDPKRU` reads it. The paper's SETPERM differs in that
//! it updates the permission of a *single domain*, which the schemes model
//! on top of this register or of the PTLB.

use pmo_trace::Perm;

/// Number of architected protection keys.
pub const NUM_KEYS: usize = 16;

/// A PKRU register value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Pkru(u32);

impl Pkru {
    /// All keys fully accessible (AD=WD=0 for every key).
    pub const ALL_ACCESS: Pkru = Pkru(0);

    /// All keys inaccessible — the safe default the paper's evaluation uses
    /// ("The default permission for this key is inaccessible").
    pub const ALL_DENIED: Pkru = Pkru(0x5555_5555);

    /// Creates a PKRU from its raw 32-bit value (the WRPKRU operand).
    #[must_use]
    pub const fn from_raw(raw: u32) -> Self {
        Pkru(raw)
    }

    /// The raw 32-bit value (the RDPKRU result).
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The permission the register grants for `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key >= 16`.
    #[must_use]
    pub fn perm(self, key: u8) -> Perm {
        assert!((key as usize) < NUM_KEYS, "protection key out of range");
        let ad = self.0 >> (2 * key) & 1 != 0;
        let wd = self.0 >> (2 * key + 1) & 1 != 0;
        match (ad, wd) {
            (true, _) => Perm::None,
            (false, true) => Perm::ReadOnly,
            (false, false) => Perm::ReadWrite,
        }
    }

    /// Returns a register with `key`'s permission replaced.
    ///
    /// # Panics
    ///
    /// Panics if `key >= 16`.
    #[must_use]
    pub fn with_perm(self, key: u8, perm: Perm) -> Pkru {
        assert!((key as usize) < NUM_KEYS, "protection key out of range");
        let shift = 2 * key;
        let bits = match perm {
            Perm::None => 0b01,     // AD=1 (WD irrelevant; keep it 0)
            Perm::ReadOnly => 0b10, // AD=0, WD=1
            Perm::ReadWrite => 0b00,
        };
        Pkru((self.0 & !(0b11 << shift)) | (bits << shift))
    }
}

impl std::fmt::Display for Pkru {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PKRU={:#010x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        for k in 0..16 {
            assert_eq!(Pkru::ALL_ACCESS.perm(k), Perm::ReadWrite);
            assert_eq!(Pkru::ALL_DENIED.perm(k), Perm::None);
        }
    }

    #[test]
    fn set_and_get_each_key() {
        for k in 0..16u8 {
            for p in [Perm::None, Perm::ReadOnly, Perm::ReadWrite] {
                let r = Pkru::ALL_DENIED.with_perm(k, p);
                assert_eq!(r.perm(k), p, "key {k} perm {p:?}");
                // Other keys unaffected.
                for other in 0..16u8 {
                    if other != k {
                        assert_eq!(r.perm(other), Perm::None);
                    }
                }
            }
        }
    }

    #[test]
    fn raw_roundtrip_matches_intel_encoding() {
        // Key 0 RW, key 1 RO (WD), key 2 none (AD).
        let r = Pkru::ALL_ACCESS.with_perm(1, Perm::ReadOnly).with_perm(2, Perm::None);
        assert_eq!(r.raw() & 0b11, 0b00);
        assert_eq!(r.raw() >> 2 & 0b11, 0b10);
        assert_eq!(r.raw() >> 4 & 0b11, 0b01);
        assert_eq!(Pkru::from_raw(r.raw()), r);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn key_16_panics() {
        let _ = Pkru::ALL_ACCESS.perm(16);
    }
}
