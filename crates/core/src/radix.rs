//! A sparse radix tree over granule-aligned VA ranges.
//!
//! Both OS-managed tables of the paper are "organized hierarchically,
//! similar to a page table" with *directory entries* and *PMO root entries*
//! (§IV.D, §IV.E): the Domain Translation Table (DTT) and the Domain Range
//! Table (DRT). This module is that structure, generic over the per-PMO
//! payload. An entry sits at the tree level matching its region granule
//! (4KB → depth 4, 2MB → depth 3, 1GB → depth 2, 512GB → depth 1), so a
//! walk resolves any address in at most four steps.

use std::collections::BTreeMap;

use pmo_trace::Va;

const INDEX_BITS: u32 = 9;
const PAGE_BITS: u32 = 12;
const MAX_DEPTH: u32 = 4;

fn depth_for_granule(granule: u64) -> u32 {
    match granule {
        0x1000 => 4,         // 4KB
        0x20_0000 => 3,      // 2MB
        0x4000_0000 => 2,    // 1GB
        0x80_0000_0000 => 1, // 512GB
        _ => panic!("{granule:#x} is not a page-table granule"),
    }
}

fn index_at(va: Va, depth: u32) -> u16 {
    let shift = PAGE_BITS + INDEX_BITS * (MAX_DEPTH - depth);
    ((va >> shift) & ((1 << INDEX_BITS) - 1)) as u16
}

enum Slot<T> {
    /// A PMO root entry covering one granule-sized region.
    Entry { base: Va, granule: u64, value: T },
    /// A directory entry pointing at the next level.
    Dir(Box<Node<T>>),
}

struct Node<T> {
    children: BTreeMap<u16, Slot<T>>,
}

impl<T> Node<T> {
    fn new() -> Self {
        Node { children: BTreeMap::new() }
    }
}

/// Result of a successful radix walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeHit<'a, T> {
    /// The region's base address.
    pub base: Va,
    /// The region's granule size.
    pub granule: u64,
    /// Levels descended to find the entry (1..=4).
    pub depth: u32,
    /// The stored payload.
    pub value: &'a T,
}

/// Sparse radix tree mapping granule-aligned regions to payloads.
pub struct RangeRadix<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for RangeRadix<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for RangeRadix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RangeRadix").field("len", &self.len).finish()
    }
}

impl<T> RangeRadix<T> {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        RangeRadix { root: Node::new(), len: 0 }
    }

    /// Number of stored regions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a region of `granule` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not `granule`-aligned, `granule` is not a
    /// page-table granule, or the region overlaps an existing entry.
    pub fn insert(&mut self, base: Va, granule: u64, value: T) {
        assert_eq!(base % granule, 0, "base must be granule-aligned");
        let target_depth = depth_for_granule(granule);
        let mut node = &mut self.root;
        for depth in 1..=target_depth {
            let idx = index_at(base, depth);
            if depth == target_depth {
                let prior = node.children.insert(idx, Slot::Entry { base, granule, value });
                assert!(prior.is_none(), "region overlaps an existing entry");
                self.len += 1;
                return;
            }
            let slot = node.children.entry(idx).or_insert_with(|| Slot::Dir(Box::new(Node::new())));
            match slot {
                Slot::Dir(child) => node = child,
                Slot::Entry { .. } => panic!("region overlaps a larger existing entry"),
            }
        }
        unreachable!("depth is always in 1..=4");
    }

    /// Removes the region whose entry covers `va`; returns its payload.
    pub fn remove(&mut self, va: Va) -> Option<T> {
        let mut node = &mut self.root;
        for depth in 1..=MAX_DEPTH {
            let idx = index_at(va, depth);
            match node.children.get(&idx) {
                Some(Slot::Entry { .. }) => {
                    let Some(Slot::Entry { value, .. }) = node.children.remove(&idx) else {
                        unreachable!("just matched an entry");
                    };
                    self.len -= 1;
                    return Some(value);
                }
                Some(Slot::Dir(_)) => {
                    let Some(Slot::Dir(child)) = node.children.get_mut(&idx) else {
                        unreachable!("just matched a dir");
                    };
                    node = child;
                }
                None => return None,
            }
        }
        None
    }

    /// Walks the tree for `va`.
    #[must_use]
    pub fn lookup(&self, va: Va) -> Option<RangeHit<'_, T>> {
        let mut node = &self.root;
        for depth in 1..=MAX_DEPTH {
            match node.children.get(&index_at(va, depth)) {
                Some(Slot::Entry { base, granule, value }) => {
                    return Some(RangeHit { base: *base, granule: *granule, depth, value });
                }
                Some(Slot::Dir(child)) => node = child,
                None => return None,
            }
        }
        None
    }

    /// Walks the tree for `va`, returning a mutable payload reference.
    pub fn lookup_mut(&mut self, va: Va) -> Option<&mut T> {
        let mut node = &mut self.root;
        for depth in 1..=MAX_DEPTH {
            let idx = index_at(va, depth);
            // Two-phase to satisfy the borrow checker.
            match node.children.get(&idx) {
                Some(Slot::Entry { .. }) => match node.children.get_mut(&idx) {
                    Some(Slot::Entry { value, .. }) => return Some(value),
                    _ => unreachable!("just matched an entry"),
                },
                Some(Slot::Dir(_)) => match node.children.get_mut(&idx) {
                    Some(Slot::Dir(child)) => node = child,
                    _ => unreachable!("just matched a dir"),
                },
                None => return None,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB4: u64 = 0x1000;
    const MB2: u64 = 0x20_0000;
    const GB1: u64 = 0x4000_0000;

    #[test]
    fn insert_lookup_each_granule() {
        let mut r: RangeRadix<u32> = RangeRadix::new();
        r.insert(0x2000_0000_0000, GB1, 1);
        r.insert(0x3000_0000_0000, MB2, 2);
        r.insert(0x4000_0000_0000, KB4, 3);
        assert_eq!(r.len(), 3);

        let hit = r.lookup(0x2000_0123_4567).expect("inside the 1GB region");
        assert_eq!(*hit.value, 1);
        assert_eq!(hit.base, 0x2000_0000_0000);
        assert_eq!(hit.granule, GB1);
        assert_eq!(hit.depth, 2);

        let hit = r.lookup(0x3000_001f_ffff).expect("last byte of the 2MB region");
        assert_eq!(*hit.value, 2);
        assert_eq!(hit.depth, 3);

        let hit = r.lookup(0x4000_0000_0fff).expect("inside the 4KB region");
        assert_eq!(*hit.value, 3);
        assert_eq!(hit.depth, 4);

        assert!(r.lookup(0x2000_4000_0000).is_none(), "just past the 1GB region");
        assert!(r.lookup(0x3000_0020_0000).is_none(), "just past the 2MB region");
        assert!(r.lookup(0x0).is_none());
    }

    #[test]
    fn thousand_consecutive_gb_regions() {
        // The multi-PMO benchmark layout: 1024 consecutive 1GB regions.
        let mut r: RangeRadix<u32> = RangeRadix::new();
        let base = 0x2000_0000_0000u64;
        for i in 0..1024u64 {
            r.insert(base + i * GB1, GB1, i as u32);
        }
        assert_eq!(r.len(), 1024);
        for i in (0..1024u64).step_by(37) {
            let hit = r.lookup(base + i * GB1 + 12345).unwrap();
            assert_eq!(*hit.value, i as u32);
        }
    }

    #[test]
    fn remove_and_reinsert() {
        let mut r: RangeRadix<&'static str> = RangeRadix::new();
        r.insert(0x1000, KB4, "a");
        assert_eq!(r.remove(0x1234), Some("a"));
        assert_eq!(r.remove(0x1234), None);
        assert!(r.is_empty());
        r.insert(0x1000, KB4, "b");
        assert_eq!(*r.lookup(0x1000).unwrap().value, "b");
    }

    #[test]
    fn lookup_mut_mutates() {
        let mut r: RangeRadix<u32> = RangeRadix::new();
        r.insert(0x20_0000, MB2, 5);
        *r.lookup_mut(0x20_1000).unwrap() = 9;
        assert_eq!(*r.lookup(0x3f_ffff).unwrap().value, 9);
        assert!(r.lookup_mut(0x40_0000).is_none());
    }

    #[test]
    #[should_panic(expected = "granule-aligned")]
    fn misaligned_insert_panics() {
        let mut r: RangeRadix<u32> = RangeRadix::new();
        r.insert(0x1000, MB2, 0);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_insert_panics() {
        let mut r: RangeRadix<u32> = RangeRadix::new();
        r.insert(0x4000_0000, GB1, 0);
        r.insert(0x4000_0000 + 0x20_0000, MB2, 1);
    }

    #[test]
    #[should_panic(expected = "not a page-table granule")]
    fn bad_granule_panics() {
        let mut r: RangeRadix<u32> = RangeRadix::new();
        r.insert(0x0, 0x2000, 0);
    }
}
