//! The Domain Translation Table (DTT) — design 1's OS-managed structure.
//!
//! Per §IV.D: "DTT is an OS-managed data structure created for each process
//! that uses domain protection. It is indexed by virtual address and each
//! entry contains the domain ID, current protection key the domain ID maps
//! to, and permission for the domain." Organized hierarchically like a page
//! table ([`RangeRadix`]); holds permissions *for all threads* (the DTTLB
//! caches only the running thread's).

use std::collections::BTreeMap;

use pmo_trace::{Perm, PmoId, ThreadId, Va};

use crate::radix::{RangeHit, RangeRadix};

/// One PMO root entry of the DTT.
#[derive(Debug)]
pub struct DttEntry {
    /// The domain / PMO ID.
    pub pmo: PmoId,
    /// The protection key the domain currently maps to (`None` = unmapped,
    /// the paper's invalid/NULL key state).
    pub key: Option<u8>,
    /// Per-thread domain permission. Threads absent from the map hold
    /// [`Perm::None`] (the paper's default: inaccessible).
    perms: BTreeMap<ThreadId, Perm>,
}

impl DttEntry {
    fn new(pmo: PmoId) -> Self {
        DttEntry { pmo, key: None, perms: BTreeMap::new() }
    }

    /// The permission `thread` holds for this domain.
    #[must_use]
    pub fn perm(&self, thread: ThreadId) -> Perm {
        self.perms.get(&thread).copied().unwrap_or(Perm::None)
    }

    /// Iterates over every stored `thread → perm` row (abstraction-function
    /// inspection; absent threads hold [`Perm::None`]).
    pub fn thread_perms(&self) -> impl Iterator<Item = (ThreadId, Perm)> + '_ {
        self.perms.iter().map(|(&t, &p)| (t, p))
    }

    /// Sets `thread`'s permission.
    pub fn set_perm(&mut self, thread: ThreadId, perm: Perm) {
        if perm == Perm::None {
            self.perms.remove(&thread);
        } else {
            self.perms.insert(thread, perm);
        }
    }
}

/// The process-wide DTT plus the OS's PMO-ID → region index.
#[derive(Debug, Default)]
pub struct DomainTranslationTable {
    tree: RangeRadix<DttEntry>,
    regions: BTreeMap<PmoId, (Va, u64)>,
}

impl DomainTranslationTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entry when a PMO is attached.
    ///
    /// # Panics
    ///
    /// Panics on overlapping or misaligned regions (attach-layer bugs).
    pub fn attach(&mut self, pmo: PmoId, base: Va, granule: u64) {
        self.tree.insert(base, granule, DttEntry::new(pmo));
        self.regions.insert(pmo, (base, granule));
    }

    /// Removes a PMO's entry on detach; returns it (with its key mapping,
    /// so the caller can free the key).
    pub fn detach(&mut self, pmo: PmoId) -> Option<DttEntry> {
        let (base, _) = self.regions.remove(&pmo)?;
        self.tree.remove(base)
    }

    /// Hardware table walk by address.
    #[must_use]
    pub fn walk(&self, va: Va) -> Option<RangeHit<'_, DttEntry>> {
        self.tree.lookup(va)
    }

    /// The VA region of a domain.
    #[must_use]
    pub fn region_of(&self, pmo: PmoId) -> Option<(Va, u64)> {
        self.regions.get(&pmo).copied()
    }

    /// Mutable access to a domain's entry by ID.
    pub fn entry_mut(&mut self, pmo: PmoId) -> Option<&mut DttEntry> {
        let (base, _) = *self.regions.get(&pmo)?;
        self.tree.lookup_mut(base)
    }

    /// Immutable access to a domain's entry by ID.
    #[must_use]
    pub fn entry(&self, pmo: PmoId) -> Option<&DttEntry> {
        let (base, _) = *self.regions.get(&pmo)?;
        self.tree.lookup(base).map(|hit| hit.value)
    }

    /// Number of attached domains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether no domains are attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Iterates over every attached domain ID (model-checker inspection).
    pub fn domains(&self) -> impl Iterator<Item = PmoId> + '_ {
        self.regions.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB1: u64 = 1 << 30;

    #[test]
    fn attach_walk_detach() {
        let mut dtt = DomainTranslationTable::new();
        let pmo = PmoId::new(5);
        dtt.attach(pmo, 4 * GB1, GB1);
        assert_eq!(dtt.len(), 1);
        let hit = dtt.walk(4 * GB1 + 0x1234).unwrap();
        assert_eq!(hit.value.pmo, pmo);
        assert_eq!(hit.value.key, None, "freshly attached domains are unmapped");
        assert_eq!(dtt.region_of(pmo), Some((4 * GB1, GB1)));
        let entry = dtt.detach(pmo).unwrap();
        assert_eq!(entry.pmo, pmo);
        assert!(dtt.walk(4 * GB1).is_none());
        assert!(dtt.is_empty());
    }

    #[test]
    fn per_thread_permissions_default_none() {
        let mut dtt = DomainTranslationTable::new();
        let pmo = PmoId::new(1);
        dtt.attach(pmo, GB1, GB1);
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        assert_eq!(dtt.entry(pmo).unwrap().perm(t0), Perm::None);
        dtt.entry_mut(pmo).unwrap().set_perm(t0, Perm::ReadWrite);
        assert_eq!(dtt.entry(pmo).unwrap().perm(t0), Perm::ReadWrite);
        assert_eq!(dtt.entry(pmo).unwrap().perm(t1), Perm::None, "thread-specific");
        dtt.entry_mut(pmo).unwrap().set_perm(t0, Perm::None);
        assert_eq!(dtt.entry(pmo).unwrap().perm(t0), Perm::None);
    }

    #[test]
    fn key_mapping_persists_in_entry() {
        let mut dtt = DomainTranslationTable::new();
        let pmo = PmoId::new(9);
        dtt.attach(pmo, GB1, GB1);
        dtt.entry_mut(pmo).unwrap().key = Some(3);
        assert_eq!(dtt.walk(GB1 + 5).unwrap().value.key, Some(3));
    }

    #[test]
    fn detach_unknown_is_none() {
        let mut dtt = DomainTranslationTable::new();
        assert!(dtt.detach(PmoId::new(1)).is_none());
        assert!(dtt.entry(PmoId::new(1)).is_none());
        assert!(dtt.entry_mut(PmoId::new(1)).is_none());
        assert!(dtt.region_of(PmoId::new(1)).is_none());
    }
}
