//! Seeded-bug trace mutation, for checker self-validation.
//!
//! Each [`SeededBug`] surgically injects one known-bad pattern into a
//! recorded trace. The mutation tests assert that the corresponding pass
//! catches each class (and that unmutated traces stay silent), which is
//! the analyzer's own correctness argument: a checker that cannot find a
//! planted bug cannot be trusted to prove its absence.
//!
//! Mutations are targeted, not random: each one locates the load-bearing
//! event for its bug class (the log flush guarding the first commit, the
//! fence ordering it, the shootdown after a detach, the final revoke, the
//! first PMO store) so the seeded trace is guaranteed to exhibit the bug
//! rather than a coincidentally-legal reordering.

use pmo_trace::{CodeImage, PmoId, ThreadId, TraceEvent, Va};

use crate::diag::ViolationClass;

/// A known-bad pattern to plant in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeededBug {
    /// Drop the last log flush before the first commit-flag store.
    DroppedFlush,
    /// Move the fence ordering the log flushes to after the commit store.
    ReorderedFence,
    /// Remove the shootdown after a detach and access the stale region.
    RevokeWithoutShootdown,
    /// Remove the final permission revoke.
    WindowLeftOpen,
    /// Add an unsynchronized cross-thread store to a written PMO line.
    CrossThreadStore,
    /// Insert a store between a write-revoking `SetPerm` and the event
    /// that settles it (shootdown / next switch) — ERIM's forbidden
    /// gate window.
    StoreInGate,
    /// The libmpk/ERIM key-reuse-after-evict window, planted so that it
    /// is *reordering-reachable only*: an unsynchronized intruder thread
    /// touches the pool before the detach (observed order is silent) and
    /// the detach's shootdown is removed — only a feasible reordering
    /// that delays the intruder past the detach exposes the stale
    /// window, so the predictive pass (not any manifest pass) must
    /// catch it.
    KeyReuseAfterEvict,
}

impl SeededBug {
    /// Every bug class.
    pub const ALL: [SeededBug; 7] = [
        SeededBug::DroppedFlush,
        SeededBug::ReorderedFence,
        SeededBug::RevokeWithoutShootdown,
        SeededBug::WindowLeftOpen,
        SeededBug::CrossThreadStore,
        SeededBug::StoreInGate,
        SeededBug::KeyReuseAfterEvict,
    ];

    /// Short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SeededBug::DroppedFlush => "dropped-flush",
            SeededBug::ReorderedFence => "reordered-fence",
            SeededBug::RevokeWithoutShootdown => "revoke-without-shootdown",
            SeededBug::WindowLeftOpen => "window-left-open",
            SeededBug::CrossThreadStore => "cross-thread-store",
            SeededBug::StoreInGate => "store-in-gate",
            SeededBug::KeyReuseAfterEvict => "key-reuse-after-evict",
        }
    }

    /// The violation class the corresponding pass must report.
    #[must_use]
    pub fn expected_class(self) -> ViolationClass {
        match self {
            SeededBug::DroppedFlush => ViolationClass::UnflushedDirtyAtCommit,
            SeededBug::ReorderedFence => ViolationClass::UnfencedFlushAtCommit,
            SeededBug::RevokeWithoutShootdown => ViolationClass::StaleWindowAccess,
            SeededBug::WindowLeftOpen => ViolationClass::WindowLeftOpen,
            SeededBug::CrossThreadStore => ViolationClass::CrossThreadRace,
            SeededBug::StoreInGate => ViolationClass::StoreInSwitchGate,
            SeededBug::KeyReuseAfterEvict => ViolationClass::StaleWindowAccess,
        }
    }
}

impl std::fmt::Display for SeededBug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A known-bad pattern to plant in an executable *code image* rather
/// than a trace: the binary-inspection analogue of [`SeededBug`],
/// validating the ERIM-style scanner in
/// [`crate::inspect::InspectPass`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeededCodeBug {
    /// Append a literal WRPKRU instruction (`0F 01 EF`) outside every
    /// registered gate — untrusted code carrying its own key update.
    OutOfGateWrpkru,
    /// Append a `mov eax, imm32` whose immediate bytes alias a WRPKRU:
    /// the sequence lives *inside* an operand, executable via an
    /// unaligned jump (ERIM §4.2's key subtlety).
    WrpkruInImmediate,
}

impl SeededCodeBug {
    /// Every code-bug class.
    pub const ALL: [SeededCodeBug; 2] =
        [SeededCodeBug::OutOfGateWrpkru, SeededCodeBug::WrpkruInImmediate];

    /// Short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SeededCodeBug::OutOfGateWrpkru => "out-of-gate-wrpkru",
            SeededCodeBug::WrpkruInImmediate => "wrpkru-in-immediate",
        }
    }

    /// The violation class the inspection pass must report.
    #[must_use]
    pub fn expected_class(self) -> ViolationClass {
        match self {
            SeededCodeBug::OutOfGateWrpkru | SeededCodeBug::WrpkruInImmediate => {
                ViolationClass::UnsafeKeyUpdateSite
            }
        }
    }
}

impl std::fmt::Display for SeededCodeBug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Plants `bug` into a copy of `image`, appending the bad bytes after
/// the existing code (outside every registered gate, which `CodeImage`
/// gates never cover: appends only grow the ungated tail).
#[must_use]
pub fn seed_code_bug(image: &CodeImage, bug: SeededCodeBug) -> CodeImage {
    let mut out = image.clone();
    match bug {
        SeededCodeBug::OutOfGateWrpkru => {
            out.bytes.extend_from_slice(&[0x0F, 0x01, 0xEF]);
        }
        SeededCodeBug::WrpkruInImmediate => {
            // mov eax, 0x00EF010F: bytes 0F 01 EF at immediate offset +1.
            out.bytes.extend_from_slice(&[0xB8, 0x0F, 0x01, 0xEF, 0x00]);
        }
    }
    out
}

/// The target address of a store event (valued or not).
fn store_va(ev: &TraceEvent) -> Option<Va> {
    match *ev {
        TraceEvent::Store { va, .. } | TraceEvent::StoreData { va, .. } => Some(va),
        _ => None,
    }
}

/// The target address of a store that could *set* a commit flag: plain
/// stores (value unknown) and valued stores writing nonzero. Valued
/// stores of zero are flag clears (or the pool-creation formatting of the
/// header) and never open a commit.
fn flag_setting_store_va(ev: &TraceEvent) -> Option<Va> {
    match *ev {
        TraceEvent::Store { va, .. } => Some(va),
        TraceEvent::StoreData { va, data, .. } if data != 0 => Some(va),
        _ => None,
    }
}

/// Finds the index of the first flag-setting store to any pool's
/// commit-flag field (`base + 32`), i.e. the first transaction's commit
/// point.
fn first_commit_store(events: &[TraceEvent]) -> Option<usize> {
    let mut flag_vas: Vec<(Va, Va)> = Vec::new(); // (flag va, end)
    for (i, ev) in events.iter().enumerate() {
        if let TraceEvent::Attach { base, size, .. } = *ev {
            flag_vas.push((base + 32, base + size));
        } else if flag_setting_store_va(ev).is_some_and(|va| flag_vas.iter().any(|&(f, _)| f == va))
        {
            return Some(i);
        }
    }
    None
}

/// Injects `bug` into `events`, returning the mutated trace, or `None`
/// when the trace lacks the shape the mutation needs (e.g. no
/// transaction commit to corrupt).
#[must_use]
pub fn seed_bug(events: &[TraceEvent], bug: SeededBug) -> Option<Vec<TraceEvent>> {
    let mut out: Vec<TraceEvent> = events.to_vec();
    match bug {
        SeededBug::DroppedFlush => {
            let ci = first_commit_store(events)?;
            let fi = (0..ci).rev().find(|&i| matches!(events[i], TraceEvent::Flush { .. }))?;
            out.remove(fi);
        }
        SeededBug::ReorderedFence => {
            let ci = first_commit_store(events)?;
            let fi = (0..ci).rev().find(|&i| matches!(events[i], TraceEvent::Fence))?;
            out.remove(fi);
            // The commit store shifted down one slot; re-insert the fence
            // right after it.
            out.insert(ci, TraceEvent::Fence);
        }
        SeededBug::RevokeWithoutShootdown => {
            // Find a shootdown whose pmo has a known attached range.
            let mut regions: Vec<(PmoId, Va)> = Vec::new();
            let mut found: Option<(usize, Va)> = None;
            for (i, ev) in events.iter().enumerate() {
                match *ev {
                    TraceEvent::Attach { pmo, base, .. } => regions.push((pmo, base)),
                    TraceEvent::Shootdown { pmo } => {
                        if let Some(&(_, base)) = regions.iter().find(|(p, _)| *p == pmo) {
                            found = Some((i, base));
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let (si, base) = found?;
            // Replace the shootdown with an access into the now-stale
            // region: exactly the use-after-revoke the paper's shootdown
            // ordering forbids.
            out[si] = TraceEvent::Load { va: base + 0x80, size: 8 };
        }
        SeededBug::WindowLeftOpen => {
            let ri = (0..events.len()).rev().find(|&i| {
                matches!(events[i], TraceEvent::SetPerm { perm: pmo_trace::Perm::None, .. })
            })?;
            out.remove(ri);
        }
        SeededBug::CrossThreadStore => {
            // Fork a thread right after the first attach, then have it
            // store — with no synchronization — to a line the original
            // thread wrote after the fork. The intruding store goes just
            // before any detach (a detach's shootdown would order it).
            let ai = events.iter().position(|ev| matches!(ev, TraceEvent::Attach { .. }))?;
            let (base, end) = match events[ai] {
                TraceEvent::Attach { base, size, .. } => (base, base + size),
                _ => unreachable!("position matched an attach"),
            };
            let forked_from = events[..ai]
                .iter()
                .rev()
                .find_map(|ev| match ev {
                    TraceEvent::ThreadSwitch { thread } => Some(*thread),
                    _ => None,
                })
                .unwrap_or(ThreadId::MAIN);
            let line = events[ai + 1..]
                .iter()
                .find_map(|ev| store_va(ev).filter(|&va| va >= base && va < end))
                .map(|va| va & !63)?;
            let intruder = ThreadId::new(99);
            out.insert(ai + 1, TraceEvent::ThreadSwitch { thread: intruder });
            out.insert(ai + 2, TraceEvent::ThreadSwitch { thread: forked_from });
            let at = events
                .iter()
                .enumerate()
                .skip(ai + 1)
                .find(|(_, ev)| matches!(ev, TraceEvent::Detach { .. }))
                .map_or(out.len(), |(di, _)| di + 2);
            out.insert(at, TraceEvent::ThreadSwitch { thread: intruder });
            out.insert(at + 1, TraceEvent::Store { va: line, size: 8 });
        }
        SeededBug::StoreInGate => {
            // Find the last write-revoking SetPerm (previous permission
            // allowed writes, new one does not) for an attached pool and
            // slip a store in right behind it, before the shootdown or
            // re-grant that would settle the revoke.
            let mut bases: Vec<(PmoId, Va)> = Vec::new();
            let mut perms: Vec<(PmoId, pmo_trace::Perm)> = Vec::new();
            let mut target: Option<(usize, Va)> = None;
            for (i, ev) in events.iter().enumerate() {
                match *ev {
                    TraceEvent::Attach { pmo, base, .. } => bases.push((pmo, base)),
                    TraceEvent::SetPerm { pmo, perm } => {
                        let prev = perms
                            .iter()
                            .find(|(p, _)| *p == pmo)
                            .map_or(pmo_trace::Perm::None, |&(_, q)| q);
                        if prev.allows_write() && !perm.allows_write() {
                            if let Some(&(_, base)) = bases.iter().find(|(p, _)| *p == pmo) {
                                target = Some((i, base));
                            }
                        }
                        match perms.iter_mut().find(|(p, _)| *p == pmo) {
                            Some(slot) => slot.1 = perm,
                            Option::None => perms.push((pmo, perm)),
                        }
                    }
                    _ => {}
                }
            }
            let (si, base) = target?;
            out.insert(si + 1, TraceEvent::Store { va: base + 0x40, size: 8 });
        }
        SeededBug::KeyReuseAfterEvict => {
            // Fork an intruder right after the first attach, have it
            // load a quiet line of the pool just *before* the pool's
            // detach, and remove the detach's shootdown. In the observed
            // order the access precedes the revoke, so every manifest
            // pass is silent; delaying the intruder's block past the
            // detach is a feasible reordering that lands the access in
            // the stale window — the eviction/remap reuse hazard only
            // the predictive pass can reach.
            let ai = events.iter().position(|ev| matches!(ev, TraceEvent::Attach { .. }))?;
            let (pmo, base, size) = match events[ai] {
                TraceEvent::Attach { pmo, base, size, .. } => (pmo, base, size),
                _ => unreachable!("position matched an attach"),
            };
            let di = events
                .iter()
                .position(|ev| matches!(ev, TraceEvent::Detach { pmo: p } if *p == pmo))?;
            let si = events.iter().enumerate().skip(di).find_map(|(i, ev)| match ev {
                TraceEvent::Shootdown { pmo: p } if *p == pmo => Some(i),
                _ => None,
            })?;
            let thread_at = |upto: usize| {
                events[..upto]
                    .iter()
                    .rev()
                    .find_map(|ev| match ev {
                        TraceEvent::ThreadSwitch { thread } => Some(*thread),
                        _ => None,
                    })
                    .unwrap_or(ThreadId::MAIN)
            };
            let intruder = ThreadId::new(99);
            // Highest-index edits first so positions stay valid.
            out.remove(si);
            out.insert(di, TraceEvent::ThreadSwitch { thread: intruder });
            out.insert(di + 1, TraceEvent::Load { va: base + size - 64, size: 8 });
            out.insert(di + 2, TraceEvent::ThreadSwitch { thread: thread_at(di) });
            out.insert(ai + 1, TraceEvent::ThreadSwitch { thread: intruder });
            out.insert(ai + 2, TraceEvent::ThreadSwitch { thread: thread_at(ai) });
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_classes_are_distinct() {
        let labels: std::collections::BTreeSet<_> =
            SeededBug::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), SeededBug::ALL.len());
        for b in SeededBug::ALL {
            assert!(!b.to_string().is_empty());
            let _ = b.expected_class();
        }
    }

    #[test]
    fn mutations_need_matching_trace_shape() {
        // An empty trace supports no mutation.
        for bug in SeededBug::ALL {
            assert!(seed_bug(&[], bug).is_none(), "{bug}");
        }
    }

    #[test]
    fn dropped_flush_removes_one_event() {
        let events = vec![
            TraceEvent::Attach { pmo: PmoId::new(1), base: 0x1000, size: 0x1000, nvm: true },
            TraceEvent::Store { va: 0x1040, size: 8 },
            TraceEvent::Flush { va: 0x1040 },
            TraceEvent::Fence,
            TraceEvent::Store { va: 0x1020, size: 8 }, // commit flag (base + 32)
        ];
        let mutated = seed_bug(&events, SeededBug::DroppedFlush).unwrap();
        assert_eq!(mutated.len(), events.len() - 1);
        assert!(!mutated.iter().any(|e| matches!(e, TraceEvent::Flush { .. })));
    }

    #[test]
    fn reordered_fence_keeps_length() {
        let events = vec![
            TraceEvent::Attach { pmo: PmoId::new(1), base: 0x1000, size: 0x1000, nvm: true },
            TraceEvent::Store { va: 0x1040, size: 8 },
            TraceEvent::Flush { va: 0x1040 },
            TraceEvent::Fence,
            TraceEvent::Store { va: 0x1020, size: 8 },
        ];
        let mutated = seed_bug(&events, SeededBug::ReorderedFence).unwrap();
        assert_eq!(mutated.len(), events.len());
        // The fence now follows the commit store.
        assert!(matches!(mutated[3], TraceEvent::Store { va: 0x1020, .. }));
        assert!(matches!(mutated[4], TraceEvent::Fence));
    }
}
