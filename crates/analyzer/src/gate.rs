//! ERIM-style permission-switch gate integrity.
//!
//! ERIM's binary inspection proves that every WRPKRU is immediately
//! followed by its sanctioned gate sequence — no instruction may sneak
//! between the permission switch and the point where the new policy has
//! fully settled. The analogous window here is the span between a
//! *write-revoking* [`TraceEvent::SetPerm`] and the event that settles
//! it: the ranged [`TraceEvent::Shootdown`] (which guarantees no core
//! still holds a stale writable translation), the next `SetPerm` for
//! the same domain (an explicit re-grant supersedes the revoke), or the
//! domain's detach. A store by the revoking thread into the domain
//! during that span can only land through a stale translation — the
//! exact hole the paper's shootdown ordering (§IV.B) closes.
//!
//! The pass is thread-local by construction (a `SetPerm` changes the
//! *executing thread's* permission), so gates are keyed by
//! `(thread, pmo)`.

use std::collections::BTreeMap;

use pmo_trace::{PmoId, ThreadId, TraceEvent, Va};

use crate::diag::{AnalyzerPass, Diagnostic, EventCtx, Severity, ViolationClass};

/// Detects stores inside an open permission-switch gate.
#[derive(Default)]
pub struct GatePass {
    /// Attached regions: pmo -> (base, size).
    regions: BTreeMap<PmoId, (Va, u64)>,
    /// Current per-(thread, pmo) permission, to recognize revocations.
    perms: BTreeMap<(ThreadId, PmoId), pmo_trace::Perm>,
    /// Open gates: (thread, pmo) -> position of the revoking SetPerm.
    open: BTreeMap<(ThreadId, PmoId), u64>,
}

impl GatePass {
    /// New pass.
    #[must_use]
    pub fn new() -> Self {
        GatePass::default()
    }

    fn store(&mut self, ctx: EventCtx, va: Va, out: &mut Vec<Diagnostic>) {
        let Some((&pmo, _)) =
            self.regions.iter().find(|(_, &(base, size))| va >= base && va < base + size)
        else {
            return;
        };
        if let Some(&opened_at) = self.open.get(&(ctx.thread, pmo)) {
            out.push(Diagnostic {
                pass: self.name(),
                class: ViolationClass::StoreInSwitchGate,
                severity: Severity::Error,
                thread: ctx.thread,
                position: ctx.pos,
                message: format!(
                    "store to {va:#x} (pmo {pmo}) inside the switch gate opened by the \
                     write-revoking SetPerm at event {opened_at}: the write can only land \
                     through a translation the revoke should have invalidated"
                ),
            });
        }
    }
}

impl AnalyzerPass for GatePass {
    fn name(&self) -> &'static str {
        "switch-gate"
    }

    fn check(&mut self, ctx: EventCtx, ev: &TraceEvent, out: &mut Vec<Diagnostic>) {
        match *ev {
            TraceEvent::Attach { pmo, base, size, .. } => {
                self.regions.insert(pmo, (base, size));
            }
            TraceEvent::Detach { pmo } => {
                self.regions.remove(&pmo);
                self.open.retain(|&(_, p), _| p != pmo);
                self.perms.retain(|&(_, p), _| p != pmo);
            }
            TraceEvent::Shootdown { pmo } => {
                // The shootdown settles every thread's pending revoke for
                // this domain: stale translations are gone machine-wide.
                self.open.retain(|&(_, p), _| p != pmo);
            }
            TraceEvent::SetPerm { pmo, perm } => {
                let key = (ctx.thread, pmo);
                let prev = self.perms.insert(key, perm).unwrap_or_default();
                if prev.allows_write() && !perm.allows_write() {
                    self.open.insert(key, ctx.pos);
                } else {
                    // Any other explicit switch supersedes a pending
                    // revoke for this thread.
                    self.open.remove(&key);
                }
            }
            TraceEvent::Store { va, .. } | TraceEvent::StoreData { va, .. } => {
                self.store(ctx, va, out);
            }
            _ => {}
        }
    }

    fn finish(&mut self, _ctx: EventCtx, _out: &mut Vec<Diagnostic>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmo_trace::Perm;

    const BASE: Va = 0x4000;

    fn run(events: &[TraceEvent]) -> Vec<Diagnostic> {
        let mut pass = GatePass::new();
        let mut out = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            pass.check(EventCtx { pos: i as u64, thread: ThreadId::MAIN }, ev, &mut out);
        }
        pass.finish(EventCtx { pos: events.len() as u64, thread: ThreadId::MAIN }, &mut out);
        out
    }

    fn attach() -> TraceEvent {
        TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 4096, nvm: true }
    }

    fn perm(p: Perm) -> TraceEvent {
        TraceEvent::SetPerm { pmo: PmoId::new(1), perm: p }
    }

    #[test]
    fn store_after_revoke_before_shootdown_fires() {
        let diags = run(&[
            attach(),
            perm(Perm::ReadWrite),
            TraceEvent::Store { va: BASE + 8, size: 8 },
            perm(Perm::None),
            TraceEvent::Store { va: BASE + 8, size: 8 },
        ]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].class, ViolationClass::StoreInSwitchGate);
        assert_eq!(diags[0].position, 4);
    }

    #[test]
    fn shootdown_closes_the_gate() {
        let diags = run(&[
            attach(),
            perm(Perm::ReadWrite),
            perm(Perm::None),
            TraceEvent::Shootdown { pmo: PmoId::new(1) },
            TraceEvent::Store { va: BASE, size: 8 },
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn regrant_closes_the_gate() {
        let diags = run(&[
            attach(),
            perm(Perm::ReadWrite),
            perm(Perm::None),
            perm(Perm::ReadWrite),
            TraceEvent::StoreData { va: BASE, size: 8, data: 1 },
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn downgrade_to_readonly_opens_a_gate() {
        let diags = run(&[
            attach(),
            perm(Perm::ReadWrite),
            perm(Perm::ReadOnly),
            TraceEvent::Store { va: BASE + 128, size: 8 },
        ]);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn revoke_without_prior_write_grant_opens_nothing() {
        // None -> ReadOnly never allowed writes, so there is no stale
        // writable translation to worry about.
        let diags = run(&[attach(), perm(Perm::ReadOnly), TraceEvent::Store { va: BASE, size: 8 }]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn stores_outside_the_region_are_ignored() {
        let diags = run(&[
            attach(),
            perm(Perm::ReadWrite),
            perm(Perm::None),
            TraceEvent::Store { va: 0x10, size: 8 },
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn detach_clears_gate_state() {
        let diags = run(&[
            attach(),
            perm(Perm::ReadWrite),
            perm(Perm::None),
            TraceEvent::Detach { pmo: PmoId::new(1) },
            TraceEvent::Store { va: BASE, size: 8 },
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
