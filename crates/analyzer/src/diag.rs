//! The shared diagnostics engine: violation classes, severities,
//! positioned diagnostics, the pass trait, and the multi-pass driver.

use std::fmt;

use pmo_trace::{ThreadId, TraceEvent, TraceSink};

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A correctness violation: the trace breaks a discipline the paper's
    /// crash-consistency or isolation argument depends on.
    Error,
    /// A performance lint: the trace is correct but wasteful.
    Lint,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Lint => "lint",
        })
    }
}

/// Every violation class any pass can report, unified so reports and
/// machine-readable output share one taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationClass {
    /// A cache line written this transaction was still dirty (never
    /// flushed) when the commit flag was set or cleared.
    UnflushedDirtyAtCommit,
    /// A cache line was flushed but no fence ordered the flush before the
    /// commit flag was set: the log may persist *after* the flag.
    UnfencedFlushAtCommit,
    /// An in-place (home-location) store executed while the commit flag's
    /// line was not yet persisted: write-ahead-log discipline broken.
    StoreWithoutPersistedLog,
    /// A line was flushed although it had no unpersisted store (wasted
    /// `clwb`).
    DuplicateFlush,
    /// A fence with no preceding flush since the last fence (wasted
    /// `sfence`).
    UselessFence,
    /// Two threads accessed the same PMO line without a happens-before
    /// edge, at least one access being a write.
    CrossThreadRace,
    /// An access raced a detach/revoke: it hit a region whose mapping was
    /// torn down without an intervening ranged shootdown (the paper's
    /// stale-translation hazard, §IV.B).
    StaleWindowAccess,
    /// An access outside any permission window (from [`pmo_trace::PermAudit`]).
    UnguardedAccess,
    /// More simultaneously enabled domains than the discipline allows.
    TooManyOpenWindows,
    /// A grant never revoked before the trace ended.
    WindowLeftOpen,
    /// A PMO detached while a thread still held a grant on it.
    DetachedWhileGranted,
    /// A TLB or DTTLB entry still granted access through a protection key
    /// after the key was reassigned to another domain (missing ranged
    /// shootdown, the model checker's §IV.B invariant).
    StaleKeyGrant,
    /// The materialized PKRU register disagreed with the DTT-derived
    /// permission set for the running thread.
    PkruDesync,
    /// A PTLB entry granted a permission the PT (or the revocation that
    /// should have invalidated it) no longer allows.
    PtlbDesync,
    /// The two hardware designs (MPK virtualization and domain
    /// virtualization) disagreed on an allow/deny decision the paper's
    /// three-legality rule fixes uniquely.
    SchemeDivergence,
    /// A crash image allowed by the persistency model recovered into a
    /// state that violates a workload invariant (found by exhaustive
    /// crash-image enumeration, not sampling).
    CrashImageViolation,
    /// A store landed inside an open permission-switch gate: between a
    /// write-revoking `SetPerm` and the shootdown (or re-grant) that
    /// settles it, a store hit the pool — the window ERIM's gate
    /// inspection forbids.
    StoreInSwitchGate,
    /// A concrete protection scheme diverged from the executable
    /// permission-oracle spec under the simulation relation: an allow/deny
    /// verdict differed, the abstraction of its state drifted from the
    /// spec state, or a cached grant was observably ahead of or behind
    /// the spec (refinement checker).
    RefinementDivergence,
    /// A trace-observable information flow from a domain's stores to a
    /// thread that never held any permission on that domain: perturbing
    /// the domain's data changed what the unauthorized thread read
    /// (noninterference checker).
    NoninterferenceLeak,
    /// A WRPKRU/XRSTOR-equivalent key-update byte sequence occurred in an
    /// executable code image outside every registered call gate — ERIM's
    /// binary-inspection property (§4.2). The sequence may start at any
    /// byte offset (unaligned jumps make instruction boundaries
    /// irrelevant), including inside an immediate or displacement.
    UnsafeKeyUpdateSite,
    /// The predictive-reordering pass hit one of its bounded-work caps
    /// (event buffer, candidate budget, or finding budget): the counted
    /// remainder was not explored. A lint, mirroring the diagnostics-log
    /// truncation discipline — bounded, but never silently lossy.
    PredictionTruncated,
}

impl ViolationClass {
    /// Stable machine-readable name (used in JSON output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ViolationClass::UnflushedDirtyAtCommit => "unflushed-dirty-at-commit",
            ViolationClass::UnfencedFlushAtCommit => "unfenced-flush-at-commit",
            ViolationClass::StoreWithoutPersistedLog => "store-without-persisted-log",
            ViolationClass::DuplicateFlush => "duplicate-flush",
            ViolationClass::UselessFence => "useless-fence",
            ViolationClass::CrossThreadRace => "cross-thread-race",
            ViolationClass::StaleWindowAccess => "stale-window-access",
            ViolationClass::UnguardedAccess => "unguarded-access",
            ViolationClass::TooManyOpenWindows => "too-many-open-windows",
            ViolationClass::WindowLeftOpen => "window-left-open",
            ViolationClass::DetachedWhileGranted => "detached-while-granted",
            ViolationClass::StaleKeyGrant => "stale-key-grant",
            ViolationClass::PkruDesync => "pkru-desync",
            ViolationClass::PtlbDesync => "ptlb-desync",
            ViolationClass::SchemeDivergence => "scheme-divergence",
            ViolationClass::CrashImageViolation => "crash-image-violation",
            ViolationClass::StoreInSwitchGate => "store-in-switch-gate",
            ViolationClass::RefinementDivergence => "refinement-divergence",
            ViolationClass::NoninterferenceLeak => "noninterference-leak",
            ViolationClass::UnsafeKeyUpdateSite => "unsafe-key-update-site",
            ViolationClass::PredictionTruncated => "prediction-truncated",
        }
    }
}

impl fmt::Display for ViolationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, anchored to a trace position so it can be reproduced
/// deterministically (same workload + seed, or same trace file, always
/// yields the same position).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which pass produced it.
    pub pass: &'static str,
    /// The violation class.
    pub class: ViolationClass,
    /// Error or lint.
    pub severity: Severity,
    /// The thread executing when the violation fired.
    pub thread: ThreadId,
    /// 0-based index of the offending event in the analyzed stream
    /// (`u64::MAX` at end-of-trace findings is never used; end findings
    /// carry the stream length instead).
    pub position: u64,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at event {} (thread {}): {} ({})",
            self.severity, self.pass, self.position, self.thread, self.message, self.class
        )
    }
}

/// Position + thread context handed to passes with every event.
#[derive(Clone, Copy, Debug)]
pub struct EventCtx {
    /// 0-based index of this event in the analyzed stream.
    pub pos: u64,
    /// The thread executing this event.
    pub thread: ThreadId,
}

/// One analysis pass over the event stream.
pub trait AnalyzerPass {
    /// Short stable pass name (used in diagnostics and JSON).
    fn name(&self) -> &'static str;
    /// Observes one event, appending any diagnostics it triggers.
    fn check(&mut self, ctx: EventCtx, ev: &TraceEvent, out: &mut Vec<Diagnostic>);
    /// Ends the pass (end-of-trace findings go here). `ctx.pos` is the
    /// stream length.
    fn finish(&mut self, ctx: EventCtx, out: &mut Vec<Diagnostic>);
}

/// How many diagnostics a report retains. Like the simulator's fault
/// log, the retained list is bounded so a pathological trace cannot blow
/// up memory — but overflow is *counted* per severity
/// ([`AnalysisReport::errors_dropped`] / [`AnalysisReport::lints_dropped`]),
/// never silently lost: [`AnalysisReport::passed`] still fails on dropped
/// errors and strict consumers refuse any truncated report.
const DIAG_LOG_CAP: usize = 4096;

/// The multi-pass driver: a [`TraceSink`] that feeds every event to each
/// registered pass and collects positioned diagnostics.
///
/// Streamable: it can sit in a [`pmo_trace::TeeSink`] next to the timing
/// simulator, or consume a recorded/on-disk trace.
pub struct Analyzer {
    passes: Vec<Box<dyn AnalyzerPass>>,
    diagnostics: Vec<Diagnostic>,
    errors_dropped: u64,
    lints_dropped: u64,
    source: String,
    pos: u64,
    thread: ThreadId,
}

impl fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Analyzer")
            .field("passes", &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>())
            .field("diagnostics", &self.diagnostics.len())
            .field("pos", &self.pos)
            .finish()
    }
}

impl Analyzer {
    /// Creates an empty driver. `source` describes where the trace comes
    /// from (file path, or `workload@seed`) — it is the repro pointer
    /// printed with every report.
    #[must_use]
    pub fn new(source: impl Into<String>) -> Self {
        Analyzer {
            passes: Vec::new(),
            diagnostics: Vec::new(),
            errors_dropped: 0,
            lints_dropped: 0,
            source: source.into(),
            pos: 0,
            thread: ThreadId::MAIN,
        }
    }

    /// Trims the retained list to [`DIAG_LOG_CAP`], counting overflow per
    /// severity (called after every batch of pass output).
    fn enforce_cap(&mut self) {
        while self.diagnostics.len() > DIAG_LOG_CAP {
            match self.diagnostics.pop().expect("list is over the cap").severity {
                Severity::Error => self.errors_dropped += 1,
                Severity::Lint => self.lints_dropped += 1,
            }
        }
    }

    /// Registers a pass (builder style).
    #[must_use]
    pub fn with_pass(mut self, pass: impl AnalyzerPass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Events analyzed so far.
    #[must_use]
    pub fn events_seen(&self) -> u64 {
        self.pos
    }

    /// Diagnostics collected so far (streaming callers can poll this).
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Ends every pass and produces the report.
    #[must_use]
    pub fn finish(mut self) -> AnalysisReport {
        let ctx = EventCtx { pos: self.pos, thread: self.thread };
        for pass in &mut self.passes {
            pass.finish(ctx, &mut self.diagnostics);
        }
        self.enforce_cap();
        AnalysisReport {
            source: self.source,
            events: self.pos,
            diagnostics: self.diagnostics,
            errors_dropped: self.errors_dropped,
            lints_dropped: self.lints_dropped,
        }
    }
}

impl TraceSink for Analyzer {
    fn event(&mut self, ev: TraceEvent) {
        if let TraceEvent::ThreadSwitch { thread } = ev {
            self.thread = thread;
        }
        let ctx = EventCtx { pos: self.pos, thread: self.thread };
        for pass in &mut self.passes {
            pass.check(ctx, &ev, &mut self.diagnostics);
        }
        self.enforce_cap();
        self.pos += 1;
    }
}

/// The result of analyzing one trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Where the trace came from (the deterministic repro pointer).
    pub source: String,
    /// Number of events analyzed.
    pub events: u64,
    /// Retained findings, in trace order per pass (bounded; overflow is
    /// counted in `errors_dropped` / `lints_dropped`).
    pub diagnostics: Vec<Diagnostic>,
    /// Error diagnostics beyond the retained-log cap: counted, not
    /// silently lost ([`AnalysisReport::passed`] fails on these too).
    pub errors_dropped: u64,
    /// Lint diagnostics beyond the retained-log cap.
    pub lints_dropped: u64,
}

impl AnalysisReport {
    /// Retained error-severity findings (`errors_dropped` more may have
    /// been truncated; see [`AnalysisReport::complete`]).
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Retained lint-severity findings.
    pub fn lints(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Lint)
    }

    /// Whether the trace has no correctness violations, retained *or*
    /// dropped (lints allowed).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.errors_dropped == 0 && self.errors().next().is_none()
    }

    /// Whether the trace produced no diagnostics at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.errors_dropped == 0 && self.lints_dropped == 0
    }

    /// Whether the retained list holds *every* diagnostic the passes
    /// produced. Strict consumers (`pmo-analyzer --strict`, the harness
    /// audits) fail a truncated report rather than reason from a sample.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.errors_dropped == 0 && self.lints_dropped == 0
    }

    /// Total diagnostics dropped beyond the retained-log cap.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.errors_dropped + self.lints_dropped
    }

    /// Machine-readable JSON (hand-rolled; stable field names).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"source\":{},", json_string(&self.source)));
        out.push_str(&format!("\"events\":{},", self.events));
        out.push_str(&format!("\"errors\":{},", self.errors().count()));
        out.push_str(&format!("\"lints\":{},", self.lints().count()));
        out.push_str(&format!("\"errors_dropped\":{},", self.errors_dropped));
        out.push_str(&format!("\"lints_dropped\":{},", self.lints_dropped));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"pass\":{},\"class\":{},\"severity\":\"{}\",\"thread\":{},\
                 \"position\":{},\"message\":{}}}",
                json_string(d.pass),
                json_string(d.class.name()),
                d.severity,
                d.thread.raw(),
                d.position,
                json_string(&d.message),
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analyzed {} events from {}: {} error(s), {} lint(s)",
            self.events,
            self.source,
            self.errors().count(),
            self.lints().count()
        )?;
        if !self.complete() {
            write!(f, " ({} dropped from the log)", self.dropped())?;
        }
        writeln!(f)?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Escapes a string as a JSON string literal.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountPass {
        seen: u64,
    }

    impl AnalyzerPass for CountPass {
        fn name(&self) -> &'static str {
            "count"
        }
        fn check(&mut self, ctx: EventCtx, _ev: &TraceEvent, out: &mut Vec<Diagnostic>) {
            self.seen += 1;
            if ctx.pos == 1 {
                out.push(Diagnostic {
                    pass: self.name(),
                    class: ViolationClass::UselessFence,
                    severity: Severity::Lint,
                    thread: ctx.thread,
                    position: ctx.pos,
                    message: "second event".into(),
                });
            }
        }
        fn finish(&mut self, ctx: EventCtx, out: &mut Vec<Diagnostic>) {
            out.push(Diagnostic {
                pass: self.name(),
                class: ViolationClass::WindowLeftOpen,
                severity: Severity::Error,
                thread: ctx.thread,
                position: ctx.pos,
                message: format!("saw {}", self.seen),
            });
        }
    }

    #[test]
    fn driver_positions_and_threads() {
        let mut a = Analyzer::new("test").with_pass(CountPass { seen: 0 });
        a.event(TraceEvent::Fence);
        a.event(TraceEvent::ThreadSwitch { thread: ThreadId::new(5) });
        a.event(TraceEvent::Fence);
        let report = a.finish();
        assert_eq!(report.events, 3);
        assert_eq!(report.diagnostics.len(), 2);
        assert_eq!(report.diagnostics[0].position, 1);
        assert_eq!(report.diagnostics[0].thread, ThreadId::new(5), "switch applies to its event");
        assert_eq!(report.diagnostics[1].position, 3, "finish carries stream length");
        assert!(!report.passed());
        assert!(!report.is_clean());
        assert_eq!(report.lints().count(), 1);
    }

    #[test]
    fn empty_report_is_clean() {
        let report = Analyzer::new("empty").finish();
        assert!(report.is_clean());
        assert!(report.passed());
        assert!(report.to_json().contains("\"errors\":0"));
    }

    /// Emits `per_event` error diagnostics on every event.
    struct FloodPass {
        per_event: usize,
    }

    impl AnalyzerPass for FloodPass {
        fn name(&self) -> &'static str {
            "flood"
        }
        fn check(&mut self, ctx: EventCtx, _ev: &TraceEvent, out: &mut Vec<Diagnostic>) {
            for _ in 0..self.per_event {
                out.push(Diagnostic {
                    pass: self.name(),
                    class: ViolationClass::UnguardedAccess,
                    severity: Severity::Error,
                    thread: ctx.thread,
                    position: ctx.pos,
                    message: "flood".into(),
                });
            }
        }
        fn finish(&mut self, _ctx: EventCtx, _out: &mut Vec<Diagnostic>) {}
    }

    #[test]
    fn diagnostics_beyond_the_cap_are_counted_not_lost() {
        let mut a = Analyzer::new("flood").with_pass(FloodPass { per_event: 1000 });
        for _ in 0..5 {
            a.event(TraceEvent::Fence);
        }
        let report = a.finish();
        assert_eq!(report.diagnostics.len(), DIAG_LOG_CAP, "retained list is capped");
        assert_eq!(report.errors_dropped, 5000 - DIAG_LOG_CAP as u64, "overflow is counted");
        assert!(!report.complete());
        assert!(!report.passed(), "dropped errors still fail the trace");
        assert!(report
            .to_json()
            .contains(&format!("\"errors_dropped\":{}", report.errors_dropped)));
        assert!(report.to_string().contains("dropped from the log"));
        // Retained diagnostics are the earliest ones, in trace order.
        assert_eq!(report.diagnostics[0].position, 0);
        assert!(report.diagnostics.windows(2).all(|w| w[0].position <= w[1].position));
    }

    #[test]
    fn reports_under_the_cap_are_complete() {
        let mut a = Analyzer::new("small").with_pass(FloodPass { per_event: 2 });
        a.event(TraceEvent::Fence);
        let report = a.finish();
        assert_eq!(report.diagnostics.len(), 2);
        assert!(report.complete());
        assert_eq!(report.dropped(), 0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_display_lists_diagnostics() {
        let report = AnalysisReport {
            source: "s".into(),
            events: 1,
            errors_dropped: 0,
            lints_dropped: 0,
            diagnostics: vec![Diagnostic {
                pass: "p",
                class: ViolationClass::CrossThreadRace,
                severity: Severity::Error,
                thread: ThreadId::MAIN,
                position: 0,
                message: "msg".into(),
            }],
        };
        let text = report.to_string();
        assert!(text.contains("cross-thread-race"));
        assert!(text.contains("1 error(s)"));
    }
}
