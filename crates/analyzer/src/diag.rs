//! The shared diagnostics engine: violation classes, severities,
//! positioned diagnostics, the pass trait, and the multi-pass driver.

use std::fmt;

use pmo_trace::{ThreadId, TraceEvent, TraceSink};

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A correctness violation: the trace breaks a discipline the paper's
    /// crash-consistency or isolation argument depends on.
    Error,
    /// A performance lint: the trace is correct but wasteful.
    Lint,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Lint => "lint",
        })
    }
}

/// Every violation class any pass can report, unified so reports and
/// machine-readable output share one taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationClass {
    /// A cache line written this transaction was still dirty (never
    /// flushed) when the commit flag was set or cleared.
    UnflushedDirtyAtCommit,
    /// A cache line was flushed but no fence ordered the flush before the
    /// commit flag was set: the log may persist *after* the flag.
    UnfencedFlushAtCommit,
    /// An in-place (home-location) store executed while the commit flag's
    /// line was not yet persisted: write-ahead-log discipline broken.
    StoreWithoutPersistedLog,
    /// A line was flushed although it had no unpersisted store (wasted
    /// `clwb`).
    DuplicateFlush,
    /// A fence with no preceding flush since the last fence (wasted
    /// `sfence`).
    UselessFence,
    /// Two threads accessed the same PMO line without a happens-before
    /// edge, at least one access being a write.
    CrossThreadRace,
    /// An access raced a detach/revoke: it hit a region whose mapping was
    /// torn down without an intervening ranged shootdown (the paper's
    /// stale-translation hazard, §IV.B).
    StaleWindowAccess,
    /// An access outside any permission window (from [`pmo_trace::PermAudit`]).
    UnguardedAccess,
    /// More simultaneously enabled domains than the discipline allows.
    TooManyOpenWindows,
    /// A grant never revoked before the trace ended.
    WindowLeftOpen,
    /// A PMO detached while a thread still held a grant on it.
    DetachedWhileGranted,
    /// A TLB or DTTLB entry still granted access through a protection key
    /// after the key was reassigned to another domain (missing ranged
    /// shootdown, the model checker's §IV.B invariant).
    StaleKeyGrant,
    /// The materialized PKRU register disagreed with the DTT-derived
    /// permission set for the running thread.
    PkruDesync,
    /// A PTLB entry granted a permission the PT (or the revocation that
    /// should have invalidated it) no longer allows.
    PtlbDesync,
    /// The two hardware designs (MPK virtualization and domain
    /// virtualization) disagreed on an allow/deny decision the paper's
    /// three-legality rule fixes uniquely.
    SchemeDivergence,
}

impl ViolationClass {
    /// Stable machine-readable name (used in JSON output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ViolationClass::UnflushedDirtyAtCommit => "unflushed-dirty-at-commit",
            ViolationClass::UnfencedFlushAtCommit => "unfenced-flush-at-commit",
            ViolationClass::StoreWithoutPersistedLog => "store-without-persisted-log",
            ViolationClass::DuplicateFlush => "duplicate-flush",
            ViolationClass::UselessFence => "useless-fence",
            ViolationClass::CrossThreadRace => "cross-thread-race",
            ViolationClass::StaleWindowAccess => "stale-window-access",
            ViolationClass::UnguardedAccess => "unguarded-access",
            ViolationClass::TooManyOpenWindows => "too-many-open-windows",
            ViolationClass::WindowLeftOpen => "window-left-open",
            ViolationClass::DetachedWhileGranted => "detached-while-granted",
            ViolationClass::StaleKeyGrant => "stale-key-grant",
            ViolationClass::PkruDesync => "pkru-desync",
            ViolationClass::PtlbDesync => "ptlb-desync",
            ViolationClass::SchemeDivergence => "scheme-divergence",
        }
    }
}

impl fmt::Display for ViolationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, anchored to a trace position so it can be reproduced
/// deterministically (same workload + seed, or same trace file, always
/// yields the same position).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which pass produced it.
    pub pass: &'static str,
    /// The violation class.
    pub class: ViolationClass,
    /// Error or lint.
    pub severity: Severity,
    /// The thread executing when the violation fired.
    pub thread: ThreadId,
    /// 0-based index of the offending event in the analyzed stream
    /// (`u64::MAX` at end-of-trace findings is never used; end findings
    /// carry the stream length instead).
    pub position: u64,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at event {} (thread {}): {} ({})",
            self.severity, self.pass, self.position, self.thread, self.message, self.class
        )
    }
}

/// Position + thread context handed to passes with every event.
#[derive(Clone, Copy, Debug)]
pub struct EventCtx {
    /// 0-based index of this event in the analyzed stream.
    pub pos: u64,
    /// The thread executing this event.
    pub thread: ThreadId,
}

/// One analysis pass over the event stream.
pub trait AnalyzerPass {
    /// Short stable pass name (used in diagnostics and JSON).
    fn name(&self) -> &'static str;
    /// Observes one event, appending any diagnostics it triggers.
    fn check(&mut self, ctx: EventCtx, ev: &TraceEvent, out: &mut Vec<Diagnostic>);
    /// Ends the pass (end-of-trace findings go here). `ctx.pos` is the
    /// stream length.
    fn finish(&mut self, ctx: EventCtx, out: &mut Vec<Diagnostic>);
}

/// The multi-pass driver: a [`TraceSink`] that feeds every event to each
/// registered pass and collects positioned diagnostics.
///
/// Streamable: it can sit in a [`pmo_trace::TeeSink`] next to the timing
/// simulator, or consume a recorded/on-disk trace.
pub struct Analyzer {
    passes: Vec<Box<dyn AnalyzerPass>>,
    diagnostics: Vec<Diagnostic>,
    source: String,
    pos: u64,
    thread: ThreadId,
}

impl fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Analyzer")
            .field("passes", &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>())
            .field("diagnostics", &self.diagnostics.len())
            .field("pos", &self.pos)
            .finish()
    }
}

impl Analyzer {
    /// Creates an empty driver. `source` describes where the trace comes
    /// from (file path, or `workload@seed`) — it is the repro pointer
    /// printed with every report.
    #[must_use]
    pub fn new(source: impl Into<String>) -> Self {
        Analyzer {
            passes: Vec::new(),
            diagnostics: Vec::new(),
            source: source.into(),
            pos: 0,
            thread: ThreadId::MAIN,
        }
    }

    /// Registers a pass (builder style).
    #[must_use]
    pub fn with_pass(mut self, pass: impl AnalyzerPass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Events analyzed so far.
    #[must_use]
    pub fn events_seen(&self) -> u64 {
        self.pos
    }

    /// Diagnostics collected so far (streaming callers can poll this).
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Ends every pass and produces the report.
    #[must_use]
    pub fn finish(mut self) -> AnalysisReport {
        let ctx = EventCtx { pos: self.pos, thread: self.thread };
        for pass in &mut self.passes {
            pass.finish(ctx, &mut self.diagnostics);
        }
        AnalysisReport { source: self.source, events: self.pos, diagnostics: self.diagnostics }
    }
}

impl TraceSink for Analyzer {
    fn event(&mut self, ev: TraceEvent) {
        if let TraceEvent::ThreadSwitch { thread } = ev {
            self.thread = thread;
        }
        let ctx = EventCtx { pos: self.pos, thread: self.thread };
        for pass in &mut self.passes {
            pass.check(ctx, &ev, &mut self.diagnostics);
        }
        self.pos += 1;
    }
}

/// The result of analyzing one trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Where the trace came from (the deterministic repro pointer).
    pub source: String,
    /// Number of events analyzed.
    pub events: u64,
    /// Every finding, in trace order per pass.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Lint-severity findings.
    pub fn lints(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Lint)
    }

    /// Whether the trace has no correctness violations (lints allowed).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Whether the trace produced no diagnostics at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable JSON (hand-rolled; stable field names).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"source\":{},", json_string(&self.source)));
        out.push_str(&format!("\"events\":{},", self.events));
        out.push_str(&format!("\"errors\":{},", self.errors().count()));
        out.push_str(&format!("\"lints\":{},", self.lints().count()));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"pass\":{},\"class\":{},\"severity\":\"{}\",\"thread\":{},\
                 \"position\":{},\"message\":{}}}",
                json_string(d.pass),
                json_string(d.class.name()),
                d.severity,
                d.thread.raw(),
                d.position,
                json_string(&d.message),
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "analyzed {} events from {}: {} error(s), {} lint(s)",
            self.events,
            self.source,
            self.errors().count(),
            self.lints().count()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Escapes a string as a JSON string literal.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountPass {
        seen: u64,
    }

    impl AnalyzerPass for CountPass {
        fn name(&self) -> &'static str {
            "count"
        }
        fn check(&mut self, ctx: EventCtx, _ev: &TraceEvent, out: &mut Vec<Diagnostic>) {
            self.seen += 1;
            if ctx.pos == 1 {
                out.push(Diagnostic {
                    pass: self.name(),
                    class: ViolationClass::UselessFence,
                    severity: Severity::Lint,
                    thread: ctx.thread,
                    position: ctx.pos,
                    message: "second event".into(),
                });
            }
        }
        fn finish(&mut self, ctx: EventCtx, out: &mut Vec<Diagnostic>) {
            out.push(Diagnostic {
                pass: self.name(),
                class: ViolationClass::WindowLeftOpen,
                severity: Severity::Error,
                thread: ctx.thread,
                position: ctx.pos,
                message: format!("saw {}", self.seen),
            });
        }
    }

    #[test]
    fn driver_positions_and_threads() {
        let mut a = Analyzer::new("test").with_pass(CountPass { seen: 0 });
        a.event(TraceEvent::Fence);
        a.event(TraceEvent::ThreadSwitch { thread: ThreadId::new(5) });
        a.event(TraceEvent::Fence);
        let report = a.finish();
        assert_eq!(report.events, 3);
        assert_eq!(report.diagnostics.len(), 2);
        assert_eq!(report.diagnostics[0].position, 1);
        assert_eq!(report.diagnostics[0].thread, ThreadId::new(5), "switch applies to its event");
        assert_eq!(report.diagnostics[1].position, 3, "finish carries stream length");
        assert!(!report.passed());
        assert!(!report.is_clean());
        assert_eq!(report.lints().count(), 1);
    }

    #[test]
    fn empty_report_is_clean() {
        let report = Analyzer::new("empty").finish();
        assert!(report.is_clean());
        assert!(report.passed());
        assert!(report.to_json().contains("\"errors\":0"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_display_lists_diagnostics() {
        let report = AnalysisReport {
            source: "s".into(),
            events: 1,
            diagnostics: vec![Diagnostic {
                pass: "p",
                class: ViolationClass::CrossThreadRace,
                severity: Severity::Error,
                thread: ThreadId::MAIN,
                position: 0,
                message: "msg".into(),
            }],
        };
        let text = report.to_string();
        assert!(text.contains("cross-thread-race"));
        assert!(text.contains("1 error(s)"));
    }
}
