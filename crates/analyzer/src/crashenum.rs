//! Exhaustive crash-image enumeration under the x86 persistency model.
//!
//! Fault-injection campaigns (`faultsim`) *sample* crash points; this
//! pass *enumerates*. For every fence-delimited window of a trace it
//! computes the complete set of distinct memory images a power failure
//! anywhere inside that window could leave on NVM, under the
//! line-granularity buffered persistency model the simulator implements:
//!
//! * stores land in a volatile cache at cache-line (64 B) granularity;
//! * a dirty line may persist *spontaneously* at any moment (cache
//!   eviction), at whatever value it holds then;
//! * `clwb` (a [`TraceEvent::Flush`]) forces writeback, but durability
//!   is only guaranteed once the next `sfence` ([`TraceEvent::Fence`])
//!   retires;
//! * lines persist independently of one another — there is no ordering
//!   between lines within a window.
//!
//! Consequently, within one window each line's reachable persisted
//! states are: its persisted state at window entry, plus its content
//! after each store applied to it during the window. Lines are
//! independent, so the reachable *images* are the cartesian product of
//! the per-line candidate sets. At a fence the window settles: lines
//! flushed during the window become durable at their value as of the
//! last flush; lines left dirty carry both their persisted and current
//! values into the next window as candidates.
//!
//! Each element of the product gets a deterministic *rank* (a
//! mixed-radix index over the per-line candidate lists, lines in
//! ascending order), which serves as a stable reproduction id: the same
//! trace always enumerates the same image at the same
//! `(window, rank)`. Images are deduplicated by a canonical
//! order-independent hash ([`image_hash`]) that can be compared
//! directly against the hash of a real pool's
//! `PoolStorage::line_image()`.
//!
//! ## Soundness bound
//!
//! The model is *line-atomic*: every 64-byte line persists entirely at
//! one of its candidate values. Sub-line torn writes
//! (`FaultKind::TornWrite` mixes words from two candidate values inside
//! one line) and media errors (poisoned lines) produce images outside
//! the enumerated set; those classes are covered by the sampling
//! campaign, not this enumeration. Reconstruction also requires the
//! trace to contain the pool's birth (pool creation re-emits the header
//! formatting as valued stores), and enumeration is only sound for
//! pools whose stores all carry data: a plain [`TraceEvent::Store`]
//! (no payload) makes the pool *opaque* and excludes it, counted in
//! [`EnumResult::opaque_pools`].

use std::collections::{BTreeMap, BTreeSet};

use pmo_trace::{PmoId, ThreadId, TraceEvent, Va};

use crate::diag::{Diagnostic, Severity, ViolationClass};

/// Cache-line size the persistency model works at.
pub const LINE: u64 = 64;

/// One cache line's bytes.
pub type LineImage = [u8; LINE as usize];

/// Pass name used in diagnostics.
pub const PASS_NAME: &str = "crash-enum";

/// Enumeration limits; all caps are deterministic (count-based, never
/// time- or randomness-based) and every drop is counted, never silent.
#[derive(Clone, Copy, Debug)]
pub struct EnumConfig {
    /// Cap on distinct ranks expanded per (window, pool). Ranks
    /// `0..cap` (mixed-radix order) are kept; the rest are counted in
    /// [`WindowImages::images_dropped`].
    pub max_images_per_window: u64,
    /// Cap on emitted [`WindowImages`]; excess windows are counted in
    /// [`EnumResult::windows_dropped`].
    pub max_windows: usize,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig { max_images_per_window: 4096, max_windows: 4096 }
    }
}

/// The candidate persisted states of one cache line within a window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineChoices {
    /// Line index within the pool (offset / 64).
    pub line: u64,
    /// Distinct reachable persisted states, in first-reached order;
    /// `states[0]` is always the window-entry persisted state.
    pub states: Vec<LineImage>,
}

/// One enumerated crash image, identified by its mixed-radix rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashImage {
    /// Mixed-radix rank over the window's [`LineChoices`] (ascending
    /// line order, first line least significant). Stable repro id.
    pub rank: u64,
    /// Canonical image hash (see [`image_hash`]).
    pub hash: u64,
}

/// All crash images reachable within one fence-delimited window for one
/// pool.
#[derive(Clone, Debug)]
pub struct WindowImages {
    /// 0-based fence-delimited window ordinal within the trace.
    pub window: u64,
    /// Event index of the first event inside the window.
    pub start_pos: u64,
    /// Event index one past the window (the fence, or trace length for
    /// the final partial window).
    pub end_pos: u64,
    /// The pool.
    pub pmo: PmoId,
    /// Attached base VA of the pool.
    pub base: Va,
    /// Pool size in bytes.
    pub size: u64,
    /// Persisted state at window entry for every tracked line (sorted
    /// by line; all-zero lines omitted — an untracked line is zero).
    pub entry_lines: Vec<(u64, LineImage)>,
    /// Lines with more than one reachable state this window (sorted by
    /// line). Empty means the window has exactly one image: the entry
    /// state.
    pub choices: Vec<LineChoices>,
    /// Distinct images, deduplicated by hash, ranks ascending.
    pub images: Vec<CrashImage>,
    /// Ranks beyond [`EnumConfig::max_images_per_window`], not
    /// expanded. When nonzero the enumeration for this window is a
    /// sound prefix, not exhaustive.
    pub images_dropped: u64,
}

impl WindowImages {
    /// Total size of the un-deduplicated product space.
    #[must_use]
    pub fn product_size(&self) -> u64 {
        let mut total: u64 = 1;
        for c in &self.choices {
            total = total.saturating_mul(c.states.len() as u64);
        }
        total
    }

    /// The mixed-radix digits of `rank` (one per entry of
    /// [`WindowImages::choices`], same order).
    #[must_use]
    pub fn digits(&self, rank: u64) -> Vec<usize> {
        let mut digits = Vec::with_capacity(self.choices.len());
        let mut r = rank;
        for c in &self.choices {
            let radix = c.states.len() as u64;
            digits.push((r % radix) as usize);
            r /= radix;
        }
        digits
    }

    /// Materializes the full sparse line image for `rank`: entry lines
    /// with each choice line substituted by its selected state.
    /// All-zero lines are omitted (a missing line reads as zero), so
    /// the result is directly comparable with
    /// `PoolStorage::line_image()`.
    #[must_use]
    pub fn image_lines(&self, rank: u64) -> Vec<(u64, LineImage)> {
        let digits = self.digits(rank);
        let chosen: BTreeMap<u64, LineImage> =
            self.choices.iter().zip(&digits).map(|(c, &d)| (c.line, c.states[d])).collect();
        let mut out: BTreeMap<u64, LineImage> = self.entry_lines.iter().copied().collect();
        for (line, img) in chosen {
            out.insert(line, img);
        }
        out.into_iter().filter(|(_, img)| img.iter().any(|&b| b != 0)).collect()
    }
}

/// The result of enumerating a whole trace.
#[derive(Clone, Debug, Default)]
pub struct EnumResult {
    /// Emitted windows (only windows with store/flush activity on a
    /// pool produce an entry — quiet windows add no new images).
    pub windows: Vec<WindowImages>,
    /// Total fence-delimited windows in the trace (including the final
    /// partial window when the trace does not end on a fence).
    pub total_windows: u64,
    /// Windows with activity that were not emitted because
    /// [`EnumConfig::max_windows`] was reached.
    pub windows_dropped: u64,
    /// Pools excluded because a payload-less store made their contents
    /// unreconstructable. Images for these pools are *not* enumerated.
    pub opaque_pools: Vec<PmoId>,
}

impl EnumResult {
    /// Every distinct image hash enumerated for `pmo`, across all
    /// windows. A real crash image of the pool (at line granularity)
    /// must hash into this set unless drops occurred.
    #[must_use]
    pub fn pool_hashes(&self, pmo: PmoId) -> BTreeSet<u64> {
        self.windows
            .iter()
            .filter(|w| w.pmo == pmo)
            .flat_map(|w| w.images.iter().map(|i| i.hash))
            .collect()
    }

    /// Sum of distinct images across all windows.
    #[must_use]
    pub fn total_images(&self) -> u64 {
        self.windows.iter().map(|w| w.images.len() as u64).sum()
    }

    /// Sum of dropped (unexpanded) ranks across all windows.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.windows.iter().map(|w| w.images_dropped).sum::<u64>()
    }

    /// Whether every reachable image was expanded: nothing dropped and
    /// no pool opaque.
    #[must_use]
    pub fn exhaustive(&self) -> bool {
        self.windows_dropped == 0 && self.total_dropped() == 0 && self.opaque_pools.is_empty()
    }
}

/// splitmix64 — the same deterministic mixer the storage fault model
/// uses.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One line's contribution to an image hash: 0 for an all-zero line
/// (absent lines read as zero, so they must not contribute), otherwise
/// a mix over the line index and its eight words.
#[must_use]
pub fn line_contribution(line: u64, bytes: &LineImage) -> u64 {
    if bytes.iter().all(|&b| b == 0) {
        return 0;
    }
    let mut h = mix(line.wrapping_mul(0x2545_f491_4f6c_dd1d));
    for w in bytes.chunks_exact(8) {
        h = mix(h ^ u64::from_le_bytes(w.try_into().expect("8-byte chunk")));
    }
    h
}

/// Canonical order-independent hash of a sparse line image: the
/// wrapping sum of every non-zero line's [`line_contribution`]. Because
/// addition commutes, hashing `PoolStorage::line_image()` output and
/// hashing an enumerated image agree regardless of line order, and the
/// enumerator can update a hash incrementally as it walks ranks.
#[must_use]
pub fn image_hash(lines: &[(u64, LineImage)]) -> u64 {
    lines.iter().fold(0u64, |acc, (line, bytes)| acc.wrapping_add(line_contribution(*line, bytes)))
}

/// Per-line tracking state.
#[derive(Clone)]
struct LineTrack {
    /// Durable content.
    persisted: LineImage,
    /// Cache content (last stored value).
    current: LineImage,
    /// Value captured by the last flush this window, pending the fence.
    flushed: Option<LineImage>,
    /// Reachable persisted states this window (deduplicated,
    /// first-reached order, `[0]` = window-entry persisted state).
    candidates: Vec<LineImage>,
}

impl LineTrack {
    fn new() -> Self {
        let zero = [0u8; LINE as usize];
        LineTrack { persisted: zero, current: zero, flushed: None, candidates: vec![zero] }
    }

    fn push_candidate(&mut self, img: LineImage) {
        if !self.candidates.contains(&img) {
            self.candidates.push(img);
        }
    }

    /// Settles the line at a fence: flushed content becomes durable,
    /// and next window's candidates are recomputed.
    fn settle(&mut self) {
        if let Some(v) = self.flushed.take() {
            self.persisted = v;
        }
        self.candidates.clear();
        self.candidates.push(self.persisted);
        if self.current != self.persisted {
            self.candidates.push(self.current);
        }
    }
}

/// Per-pool tracking state.
struct PoolTrack {
    pmo: PmoId,
    base: Va,
    size: u64,
    lines: BTreeMap<u64, LineTrack>,
    /// Saw a store or flush in the current window.
    active: bool,
    /// Saw a payload-less store: contents unreconstructable.
    opaque: bool,
}

impl PoolTrack {
    fn contains(&self, va: Va) -> bool {
        va >= self.base && va < self.base + self.size
    }

    fn line_of(&self, va: Va) -> u64 {
        (va - self.base) / LINE
    }
}

/// Streaming crash-image enumerator. Feed events in order (or use
/// [`enumerate`] for a slice), then [`CrashEnumerator::finish`].
pub struct CrashEnumerator {
    config: EnumConfig,
    pools: Vec<PoolTrack>,
    result: EnumResult,
    window: u64,
    window_start: u64,
    pos: u64,
}

impl CrashEnumerator {
    /// New enumerator with the given limits.
    #[must_use]
    pub fn new(config: EnumConfig) -> Self {
        CrashEnumerator {
            config,
            pools: Vec::new(),
            result: EnumResult::default(),
            window: 0,
            window_start: 0,
            pos: 0,
        }
    }

    /// Observes one event.
    pub fn event(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Attach { pmo, base, size, nvm }
                if nvm && !self.pools.iter().any(|p| p.pmo == pmo) =>
            {
                self.pools.push(PoolTrack {
                    pmo,
                    base,
                    size,
                    lines: BTreeMap::new(),
                    active: false,
                    opaque: false,
                });
            }
            TraceEvent::StoreData { va, size, data } => {
                self.apply_store(va, size, data);
            }
            TraceEvent::Store { va, .. } => {
                // A store with no payload: whatever pool it hits can no
                // longer be reconstructed byte-exactly.
                if let Some(p) = self.pools.iter_mut().find(|p| p.contains(va)) {
                    if !p.opaque {
                        p.opaque = true;
                        self.result.opaque_pools.push(p.pmo);
                    }
                }
            }
            TraceEvent::Flush { va } => {
                if let Some(p) = self.pools.iter_mut().find(|p| p.contains(va)) {
                    let line = p.line_of(va);
                    p.active = true;
                    let t = p.lines.entry(line).or_insert_with(LineTrack::new);
                    t.flushed = Some(t.current);
                }
            }
            TraceEvent::Fence => {
                self.close_window(self.pos + 1);
            }
            _ => {}
        }
        self.pos += 1;
    }

    fn apply_store(&mut self, va: Va, size: u8, data: u64) {
        let Some(p) = self.pools.iter_mut().find(|p| p.contains(va)) else {
            return;
        };
        p.active = true;
        let bytes = data.to_le_bytes();
        // A chunked store is at most 8 bytes but need not be aligned,
        // so it can straddle two lines; apply byte-wise per line.
        let mut touched: Vec<u64> = Vec::with_capacity(2);
        for (i, &b) in bytes.iter().take(size as usize).enumerate() {
            let off = va - p.base + i as u64;
            if off >= p.size {
                break;
            }
            let line = off / LINE;
            let t = p.lines.entry(line).or_insert_with(LineTrack::new);
            t.current[(off % LINE) as usize] = b;
            if !touched.contains(&line) {
                touched.push(line);
            }
        }
        for line in touched {
            let t = p.lines.get_mut(&line).expect("just inserted");
            let img = t.current;
            t.push_candidate(img);
        }
    }

    /// Closes the current window at `end_pos`: emits images for active
    /// pools, settles every line, advances the window counter.
    fn close_window(&mut self, end_pos: u64) {
        let window = self.window;
        let start_pos = self.window_start;
        let cap = self.config.max_images_per_window;
        for p in &mut self.pools {
            if p.active && !p.opaque {
                if self.result.windows.len() < self.config.max_windows {
                    let entry_lines: Vec<(u64, LineImage)> = p
                        .lines
                        .iter()
                        .filter(|(_, t)| t.candidates[0].iter().any(|&b| b != 0))
                        .map(|(&line, t)| (line, t.candidates[0]))
                        .collect();
                    let choices: Vec<LineChoices> = p
                        .lines
                        .iter()
                        .filter(|(_, t)| t.candidates.len() > 1)
                        .map(|(&line, t)| LineChoices { line, states: t.candidates.clone() })
                        .collect();
                    let base_sum = image_hash(&entry_lines);
                    // Per choice line, each state's hash delta versus
                    // the entry state; image hashes then come from
                    // wrapping sums, never from re-hashing whole
                    // images.
                    let deltas: Vec<Vec<u64>> = choices
                        .iter()
                        .map(|c| {
                            let entry = line_contribution(c.line, &c.states[0]);
                            c.states
                                .iter()
                                .map(|s| line_contribution(c.line, s).wrapping_sub(entry))
                                .collect()
                        })
                        .collect();
                    let mut total: u64 = 1;
                    for c in &choices {
                        total = total.saturating_mul(c.states.len() as u64);
                    }
                    let expand = total.min(cap);
                    let mut seen: BTreeSet<u64> = BTreeSet::new();
                    let mut images: Vec<CrashImage> = Vec::new();
                    let mut digits: Vec<usize> = vec![0; choices.len()];
                    for rank in 0..expand {
                        let mut h = base_sum;
                        for (i, &d) in digits.iter().enumerate() {
                            h = h.wrapping_add(deltas[i][d]);
                        }
                        if seen.insert(h) {
                            images.push(CrashImage { rank, hash: h });
                        }
                        // Odometer step.
                        for (i, d) in digits.iter_mut().enumerate() {
                            *d += 1;
                            if *d < choices[i].states.len() {
                                break;
                            }
                            *d = 0;
                        }
                    }
                    self.result.windows.push(WindowImages {
                        window,
                        start_pos,
                        end_pos,
                        pmo: p.pmo,
                        base: p.base,
                        size: p.size,
                        entry_lines,
                        choices,
                        images,
                        images_dropped: total - expand,
                    });
                } else {
                    self.result.windows_dropped += 1;
                }
            }
            p.active = false;
            for t in p.lines.values_mut() {
                t.settle();
            }
        }
        self.window += 1;
        self.window_start = end_pos;
    }

    /// Ends the trace: emits the final partial window (if any events
    /// followed the last fence) and returns the result.
    #[must_use]
    pub fn finish(mut self) -> EnumResult {
        if self.pos > self.window_start || self.window == 0 {
            self.close_window(self.pos);
        }
        self.result.total_windows = self.window;
        self.result
    }
}

/// Enumerates a whole recorded trace.
#[must_use]
pub fn enumerate(events: &[TraceEvent], config: EnumConfig) -> EnumResult {
    let mut e = CrashEnumerator::new(config);
    for ev in events {
        e.event(ev);
    }
    e.finish()
}

/// Runs `oracle` over every enumerated image and lifts failures into
/// positioned diagnostics. The oracle returns `Some(detail)` when the
/// image recovers into an invariant-violating state, `None` when it is
/// acceptable (recovered clean, or gracefully quarantined).
pub fn verify_images<F>(result: &EnumResult, mut oracle: F) -> Vec<Diagnostic>
where
    F: FnMut(&WindowImages, &CrashImage) -> Option<String>,
{
    let mut out = Vec::new();
    for w in &result.windows {
        for img in &w.images {
            if let Some(detail) = oracle(w, img) {
                out.push(Diagnostic {
                    pass: PASS_NAME,
                    class: ViolationClass::CrashImageViolation,
                    severity: Severity::Error,
                    thread: ThreadId::MAIN,
                    position: w.end_pos,
                    message: format!(
                        "crash image window={} rank={} hash={:#018x} pmo={}: {detail}",
                        w.window, img.rank, img.hash, w.pmo
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: Va = 0x1000;

    fn attach() -> TraceEvent {
        TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 4096, nvm: true }
    }

    fn st(off: u64, data: u64) -> TraceEvent {
        TraceEvent::StoreData { va: BASE + off, size: 8, data }
    }

    fn flush(off: u64) -> TraceEvent {
        TraceEvent::Flush { va: BASE + off }
    }

    fn line_with(off: u64, data: u64) -> (u64, LineImage) {
        let mut img = [0u8; LINE as usize];
        img[(off % LINE) as usize..][..8].copy_from_slice(&data.to_le_bytes());
        (off / LINE, img)
    }

    #[test]
    fn single_store_window_has_two_images() {
        let r = enumerate(&[attach(), st(0, 7), TraceEvent::Fence], EnumConfig::default());
        assert_eq!(r.total_windows, 1);
        assert_eq!(r.windows.len(), 1);
        let w = &r.windows[0];
        assert_eq!(w.choices.len(), 1);
        assert_eq!(w.images.len(), 2, "line absent (zero) or holding 7");
        let hashes = r.pool_hashes(PmoId::new(1));
        assert!(hashes.contains(&image_hash(&[])), "the all-zero image is reachable");
        assert!(hashes.contains(&image_hash(&[line_with(0, 7)])));
        assert!(r.exhaustive());
    }

    #[test]
    fn flush_does_not_remove_entry_candidate_within_window() {
        // store, clwb, store again, fence: mid-window the line can still
        // be at its entry state (clwb is not durable until the fence),
        // at 7, or at 9 — three images.
        let r = enumerate(
            &[attach(), st(0, 7), flush(0), st(0, 9), TraceEvent::Fence],
            EnumConfig::default(),
        );
        let w = &r.windows[0];
        assert_eq!(w.images.len(), 3);
        // After the fence the flush settled at 7 and the line is dirty
        // at 9: the next window carries both.
        let r2 = enumerate(
            &[
                attach(),
                st(0, 7),
                flush(0),
                st(0, 9),
                TraceEvent::Fence,
                st(64, 1),
                TraceEvent::Fence,
            ],
            EnumConfig::default(),
        );
        let w2 = &r2.windows[1];
        let carry = w2.choices.iter().find(|c| c.line == 0).expect("line 0 still dirty");
        assert_eq!(carry.states.len(), 2);
        assert_eq!(carry.states[0], line_with(0, 7).1, "persisted = value at last flush");
        assert_eq!(carry.states[1], line_with(0, 9).1, "current = last store");
    }

    #[test]
    fn settled_lines_stop_contributing_choices() {
        let r = enumerate(
            &[
                attach(),
                st(0, 7),
                flush(0),
                TraceEvent::Fence,
                st(64, 5),
                flush(64),
                TraceEvent::Fence,
            ],
            EnumConfig::default(),
        );
        assert_eq!(r.windows.len(), 2);
        let w2 = &r.windows[1];
        assert_eq!(w2.choices.len(), 1, "only line 1 is in play in window 1");
        assert_eq!(w2.choices[0].line, 1);
        // Window 1's entry image contains settled line 0.
        assert_eq!(w2.entry_lines, vec![line_with(0, 7)]);
        // Its richest image is both lines set.
        let both = image_hash(&[line_with(0, 7), line_with(64, 5)]);
        assert!(w2.images.iter().any(|i| i.hash == both));
    }

    #[test]
    fn identical_values_deduplicate() {
        // Two stores writing the same value produce one extra
        // candidate, not two; rewriting the entry value adds none.
        let r =
            enumerate(&[attach(), st(0, 7), st(0, 7), TraceEvent::Fence], EnumConfig::default());
        assert_eq!(r.windows[0].choices[0].states.len(), 2);
        let r2 =
            enumerate(&[attach(), st(0, 7), st(0, 0), TraceEvent::Fence], EnumConfig::default());
        // Candidates: zero (entry), 7, zero again (deduped) => 2.
        assert_eq!(r2.windows[0].choices[0].states.len(), 2);
        // But the two *images* hash distinctly from each other.
        assert_eq!(r2.windows[0].images.len(), 2);
    }

    #[test]
    fn unaligned_store_straddles_two_lines() {
        let r = enumerate(
            &[
                attach(),
                TraceEvent::StoreData { va: BASE + 60, size: 8, data: u64::MAX },
                TraceEvent::Fence,
            ],
            EnumConfig::default(),
        );
        let w = &r.windows[0];
        assert_eq!(w.choices.len(), 2, "lines 0 and 1 both gained a candidate");
        assert_eq!(w.images.len(), 4);
        let mut l0 = [0u8; 64];
        l0[60..].fill(0xff);
        let mut l1 = [0u8; 64];
        l1[..4].fill(0xff);
        assert!(w.images.iter().any(|i| i.hash == image_hash(&[(0, l0), (1, l1)])));
        assert!(w.images.iter().any(|i| i.hash == image_hash(&[(0, l0)])), "line 0 persists alone");
    }

    #[test]
    fn image_lines_round_trip_hashes() {
        let events = [
            attach(),
            st(0, 7),
            st(8, 9),
            st(64, 3),
            TraceEvent::Fence,
            st(128, 1),
            TraceEvent::Fence,
        ];
        let r = enumerate(&events, EnumConfig::default());
        for w in &r.windows {
            for img in &w.images {
                assert_eq!(image_hash(&w.image_lines(img.rank)), img.hash, "window {}", w.window);
            }
        }
    }

    #[test]
    fn payloadless_store_makes_pool_opaque() {
        let r = enumerate(
            &[attach(), TraceEvent::Store { va: BASE, size: 8 }, st(64, 3), TraceEvent::Fence],
            EnumConfig::default(),
        );
        assert!(r.windows.is_empty());
        assert_eq!(r.opaque_pools, vec![PmoId::new(1)]);
        assert!(!r.exhaustive());
    }

    #[test]
    fn image_cap_counts_drops() {
        // 13 lines with 2 states each = 8192 raw images; cap at 16.
        let mut events = vec![attach()];
        for i in 0..13 {
            events.push(st(i * 64, i + 1));
        }
        events.push(TraceEvent::Fence);
        let cfg = EnumConfig { max_images_per_window: 16, ..EnumConfig::default() };
        let r = enumerate(&events, cfg);
        let w = &r.windows[0];
        assert_eq!(w.images.len(), 16);
        assert_eq!(w.images_dropped, 8192 - 16);
        assert!(!r.exhaustive());
    }

    #[test]
    fn final_partial_window_is_emitted() {
        let r = enumerate(&[attach(), st(0, 7)], EnumConfig::default());
        assert_eq!(r.total_windows, 1);
        assert_eq!(r.windows.len(), 1);
        assert_eq!(r.windows[0].end_pos, 2);
        assert_eq!(r.windows[0].images.len(), 2);
    }

    #[test]
    fn stores_outside_any_pool_are_ignored() {
        let r = enumerate(
            &[attach(), TraceEvent::StoreData { va: 0x10, size: 8, data: 5 }, TraceEvent::Fence],
            EnumConfig::default(),
        );
        assert!(r.windows.is_empty(), "no activity inside the pool");
    }

    #[test]
    fn verify_images_positions_diagnostics_at_window_end() {
        let r = enumerate(&[attach(), st(0, 7), TraceEvent::Fence], EnumConfig::default());
        let zero_hash = image_hash(&[]);
        let diags =
            verify_images(&r, |_, img| (img.hash != zero_hash).then(|| "planted".to_string()));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].class, ViolationClass::CrashImageViolation);
        assert_eq!(diags[0].position, 3);
        assert!(diags[0].message.contains("rank=1"), "{}", diags[0].message);
    }

    #[test]
    fn mixed_radix_ranks_are_stable() {
        let events = [attach(), st(0, 7), st(64, 3), TraceEvent::Fence];
        let a = enumerate(&events, EnumConfig::default());
        let b = enumerate(&events, EnumConfig::default());
        let ra: Vec<_> = a.windows[0].images.iter().map(|i| (i.rank, i.hash)).collect();
        let rb: Vec<_> = b.windows[0].images.iter().map(|i| (i.rank, i.hash)).collect();
        assert_eq!(ra, rb);
        // rank 0 = everything at entry state (all zero here).
        assert_eq!(a.windows[0].images[0].hash, image_hash(&[]));
    }
}
