//! Pass 1: persist-ordering / crash-consistency checking (the PMTest /
//! XFDetector mold, over `pmo-trace` events).
//!
//! The checker shadows every persistent cache line through a three-state
//! machine (`Dirty` → `FlushPending` → `Persisted`; stores dirty, `Flush`
//! arms the writeback, `Fence` makes armed writebacks durable) and
//! enforces the runtime's redo-log commit protocol at its two ordering
//! points:
//!
//! * when the commit flag is **set**, every log-area line written this
//!   transaction must be `Persisted` — a `Dirty` log line means the
//!   commit flag can reach NVM before the log it covers
//!   ([`ViolationClass::UnflushedDirtyAtCommit`]), a `FlushPending` one
//!   means the flush was issued but never fenced
//!   ([`ViolationClass::UnfencedFlushAtCommit`]);
//! * while the flag is set, every in-place (home-location) store requires
//!   the flag's own line to be `Persisted` first — otherwise the home
//!   write is not covered by a durable log record
//!   ([`ViolationClass::StoreWithoutPersistedLog`]); and when the flag is
//!   **cleared**, the home lines must themselves be persisted.
//!
//! Two performance lints ride along: flushing a line with nothing dirty
//! on it ([`ViolationClass::DuplicateFlush`]) and fencing with no flush
//! to order ([`ViolationClass::UselessFence`]).
//!
//! Lines never stored in the trace may still be flushed without a lint:
//! pool creation and recovery initialize headers in kernel context, whose
//! stores are not part of the user-level trace.

use std::collections::{BTreeMap, BTreeSet};

use pmo_runtime::{hdr, heap_base_for, HEADER_SIZE, LINE};
use pmo_trace::{PmoId, TraceEvent, Va};

use crate::diag::{AnalyzerPass, Diagnostic, EventCtx, Severity, ViolationClass};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LineState {
    Dirty,
    FlushPending,
    Persisted,
}

#[derive(Debug)]
struct PoolState {
    pmo: PmoId,
    end: Va,
    /// The redo-log area `[log_start, log_end)`.
    log_start: Va,
    log_end: Va,
    /// VA of the commit-flag field (`base + hdr::COMMIT_FLAG`).
    flag_va: Va,
    /// Line holding the commit flag (the header line).
    flag_line: Va,
    /// Whether the commit flag is currently set (store-toggled).
    commit_open: bool,
    /// Lines stored in place while the flag was set.
    home_lines: BTreeSet<Va>,
}

/// The persist-ordering / crash-consistency pass.
#[derive(Debug, Default)]
pub struct PersistOrderPass {
    /// base -> pool protocol state.
    pools: BTreeMap<Va, PoolState>,
    /// Shadow state per cache line (only lines inside attached pools).
    lines: BTreeMap<Va, LineState>,
    /// `Flush` events since the last `Fence`.
    flushes_since_fence: u64,
}

impl PersistOrderPass {
    /// Creates the pass.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn pool_base_of(&self, va: Va) -> Option<Va> {
        let (base, pool) = self.pools.range(..=va).next_back()?;
        (va < pool.end).then_some(*base)
    }

    fn purge_lines(&mut self, base: Va, end: Va) {
        self.lines.retain(|va, _| *va < base || *va >= end);
    }

    fn diag(
        ctx: EventCtx,
        class: ViolationClass,
        severity: Severity,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            pass: "persist-order",
            class,
            severity,
            thread: ctx.thread,
            position: ctx.pos,
            message,
        }
    }

    /// Emits a diagnostic per non-persisted log line at the commit point.
    fn check_log_persisted(&self, base: Va, ctx: EventCtx, out: &mut Vec<Diagnostic>) {
        let pool = &self.pools[&base];
        let mut line = pool.log_start & !(LINE - 1);
        while line < pool.log_end {
            match self.lines.get(&line) {
                Some(LineState::Dirty) => out.push(Self::diag(
                    ctx,
                    ViolationClass::UnflushedDirtyAtCommit,
                    Severity::Error,
                    format!(
                        "commit flag of pmo {} set while log line {line:#x} is dirty (never flushed)",
                        pool.pmo
                    ),
                )),
                Some(LineState::FlushPending) => out.push(Self::diag(
                    ctx,
                    ViolationClass::UnfencedFlushAtCommit,
                    Severity::Error,
                    format!(
                        "commit flag of pmo {} set while log line {line:#x} is flushed but unfenced",
                        pool.pmo
                    ),
                )),
                _ => {}
            }
            line += LINE;
        }
    }

    fn check_home_persisted(&self, base: Va, ctx: EventCtx, out: &mut Vec<Diagnostic>) {
        let pool = &self.pools[&base];
        for &line in &pool.home_lines {
            match self.lines.get(&line) {
                Some(LineState::Dirty) => out.push(Self::diag(
                    ctx,
                    ViolationClass::UnflushedDirtyAtCommit,
                    Severity::Error,
                    format!(
                        "commit flag of pmo {} cleared while home line {line:#x} is dirty",
                        pool.pmo
                    ),
                )),
                Some(LineState::FlushPending) => out.push(Self::diag(
                    ctx,
                    ViolationClass::UnfencedFlushAtCommit,
                    Severity::Error,
                    format!(
                        "commit flag of pmo {} cleared while home line {line:#x} is unfenced",
                        pool.pmo
                    ),
                )),
                _ => {}
            }
        }
    }

    fn store(
        &mut self,
        va: Va,
        size: u8,
        data: Option<u64>,
        ctx: EventCtx,
        out: &mut Vec<Diagnostic>,
    ) {
        let Some(base) = self.pool_base_of(va) else { return };
        // The commit flag is an 8-byte field only ever written whole. A
        // valued store tells us the flag's new value directly; a legacy
        // (unvalued) store toggles the protocol phase blindly. Idempotent
        // valued writes (e.g. header formatting storing 0 over a clear
        // flag) change no phase.
        if va == self.pools[&base].flag_va {
            let was_open = self.pools[&base].commit_open;
            let now_open = data.map_or(!was_open, |v| v != 0);
            if now_open && !was_open {
                self.check_log_persisted(base, ctx, out);
                let pool = self.pools.get_mut(&base).expect("present");
                pool.commit_open = true;
                pool.home_lines.clear();
            } else if !now_open && was_open {
                self.check_home_persisted(base, ctx, out);
                let pool = self.pools.get_mut(&base).expect("present");
                pool.commit_open = false;
                pool.home_lines.clear();
            }
        } else if self.pools[&base].commit_open {
            // In-place store under an open commit: write-ahead discipline
            // requires the durable commit flag (hence the log) first.
            let pool = &self.pools[&base];
            if self.lines.get(&pool.flag_line) != Some(&LineState::Persisted) {
                out.push(Self::diag(
                    ctx,
                    ViolationClass::StoreWithoutPersistedLog,
                    Severity::Error,
                    format!(
                        "in-place store at {va:#x} in pmo {} before the commit flag persisted",
                        pool.pmo
                    ),
                ));
            }
            let end = va + u64::from(size).max(1);
            let pool = self.pools.get_mut(&base).expect("present");
            let mut line = va & !(LINE - 1);
            while line < end {
                pool.home_lines.insert(line);
                line += LINE;
            }
        }
        // Every store dirties its line(s).
        let end = va + u64::from(size).max(1);
        let mut line = va & !(LINE - 1);
        while line < end {
            self.lines.insert(line, LineState::Dirty);
            line += LINE;
        }
    }

    fn flush(&mut self, va: Va, ctx: EventCtx, out: &mut Vec<Diagnostic>) {
        self.flushes_since_fence += 1;
        let line = va & !(LINE - 1);
        if self.pool_base_of(line).is_none() {
            return;
        }
        match self.lines.get(&line) {
            Some(LineState::Dirty) | None => {
                // Never-stored lines get an initialization flush without a
                // lint (the dirtying stores ran in kernel context).
                self.lines.insert(line, LineState::FlushPending);
            }
            Some(LineState::FlushPending) => out.push(Self::diag(
                ctx,
                ViolationClass::DuplicateFlush,
                Severity::Lint,
                format!("line {line:#x} flushed again before the pending flush was fenced"),
            )),
            Some(LineState::Persisted) => out.push(Self::diag(
                ctx,
                ViolationClass::DuplicateFlush,
                Severity::Lint,
                format!("flush of clean line {line:#x} (already persisted, nothing dirty)"),
            )),
        }
    }

    fn fence(&mut self, ctx: EventCtx, out: &mut Vec<Diagnostic>) {
        if self.flushes_since_fence == 0 {
            out.push(Self::diag(
                ctx,
                ViolationClass::UselessFence,
                Severity::Lint,
                "fence with no flush since the previous fence (nothing to order)".to_string(),
            ));
        }
        self.flushes_since_fence = 0;
        for state in self.lines.values_mut() {
            if *state == LineState::FlushPending {
                *state = LineState::Persisted;
            }
        }
    }
}

impl AnalyzerPass for PersistOrderPass {
    fn name(&self) -> &'static str {
        "persist-order"
    }

    fn check(&mut self, ctx: EventCtx, ev: &TraceEvent, out: &mut Vec<Diagnostic>) {
        match *ev {
            TraceEvent::Attach { pmo, base, size, .. } => {
                // A (re-)attach resets all shadow state for the range: the
                // crash/recovery path between detach and attach is kernel
                // work outside the trace.
                self.purge_lines(base, base + size);
                self.pools.insert(
                    base,
                    PoolState {
                        pmo,
                        end: base + size,
                        log_start: base + HEADER_SIZE,
                        log_end: base + heap_base_for(size),
                        flag_va: base + hdr::COMMIT_FLAG,
                        flag_line: (base + hdr::COMMIT_FLAG) & !(LINE - 1),
                        commit_open: false,
                        home_lines: BTreeSet::new(),
                    },
                );
            }
            TraceEvent::Detach { pmo } => {
                if let Some((&base, pool)) = self.pools.iter().find(|(_, p)| p.pmo == pmo) {
                    let end = pool.end;
                    self.pools.remove(&base);
                    self.purge_lines(base, end);
                }
            }
            TraceEvent::Store { va, size } => self.store(va, size, None, ctx, out),
            TraceEvent::StoreData { va, size, data } => {
                self.store(va, size, Some(data), ctx, out);
            }
            TraceEvent::Flush { va } => self.flush(va, ctx, out),
            TraceEvent::Fence => self.fence(ctx, out),
            _ => {}
        }
    }

    fn finish(&mut self, _ctx: EventCtx, _out: &mut Vec<Diagnostic>) {
        // A commit left open at end of trace is legal: a crash (or the
        // fault injector) may truncate a trace mid-protocol, and that is
        // exactly the case recovery handles.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Analyzer;
    use pmo_trace::TraceSink;

    const BASE: Va = 0x10_0000;
    const SIZE: u64 = 1 << 20;

    fn analyzer() -> Analyzer {
        Analyzer::new("persist-test").with_pass(PersistOrderPass::new())
    }

    fn attach(a: &mut Analyzer) {
        a.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: SIZE, nvm: true });
    }

    fn flag_va() -> Va {
        BASE + hdr::COMMIT_FLAG
    }

    fn log_va() -> Va {
        BASE + HEADER_SIZE
    }

    /// store -> flush -> fence on the log, flag set+persisted, home
    /// store+persist, flag cleared: the clean protocol.
    fn clean_commit(a: &mut Analyzer) {
        a.store(log_va(), 8);
        a.event(TraceEvent::Flush { va: log_va() });
        a.event(TraceEvent::Fence);
        a.store(flag_va(), 8);
        a.event(TraceEvent::Flush { va: BASE });
        a.event(TraceEvent::Fence);
        let home = BASE + heap_base_for(SIZE);
        a.store(home, 8);
        a.event(TraceEvent::Flush { va: home & !(LINE - 1) });
        a.event(TraceEvent::Fence);
        a.store(flag_va(), 8);
        a.event(TraceEvent::Flush { va: BASE });
        a.event(TraceEvent::Fence);
    }

    #[test]
    fn clean_protocol_is_silent() {
        let mut a = analyzer();
        attach(&mut a);
        clean_commit(&mut a);
        clean_commit(&mut a); // a second transaction reuses the log
        let report = a.finish();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn dirty_log_line_at_commit() {
        let mut a = analyzer();
        attach(&mut a);
        a.store(log_va(), 8);
        // No flush/fence: straight to the commit flag.
        a.store(flag_va(), 8);
        let report = a.finish();
        assert!(
            report.errors().any(|d| d.class == ViolationClass::UnflushedDirtyAtCommit),
            "{report}"
        );
    }

    #[test]
    fn unfenced_log_flush_at_commit() {
        let mut a = analyzer();
        attach(&mut a);
        a.store(log_va(), 8);
        a.event(TraceEvent::Flush { va: log_va() });
        // Fence missing.
        a.store(flag_va(), 8);
        let report = a.finish();
        assert!(report.errors().any(|d| d.class == ViolationClass::UnfencedFlushAtCommit));
    }

    #[test]
    fn home_store_before_flag_persisted() {
        let mut a = analyzer();
        attach(&mut a);
        a.store(log_va(), 8);
        a.event(TraceEvent::Flush { va: log_va() });
        a.event(TraceEvent::Fence);
        a.store(flag_va(), 8);
        // Flag never flushed: home store races it to NVM.
        a.store(BASE + heap_base_for(SIZE), 8);
        let report = a.finish();
        assert!(report.errors().any(|d| d.class == ViolationClass::StoreWithoutPersistedLog));
    }

    #[test]
    fn unpersisted_home_line_at_clear() {
        let mut a = analyzer();
        attach(&mut a);
        a.store(log_va(), 8);
        a.event(TraceEvent::Flush { va: log_va() });
        a.event(TraceEvent::Fence);
        a.store(flag_va(), 8);
        a.event(TraceEvent::Flush { va: BASE });
        a.event(TraceEvent::Fence);
        a.store(BASE + heap_base_for(SIZE), 8);
        // Home line never persisted before the flag clears.
        a.store(flag_va(), 8);
        let report = a.finish();
        assert!(report.errors().any(|d| d.class == ViolationClass::UnflushedDirtyAtCommit));
    }

    #[test]
    fn open_commit_at_trace_end_is_legal() {
        let mut a = analyzer();
        attach(&mut a);
        a.store(log_va(), 8);
        a.event(TraceEvent::Flush { va: log_va() });
        a.event(TraceEvent::Fence);
        a.store(flag_va(), 8); // crash here: recovery's job
        let report = a.finish();
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn duplicate_flush_lint() {
        let mut a = analyzer();
        attach(&mut a);
        let home = BASE + heap_base_for(SIZE);
        a.store(home, 8);
        a.event(TraceEvent::Flush { va: home & !(LINE - 1) });
        a.event(TraceEvent::Fence);
        a.event(TraceEvent::Flush { va: home & !(LINE - 1) }); // clean line
        let report = a.finish();
        assert!(report.passed(), "lints are not violations");
        assert!(report.lints().any(|d| d.class == ViolationClass::DuplicateFlush));
    }

    #[test]
    fn useless_fence_lint() {
        let mut a = analyzer();
        attach(&mut a);
        a.event(TraceEvent::Fence);
        let report = a.finish();
        assert!(report.lints().any(|d| d.class == ViolationClass::UselessFence));
    }

    #[test]
    fn init_flush_of_unstored_line_is_silent() {
        let mut a = analyzer();
        attach(&mut a);
        // pool_create's header persist: flush with no traced store.
        a.event(TraceEvent::Flush { va: BASE });
        a.event(TraceEvent::Fence);
        let report = a.finish();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn reattach_resets_protocol_state() {
        let mut a = analyzer();
        attach(&mut a);
        a.store(log_va(), 8);
        a.event(TraceEvent::Flush { va: log_va() });
        a.event(TraceEvent::Fence);
        a.store(flag_va(), 8); // commit open, then crash (no clear)
        attach(&mut a); // re-attach after recovery
        clean_commit(&mut a);
        let report = a.finish();
        assert!(report.is_clean(), "{report}");
    }
}
