//! Pass 3: the permission-window audit, migrated into the framework.
//!
//! Wraps [`pmo_trace::PermAudit`] (which stays available standalone) and
//! lifts its violations into positioned [`Diagnostic`]s: the wrapper
//! feeds each event through the auditor and assigns the current trace
//! position to every violation that appears.
//!
//! Policy knobs mirror how the repo's own tests use the auditor: the
//! paper's strict "at most two enabled PMOs" rule for single-PMO
//! (WHISPER-style) traces, an unlimited-window variant for the multi-PMO
//! baseline protocol, and an optional end-of-trace leak check (off for
//! workloads that intentionally hold read grants for their lifetime).

use pmo_trace::{AuditViolation, PermAudit, TraceSink};

use crate::diag::{AnalyzerPass, Diagnostic, EventCtx, Severity, ViolationClass};

/// The permission-window pass.
#[derive(Debug)]
pub struct PermWindowPass {
    audit: Option<PermAudit>,
    flag_open_at_end: bool,
    reported: usize,
}

impl Default for PermWindowPass {
    fn default() -> Self {
        Self::strict()
    }
}

impl PermWindowPass {
    /// The paper's strict discipline: at most two enabled PMOs, every
    /// window closed by the end of the trace.
    #[must_use]
    pub fn strict() -> Self {
        PermWindowPass { audit: Some(PermAudit::new()), flag_open_at_end: true, reported: 0 }
    }

    /// Allows up to `max` simultaneously enabled domains per thread.
    #[must_use]
    pub fn with_max_open_windows(max: usize) -> Self {
        PermWindowPass {
            audit: Some(PermAudit::with_max_open_windows(max)),
            flag_open_at_end: true,
            reported: 0,
        }
    }

    /// The multi-PMO baseline policy: unlimited windows, and grants held
    /// at end of trace are by design (always-readable baseline), not
    /// leaks.
    #[must_use]
    pub fn baseline() -> Self {
        PermWindowPass {
            audit: Some(PermAudit::with_max_open_windows(usize::MAX)),
            flag_open_at_end: false,
            reported: 0,
        }
    }

    /// Disables the end-of-trace open-window check (builder style).
    #[must_use]
    pub fn allow_open_at_end(mut self) -> Self {
        self.flag_open_at_end = false;
        self
    }

    fn lift(v: &AuditViolation, pos: u64) -> Diagnostic {
        let (class, thread) = match v {
            AuditViolation::UnguardedAccess { thread, .. } => {
                (ViolationClass::UnguardedAccess, *thread)
            }
            AuditViolation::TooManyOpenWindows { thread, .. } => {
                (ViolationClass::TooManyOpenWindows, *thread)
            }
            AuditViolation::WindowLeftOpen { thread, .. } => {
                (ViolationClass::WindowLeftOpen, *thread)
            }
            AuditViolation::DetachedWhileGranted { thread, .. } => {
                (ViolationClass::DetachedWhileGranted, *thread)
            }
        };
        Diagnostic {
            pass: "perm-window",
            class,
            severity: Severity::Error,
            thread,
            position: pos,
            message: v.to_string(),
        }
    }
}

impl AnalyzerPass for PermWindowPass {
    fn name(&self) -> &'static str {
        "perm-window"
    }

    fn check(&mut self, ctx: EventCtx, ev: &pmo_trace::TraceEvent, out: &mut Vec<Diagnostic>) {
        let audit = self.audit.as_mut().expect("check after finish");
        audit.event(*ev);
        let seen = audit.violations();
        for v in &seen[self.reported..] {
            out.push(Self::lift(v, ctx.pos));
        }
        self.reported = seen.len();
    }

    fn finish(&mut self, ctx: EventCtx, out: &mut Vec<Diagnostic>) {
        let violations = self.audit.take().expect("finish once").finish();
        for v in &violations[self.reported..] {
            // Everything past `reported` is an end-of-trace finding
            // (still-open windows).
            if self.flag_open_at_end {
                out.push(Self::lift(v, ctx.pos));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Analyzer;
    use pmo_trace::{Perm, PmoId, TraceEvent};

    const BASE: u64 = 0x30_0000;

    fn attach(a: &mut Analyzer) {
        a.event(TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: 1 << 20, nvm: true });
    }

    #[test]
    fn clean_window_is_silent() {
        let mut a = Analyzer::new("t").with_pass(PermWindowPass::strict());
        attach(&mut a);
        a.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        a.store(BASE + 8, 8);
        a.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::None });
        assert!(a.finish().is_clean());
    }

    #[test]
    fn unguarded_access_is_positioned() {
        let mut a = Analyzer::new("t").with_pass(PermWindowPass::strict());
        attach(&mut a); // event 0
        a.store(BASE + 8, 8); // event 1: no grant
        let report = a.finish();
        let d = report.errors().next().expect("one violation");
        assert_eq!(d.class, ViolationClass::UnguardedAccess);
        assert_eq!(d.position, 1);
    }

    #[test]
    fn open_window_flagged_at_end_under_strict() {
        let mut a = Analyzer::new("t").with_pass(PermWindowPass::strict());
        attach(&mut a);
        a.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadWrite });
        let report = a.finish();
        assert!(report.errors().any(|d| d.class == ViolationClass::WindowLeftOpen));
    }

    #[test]
    fn baseline_policy_allows_held_grants() {
        let mut a = Analyzer::new("t").with_pass(PermWindowPass::baseline());
        attach(&mut a);
        a.event(TraceEvent::SetPerm { pmo: PmoId::new(1), perm: Perm::ReadOnly });
        a.load(BASE + 8, 8);
        assert!(a.finish().is_clean());
    }
}
