//! Pass 6: predictive reordering analysis (WCP / maximal-causality
//! style).
//!
//! The streaming passes only flag violations that *manifest* in the
//! observed interleaving, while the DPOR/refinement harness only scales
//! to small worlds. This pass closes the gap from a single observed
//! trace: it builds a constraint model of the execution and searches for
//! *feasible reorderings* — schedules the synchronization in the trace
//! does not forbid — that expose violations the observed schedule
//! happened to miss.
//!
//! # Constraint model
//!
//! The trace is segmented into **blocks**: maximal same-thread event
//! runs delimited by [`TraceEvent::ThreadSwitch`]. Blocks are the unit
//! of reordering (the scheduler context-switches between events, never
//! inside one). Edges over blocks:
//!
//! * **program order** — consecutive blocks of the same thread;
//! * **fork** — a thread's first block is ordered after the block that
//!   ran immediately before it (the forking thread's run), matching
//!   [`crate::RacePass`]'s fork rule;
//! * **shootdown walls** — a block containing a [`TraceEvent::Shootdown`]
//!   is a global barrier (the initiating core IPIs every core and waits,
//!   §IV.B): it is ordered after every observed-earlier block and before
//!   every observed-later one.
//!
//! Deliberately *absent* is any access→`Detach` or flush→commit edge:
//! that weakening (happens-before → a WCP-like "what the trace's own
//! synchronization actually enforces") is exactly what lets the pass
//! predict schedules the observed one did not take.
//!
//! # What is predictable here — and what is not
//!
//! Only *order-sensitive* violation classes gain anything from
//! reordering:
//!
//! * **stale-window accesses** (`StaleWindowAccess`, the paper's §IV.B
//!   hazard and the libmpk/ERIM key-reuse-after-evict window): an access
//!   observed *before* an unsettled detach (no same-block shootdown) can
//!   be delayed past it;
//! * **persist-order violations** (`UnflushedDirtyAtCommit`,
//!   `UnfencedFlushAtCommit`, `StoreWithoutPersistedLog`): another
//!   thread's flush/fence that the commit-flag store depends on can be
//!   delayed past the commit.
//!
//! Two classes are provably *not* reordering-reachable and generate no
//! candidates: cross-thread races (the `hb-race` relation draws edges
//! only from forks and shootdowns, so an unordered pair races in *every*
//! feasible schedule — the manifest pass is already predictive), and
//! switch-gate stores (`GatePass` is thread-local by construction, and
//! program order within a thread is never reorderable).
//!
//! # Verify-before-emit
//!
//! Every candidate reordering is materialized as a concrete **witness
//! trace** (a deterministic topological relinearization that delays
//! exactly one block past another) and replayed through the manifest
//! passes ([`crate::RacePass`] + [`crate::PersistOrderPass`]). A finding
//! is emitted only when the expected class manifests at the reordered
//! event's position in the witness *and* was absent at the original
//! position in the observed order — the witness is the proof, and
//! [`witness_events`] rebuilds it from the two endpoint positions for
//! the repro path.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use pmo_runtime::{hdr, heap_base_for};
use pmo_trace::{PmoId, ThreadId, TraceEvent, TraceSink, Va};

use crate::diag::{AnalyzerPass, Diagnostic, EventCtx, Severity, ViolationClass};
use crate::persist::PersistOrderPass;
use crate::race::RacePass;

/// How many events the streaming [`PredictPass`] buffers before it stops
/// extending the model (overflow is counted and reported as a lint).
pub const PREDICT_EVENT_CAP: usize = 1 << 20;

/// How many candidate reorderings one prediction explores (counted).
pub const PREDICT_CANDIDATE_CAP: usize = 4096;

/// How many verified findings one prediction reports (counted).
pub const PREDICT_FINDING_CAP: usize = 64;

/// Per-detach cap on candidate accesses considered (nearest first).
const PER_ANCHOR_CAP: usize = 64;

/// Per-PMO cap on remembered accesses for stale-window candidates.
const ACCESS_CAP: usize = 4096;

/// One maximal same-thread run of events.
#[derive(Clone, Copy, Debug)]
struct Block {
    thread: ThreadId,
    /// First event index (a `ThreadSwitch` for every block but possibly
    /// the first).
    start: usize,
    /// One past the last event index.
    end: usize,
    /// Whether the block contains a `Shootdown` (global barrier).
    wall: bool,
}

fn blocks_of(events: &[TraceEvent]) -> Vec<Block> {
    let mut starts = vec![0usize];
    for (i, ev) in events.iter().enumerate() {
        if i != 0 && matches!(ev, TraceEvent::ThreadSwitch { .. }) {
            starts.push(i);
        }
    }
    let mut blocks = Vec::with_capacity(starts.len());
    for (bi, &start) in starts.iter().enumerate() {
        let end = starts.get(bi + 1).copied().unwrap_or(events.len());
        let thread = match events[start] {
            TraceEvent::ThreadSwitch { thread } => thread,
            _ => ThreadId::MAIN,
        };
        let wall = events[start..end].iter().any(|ev| matches!(ev, TraceEvent::Shootdown { .. }));
        blocks.push(Block { thread, start, end, wall });
    }
    blocks
}

/// Block index containing event position `pos`.
fn block_of(blocks: &[Block], pos: usize) -> usize {
    blocks.partition_point(|b| b.start <= pos) - 1
}

/// Builds the constraint DAG over blocks: successor lists + in-degrees.
/// Wall ordering is chained through consecutive walls so the edge count
/// stays linear.
fn build_dag(blocks: &[Block]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let n = blocks.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    let mut last_of_thread: BTreeMap<u32, usize> = BTreeMap::new();
    let mut prev_wall: Option<usize> = None;
    for b in 0..n {
        let t = blocks[b].thread.raw();
        match last_of_thread.get(&t) {
            Some(&p) => {
                succs[p].push(b);
                indeg[b] += 1;
            }
            None if b > 0 => {
                // Fork: ordered after whoever ran just before.
                succs[b - 1].push(b);
                indeg[b] += 1;
            }
            None => {}
        }
        last_of_thread.insert(t, b);
        if blocks[b].wall {
            // Everything since the previous wall (inclusive) precedes
            // this wall; earlier blocks are ordered transitively.
            let lo = prev_wall.unwrap_or(0);
            for s in &mut succs[lo..b] {
                s.push(b);
                indeg[b] += 1;
            }
            prev_wall = Some(b);
        } else if let Some(w) = prev_wall {
            succs[w].push(b);
            indeg[b] += 1;
        }
    }
    (succs, indeg)
}

/// Kahn linearization with min-observed-index priority plus the virtual
/// edge `anchor → moved`: the result is the observed order with exactly
/// the moved block (and anything program-ordered after it) delayed until
/// the anchor block has run. `None` when the constraint model orders the
/// pair (the reordering is infeasible).
fn linearize(
    succs: &[Vec<usize>],
    indeg: &[usize],
    moved_block: usize,
    anchor_block: usize,
) -> Option<Vec<usize>> {
    let n = succs.len();
    let mut indeg = indeg.to_vec();
    indeg[moved_block] += 1; // virtual edge anchor -> moved
    let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
    for (b, &d) in indeg.iter().enumerate() {
        if d == 0 {
            heap.push(Reverse(b));
        }
    }
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(b)) = heap.pop() {
        order.push(b);
        let release = |s: usize, indeg: &mut Vec<usize>, heap: &mut BinaryHeap<Reverse<usize>>| {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                heap.push(Reverse(s));
            }
        };
        for &s in &succs[b] {
            release(s, &mut indeg, &mut heap);
        }
        if b == anchor_block {
            release(moved_block, &mut indeg, &mut heap);
        }
    }
    (order.len() == n).then_some(order)
}

/// A witness trace plus the permuted positions of the two endpoints.
struct Witness {
    events: Vec<TraceEvent>,
    moved_pos: u64,
    anchor_pos: u64,
}

/// Emits the permuted trace for a block order, regenerating
/// `ThreadSwitch` events (the originals are dropped; a switch is emitted
/// whenever the running thread changes) and tracking where the two
/// endpoint events land.
fn emit_witness(
    events: &[TraceEvent],
    blocks: &[Block],
    order: &[usize],
    moved: usize,
    anchor: usize,
) -> Witness {
    let mut out = Vec::with_capacity(events.len());
    let mut cur = ThreadId::MAIN;
    let (mut moved_pos, mut anchor_pos) = (0u64, 0u64);
    for &b in order {
        let blk = &blocks[b];
        if blk.thread != cur {
            out.push(TraceEvent::ThreadSwitch { thread: blk.thread });
            cur = blk.thread;
        }
        for (i, ev) in events.iter().enumerate().take(blk.end).skip(blk.start) {
            if matches!(ev, TraceEvent::ThreadSwitch { .. }) {
                continue;
            }
            if i == moved {
                moved_pos = out.len() as u64;
            }
            if i == anchor {
                anchor_pos = out.len() as u64;
            }
            out.push(*ev);
        }
    }
    Witness { events: out, moved_pos, anchor_pos }
}

/// Rebuilds the deterministic witness reordering for a predicted finding
/// from its two endpoint positions: the trace in which the event at
/// `moved` (and everything program-ordered after it) is delayed until
/// just after the event at `anchor`. Returns the permuted trace plus the
/// permuted positions of (`moved`, `anchor`), or `None` when the
/// constraint model orders the pair.
///
/// This is the repro path: feeding the returned trace to the manifest
/// passes re-manifests the predicted violation at the returned position.
#[must_use]
pub fn witness_events(
    events: &[TraceEvent],
    moved: u64,
    anchor: u64,
) -> Option<(Vec<TraceEvent>, u64, u64)> {
    let (moved, anchor) = (moved as usize, anchor as usize);
    if moved >= events.len() || anchor >= events.len() || moved >= anchor {
        return None;
    }
    let blocks = blocks_of(events);
    let (mb, ab) = (block_of(&blocks, moved), block_of(&blocks, anchor));
    if mb == ab || blocks[mb].wall || blocks[ab].wall {
        return None;
    }
    let (succs, indeg) = build_dag(&blocks);
    let order = linearize(&succs, &indeg, mb, ab)?;
    let w = emit_witness(events, &blocks, &order, moved, anchor);
    Some((w.events, w.moved_pos, w.anchor_pos))
}

/// Which reordering shape a candidate explores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CandKind {
    /// Delay an access past an unsettled detach (stale window).
    Stale,
    /// Delay a flush/fence past a commit-flag store (persist order).
    Persist,
}

#[derive(Clone, Copy, Debug)]
struct Candidate {
    kind: CandKind,
    /// Observed position of the event whose block is delayed.
    moved: usize,
    /// Observed position of the event it is delayed past.
    anchor: usize,
    /// The domain involved (for the message).
    pmo: PmoId,
    /// The moved event's address (access va, or flush va / 0 for fence).
    va: Va,
}

/// One verified predicted finding: a feasible reordering that manifests
/// a violation absent from the observed schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredictedFinding {
    /// The class the witness reordering manifests.
    pub class: ViolationClass,
    /// Observed position and thread of the delayed event.
    pub moved: (u64, ThreadId),
    /// Observed position and thread of the event it is delayed past.
    pub anchor: (u64, ThreadId),
    /// Position of the manifesting diagnostic inside the witness trace.
    pub witness_position: u64,
    /// Human-readable description carrying both endpoints.
    pub message: String,
}

/// The outcome of one predictive analysis.
#[derive(Clone, Debug, Default)]
pub struct Prediction {
    /// Events analyzed.
    pub events: usize,
    /// Blocks (maximal same-thread runs) in the constraint model.
    pub blocks: usize,
    /// Candidate reorderings explored.
    pub candidates: usize,
    /// Candidates beyond [`PREDICT_CANDIDATE_CAP`] (counted, not lost
    /// silently).
    pub candidates_dropped: usize,
    /// Verified findings (each carries a replayable witness).
    pub findings: Vec<PredictedFinding>,
    /// Findings beyond [`PREDICT_FINDING_CAP`].
    pub findings_dropped: usize,
}

#[derive(Clone, Copy, Debug)]
struct DetachSite {
    pos: usize,
    block: usize,
    thread: ThreadId,
    pmo: PmoId,
    base: Va,
    end: Va,
    /// A `Shootdown` for the same pmo inside the same block settles the
    /// detach: the window never opens in any feasible order.
    settled: bool,
}

struct PoolModel {
    pmo: PmoId,
    flag_va: Va,
    log_end: Va,
    commit_open: bool,
}

/// Runs the manifest passes the witness check replays: happens-before
/// races/stale windows and persist ordering. Gate and permission-window
/// policies are thread-local or thread-agnostic and are invariant under
/// block reordering, so they add nothing here.
fn manifest_replay(events: &[TraceEvent], source: &str) -> crate::diag::AnalysisReport {
    let mut a = crate::diag::Analyzer::new(source)
        .with_pass(RacePass::new())
        .with_pass(PersistOrderPass::new());
    for ev in events {
        a.event(*ev);
    }
    a.finish()
}

fn accept_classes(kind: CandKind) -> &'static [ViolationClass] {
    match kind {
        CandKind::Stale => &[ViolationClass::StaleWindowAccess],
        CandKind::Persist => &[
            ViolationClass::UnflushedDirtyAtCommit,
            ViolationClass::UnfencedFlushAtCommit,
            ViolationClass::StoreWithoutPersistedLog,
        ],
    }
}

/// Collects candidate reorderings from one linear scan of the trace.
#[allow(clippy::too_many_lines)]
fn collect_candidates(events: &[TraceEvent], blocks: &[Block]) -> (Vec<Candidate>, usize) {
    // Pre-scan: only pmos that are ever detached need access history.
    let detached: BTreeSet<PmoId> = events
        .iter()
        .filter_map(|ev| match *ev {
            TraceEvent::Detach { pmo } => Some(pmo),
            _ => None,
        })
        .collect();

    let mut regions: BTreeMap<PmoId, (Va, Va)> = BTreeMap::new();
    let mut accesses: BTreeMap<PmoId, Vec<(usize, ThreadId, Va)>> = BTreeMap::new();
    let mut detaches: Vec<DetachSite> = Vec::new();
    let mut pools: BTreeMap<Va, PoolModel> = BTreeMap::new();
    let mut last_fence: Option<(usize, ThreadId)> = None;
    let mut last_log_flush: BTreeMap<Va, (usize, ThreadId, Va)> = BTreeMap::new();
    let mut dropped = 0usize;
    let mut cands: Vec<Candidate> = Vec::new();
    let mut cur = ThreadId::MAIN;

    let region_of = |regions: &BTreeMap<PmoId, (Va, Va)>, va: Va| {
        regions
            .iter()
            .find(|(_, &(base, end))| va >= base && va < end)
            .map(|(&p, &(base, end))| (p, base, end))
    };

    for (i, ev) in events.iter().enumerate() {
        match *ev {
            TraceEvent::ThreadSwitch { thread } => cur = thread,
            TraceEvent::Attach { pmo, base, size, .. } => {
                regions.insert(pmo, (base, base + size));
                pools.insert(
                    base,
                    PoolModel {
                        pmo,
                        flag_va: base + hdr::COMMIT_FLAG,
                        log_end: base + heap_base_for(size),
                        commit_open: false,
                    },
                );
            }
            TraceEvent::Detach { pmo } => {
                if let Some(&(base, end)) = regions.get(&pmo) {
                    regions.remove(&pmo);
                    detaches.push(DetachSite {
                        pos: i,
                        block: block_of(blocks, i),
                        thread: cur,
                        pmo,
                        base,
                        end,
                        settled: false,
                    });
                }
            }
            TraceEvent::Shootdown { pmo } => {
                let b = block_of(blocks, i);
                if let Some(d) = detaches.iter_mut().rev().find(|d| d.pmo == pmo && d.block == b) {
                    d.settled = true;
                }
            }
            TraceEvent::Fence => last_fence = Some((i, cur)),
            TraceEvent::Flush { va } => {
                if let Some((&base, pool)) =
                    pools.range(..=va).next_back().filter(|(_, p)| va < p.log_end)
                {
                    let _ = pool;
                    last_log_flush.insert(base, (i, cur, va));
                }
            }
            TraceEvent::Load { va, .. }
            | TraceEvent::Store { va, .. }
            | TraceEvent::StoreData { va, .. } => {
                if let Some((pmo, _, _)) = region_of(&regions, va) {
                    if detached.contains(&pmo) {
                        let list = accesses.entry(pmo).or_default();
                        if list.len() < ACCESS_CAP {
                            list.push((i, cur, va));
                        } else {
                            dropped += 1;
                        }
                    }
                }
                // Commit-flag store: persist-order candidates.
                let is_store = !matches!(ev, TraceEvent::Load { .. });
                if is_store {
                    if let Some((&base, pool)) = pools.range(..=va).next_back() {
                        if va == pool.flag_va {
                            let was_open = pool.commit_open;
                            let now_open = match *ev {
                                TraceEvent::StoreData { data, .. } => data != 0,
                                _ => !was_open,
                            };
                            if now_open && !was_open {
                                let anchor_block = block_of(blocks, i);
                                let pool_pmo = pool.pmo;
                                let mut push = |mp: usize, mt: ThreadId, mva: Va| {
                                    if mt != cur && block_of(blocks, mp) != anchor_block {
                                        cands.push(Candidate {
                                            kind: CandKind::Persist,
                                            moved: mp,
                                            anchor: i,
                                            pmo: pool_pmo,
                                            va: mva,
                                        });
                                    }
                                };
                                if let Some((fp, ft)) = last_fence {
                                    push(fp, ft, 0);
                                }
                                if let Some(&(fp, ft, fva)) = last_log_flush.get(&base) {
                                    push(fp, ft, fva);
                                }
                            }
                            let pool = pools.get_mut(&base).expect("present");
                            pool.commit_open = now_open;
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // Stale-window candidates: for each unsettled detach, the nearest
    // earlier cross-thread accesses into its region.
    for d in &detaches {
        if d.settled {
            continue;
        }
        let Some(list) = accesses.get(&d.pmo) else { continue };
        let mut taken = 0usize;
        for &(pos, thread, va) in list.iter().rev() {
            if pos >= d.pos || va < d.base || va >= d.end {
                continue;
            }
            if thread == d.thread || block_of(blocks, pos) == d.block {
                continue;
            }
            if taken == PER_ANCHOR_CAP {
                dropped += 1;
                continue;
            }
            taken += 1;
            cands.push(Candidate {
                kind: CandKind::Stale,
                moved: pos,
                anchor: d.pos,
                pmo: d.pmo,
                va,
            });
        }
    }

    // Deterministic order: by (anchor, moved), deduplicated.
    cands.sort_by_key(|c| (c.anchor, c.moved));
    cands.dedup_by_key(|c| (c.anchor, c.moved));
    (cands, dropped)
}

fn moved_kind(ev: &TraceEvent) -> &'static str {
    match ev {
        TraceEvent::Load { .. } => "load",
        TraceEvent::Store { .. } | TraceEvent::StoreData { .. } => "store",
        TraceEvent::Flush { .. } => "flush",
        TraceEvent::Fence => "fence",
        _ => "event",
    }
}

/// Runs the full predictive analysis over an event slice: builds the
/// constraint model, generates targeted candidate reorderings, and
/// verifies each against the manifest passes before reporting. Pure and
/// deterministic: the same events always yield the same prediction.
#[must_use]
pub fn predict(events: &[TraceEvent]) -> Prediction {
    let mut out = Prediction { events: events.len(), ..Prediction::default() };
    if events.is_empty() {
        return out;
    }
    let blocks = blocks_of(events);
    out.blocks = blocks.len();
    let (mut cands, pre_dropped) = collect_candidates(events, &blocks);
    out.candidates_dropped = pre_dropped;
    if cands.len() > PREDICT_CANDIDATE_CAP {
        out.candidates_dropped += cands.len() - PREDICT_CANDIDATE_CAP;
        cands.truncate(PREDICT_CANDIDATE_CAP);
    }
    out.candidates = cands.len();
    if cands.is_empty() {
        return out;
    }

    let (succs, indeg) = build_dag(&blocks);
    // Baseline: classes already manifest at a position in the observed
    // order never become predictions (they belong to the manifest pass).
    let baseline: BTreeSet<(u64, &'static str)> = manifest_replay(events, "predict-baseline")
        .errors()
        .map(|d| (d.position, d.class.name()))
        .collect();

    let mut seen: BTreeSet<(&'static str, u64)> = BTreeSet::new();
    for c in cands {
        let (mb, ab) = (block_of(&blocks, c.moved), block_of(&blocks, c.anchor));
        if mb == ab || blocks[mb].wall || blocks[ab].wall {
            continue;
        }
        let Some(order) = linearize(&succs, &indeg, mb, ab) else { continue };
        let w = emit_witness(events, &blocks, &order, c.moved, c.anchor);
        let expected_pos = match c.kind {
            CandKind::Stale => w.moved_pos,
            CandKind::Persist => w.anchor_pos,
        };
        let accept = accept_classes(c.kind);
        let rep = manifest_replay(&w.events, "predict-witness");
        let Some(hit) =
            rep.errors().find(|d| d.position == expected_pos && accept.contains(&d.class))
        else {
            continue;
        };
        let orig_pos = match c.kind {
            CandKind::Stale => c.moved,
            CandKind::Persist => c.anchor,
        } as u64;
        if baseline.contains(&(orig_pos, hit.class.name())) {
            continue;
        }
        if !seen.insert((hit.class.name(), orig_pos)) {
            continue;
        }
        if out.findings.len() == PREDICT_FINDING_CAP {
            out.findings_dropped += 1;
            continue;
        }
        let mt = blocks[mb].thread;
        let at = blocks[ab].thread;
        let message = match c.kind {
            CandKind::Stale => format!(
                "predicted stale window: {} at {:#x} by thread {mt} (event {}) can be \
                 delayed past the unsettled detach of pmo {} by thread {at} (event {}); \
                 witness reordering manifests {} at witness position {}",
                moved_kind(&events[c.moved]),
                c.va,
                c.moved,
                c.pmo,
                c.anchor,
                hit.class,
                w.moved_pos,
            ),
            CandKind::Persist => format!(
                "predicted persist-order violation: {} by thread {mt} (event {}) can be \
                 delayed past the commit-flag store by thread {at} (event {}); witness \
                 reordering manifests {} at witness position {}",
                moved_kind(&events[c.moved]),
                c.moved,
                c.anchor,
                hit.class,
                w.anchor_pos,
            ),
        };
        out.findings.push(PredictedFinding {
            class: hit.class,
            moved: (c.moved as u64, mt),
            anchor: (c.anchor as u64, at),
            witness_position: expected_pos,
            message,
        });
    }
    out
}

/// The streaming wrapper: buffers events (bounded by
/// [`PREDICT_EVENT_CAP`], overflow counted) and runs [`predict`] at end
/// of trace, emitting one error diagnostic per verified finding plus a
/// truncation lint when anything was dropped.
#[derive(Default)]
pub struct PredictPass {
    buf: Vec<TraceEvent>,
    overflow: usize,
}

impl PredictPass {
    /// New pass.
    #[must_use]
    pub fn new() -> Self {
        PredictPass::default()
    }
}

impl AnalyzerPass for PredictPass {
    fn name(&self) -> &'static str {
        "predict"
    }

    fn check(&mut self, _ctx: EventCtx, ev: &TraceEvent, _out: &mut Vec<Diagnostic>) {
        if self.buf.len() < PREDICT_EVENT_CAP {
            self.buf.push(*ev);
        } else {
            self.overflow += 1;
        }
    }

    fn finish(&mut self, ctx: EventCtx, out: &mut Vec<Diagnostic>) {
        let prediction = predict(&self.buf);
        for f in &prediction.findings {
            out.push(Diagnostic {
                pass: self.name(),
                class: f.class,
                severity: Severity::Error,
                thread: f.moved.1,
                position: f.moved.0,
                message: f.message.clone(),
            });
        }
        let dropped = self.overflow + prediction.candidates_dropped + prediction.findings_dropped;
        if dropped > 0 {
            out.push(Diagnostic {
                pass: self.name(),
                class: ViolationClass::PredictionTruncated,
                severity: Severity::Lint,
                thread: ctx.thread,
                position: ctx.pos,
                message: format!(
                    "prediction truncated: {} events beyond the buffer cap, {} candidates \
                     and {} findings beyond their caps (counted, not silently lost)",
                    self.overflow, prediction.candidates_dropped, prediction.findings_dropped
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmo_runtime::HEADER_SIZE;

    const BASE: Va = 0x20_0000;
    const SIZE: u64 = 1 << 20;

    fn attach() -> TraceEvent {
        TraceEvent::Attach { pmo: PmoId::new(1), base: BASE, size: SIZE, nvm: true }
    }

    fn switch(t: u32) -> TraceEvent {
        TraceEvent::ThreadSwitch { thread: ThreadId::new(t) }
    }

    fn flag_va() -> Va {
        BASE + hdr::COMMIT_FLAG
    }

    fn log_va() -> Va {
        BASE + HEADER_SIZE
    }

    #[test]
    fn single_thread_trace_has_no_candidates() {
        let events = [
            attach(),
            TraceEvent::Store { va: BASE + 0x100, size: 8 },
            TraceEvent::Detach { pmo: PmoId::new(1) },
        ];
        let p = predict(&events);
        assert_eq!(p.candidates, 0, "same-thread pairs are program-ordered");
        assert!(p.findings.is_empty());
    }

    #[test]
    fn stale_window_reordering_predicted() {
        // t1's load is observed *before* the unsettled detach: manifest
        // passes are silent, but delaying t1 past the detach is feasible.
        let events = [
            attach(),
            TraceEvent::Store { va: BASE + 0x100, size: 8 },
            switch(1),
            TraceEvent::Load { va: BASE + 0x200, size: 8 },
            switch(0),
            TraceEvent::Detach { pmo: PmoId::new(1) },
        ];
        assert!(manifest_replay(&events, "t").passed(), "observed order is clean");
        let p = predict(&events);
        assert_eq!(p.findings.len(), 1, "{p:?}");
        let f = &p.findings[0];
        assert_eq!(f.class, ViolationClass::StaleWindowAccess);
        assert_eq!(f.moved, (3, ThreadId::new(1)));
        assert_eq!(f.anchor, (5, ThreadId::MAIN));
        assert!(f.message.contains("event 3") && f.message.contains("event 5"), "{}", f.message);
    }

    #[test]
    fn predicted_witness_replays_through_the_repro_path() {
        let events = [
            attach(),
            TraceEvent::Store { va: BASE + 0x100, size: 8 },
            switch(1),
            TraceEvent::Load { va: BASE + 0x200, size: 8 },
            switch(0),
            TraceEvent::Detach { pmo: PmoId::new(1) },
        ];
        let p = predict(&events);
        let f = &p.findings[0];
        let (witness, moved_pos, _) =
            witness_events(&events, f.moved.0, f.anchor.0).expect("witness rebuilds");
        assert_eq!(moved_pos, f.witness_position);
        let rep = manifest_replay(&witness, "repro");
        assert!(
            rep.errors().any(|d| d.class == f.class && d.position == f.witness_position),
            "{rep}"
        );
    }

    #[test]
    fn shootdown_in_detach_block_settles_the_window() {
        let events = [
            attach(),
            switch(1),
            TraceEvent::Load { va: BASE + 0x200, size: 8 },
            switch(0),
            TraceEvent::Detach { pmo: PmoId::new(1) },
            TraceEvent::Shootdown { pmo: PmoId::new(1) },
        ];
        let p = predict(&events);
        assert!(p.findings.is_empty(), "settled detach cannot open a window: {p:?}");
    }

    #[test]
    fn wall_between_endpoints_makes_reordering_infeasible() {
        // A shootdown (of an unrelated pmo) between the access and the
        // detach is a global barrier: the pair is ordered.
        let events = [
            attach(),
            TraceEvent::Attach {
                pmo: PmoId::new(2),
                base: BASE + (2 << 20),
                size: SIZE,
                nvm: true,
            },
            switch(1),
            TraceEvent::Load { va: BASE + 0x200, size: 8 },
            switch(0),
            TraceEvent::Detach { pmo: PmoId::new(2) },
            TraceEvent::Shootdown { pmo: PmoId::new(2) },
            TraceEvent::Detach { pmo: PmoId::new(1) },
        ];
        let p = predict(&events);
        assert!(p.findings.is_empty(), "{p:?}");
    }

    #[test]
    fn persist_order_reordering_predicted() {
        // t1 flushes and fences t0's log line; t0 then sets the commit
        // flag. Observed order persists the log first — but nothing
        // orders t1's block before the commit.
        let events = [
            attach(),
            TraceEvent::Store { va: log_va(), size: 8 },
            switch(1),
            TraceEvent::Flush { va: log_va() },
            TraceEvent::Fence,
            switch(0),
            TraceEvent::Store { va: flag_va(), size: 8 },
        ];
        assert!(manifest_replay(&events, "t").passed(), "observed order is clean");
        let p = predict(&events);
        assert!(
            p.findings.iter().any(|f| f.class == ViolationClass::UnflushedDirtyAtCommit),
            "{p:?}"
        );
        let f = &p.findings[0];
        assert_eq!(f.anchor.0, 6, "anchor is the commit store");
        assert!(f.message.contains("commit-flag store"), "{}", f.message);
    }

    #[test]
    fn same_thread_persist_protocol_is_not_reorderable() {
        let events = [
            attach(),
            TraceEvent::Store { va: log_va(), size: 8 },
            TraceEvent::Flush { va: log_va() },
            TraceEvent::Fence,
            TraceEvent::Store { va: flag_va(), size: 8 },
        ];
        let p = predict(&events);
        assert!(p.findings.is_empty(), "{p:?}");
    }

    #[test]
    fn manifest_violations_are_not_re_predicted() {
        // Access *after* an unsettled detach: the manifest RacePass
        // already fires; predict must stay silent on it.
        let events = [
            attach(),
            TraceEvent::Store { va: BASE + 0x100, size: 8 },
            TraceEvent::Detach { pmo: PmoId::new(1) },
            switch(1),
            TraceEvent::Load { va: BASE + 0x100, size: 8 },
        ];
        assert!(!manifest_replay(&events, "t").passed(), "manifestly stale");
        let p = predict(&events);
        assert!(p.findings.is_empty(), "{p:?}");
    }

    #[test]
    fn predict_pass_emits_positioned_diagnostics() {
        let mut a = crate::diag::Analyzer::new("predict-pass").with_pass(PredictPass::new());
        for ev in [
            attach(),
            TraceEvent::Store { va: BASE + 0x100, size: 8 },
            switch(1),
            TraceEvent::Load { va: BASE + 0x200, size: 8 },
            switch(0),
            TraceEvent::Detach { pmo: PmoId::new(1) },
        ] {
            a.event(ev);
        }
        let report = a.finish();
        let d = report.errors().next().expect("one prediction");
        assert_eq!(d.pass, "predict");
        assert_eq!(d.class, ViolationClass::StaleWindowAccess);
        assert_eq!(d.position, 3);
        assert_eq!(d.thread, ThreadId::new(1));
    }

    #[test]
    fn prediction_is_deterministic() {
        let events = [
            attach(),
            TraceEvent::Store { va: BASE + 0x100, size: 8 },
            switch(1),
            TraceEvent::Load { va: BASE + 0x200, size: 8 },
            TraceEvent::Load { va: BASE + 0x300, size: 8 },
            switch(0),
            TraceEvent::Detach { pmo: PmoId::new(1) },
        ];
        let a = predict(&events);
        let b = predict(&events);
        assert_eq!(a.findings, b.findings);
        assert_eq!(a.candidates, b.candidates);
    }
}
