//! Multi-pass static analysis over PMO traces.
//!
//! The paper's security argument (§VI.D) and its crash-consistency story
//! both rest on disciplines the *program* and *OS* must follow: tight
//! permission windows, store→flush→fence→commit ordering, and TLB
//! shootdowns completed before any reuse of a revoked mapping or evicted
//! key. ERIM proves the analogous WRPKRU property by static binary
//! inspection; fault injection (the `faultsim` campaign) samples crash
//! points probabilistically. This crate checks the underlying ordering
//! rules across *whole* traces instead:
//!
//! * [`PersistOrderPass`] — persist-ordering / crash-consistency checking
//!   in the PMTest/XFDetector mold (write-ahead-log discipline, dirty or
//!   unfenced lines at commit, duplicate-flush / useless-fence lints);
//! * [`RacePass`] — a vector-clock happens-before detector for
//!   cross-thread races on PMO lines and the stale-translation hazard
//!   (access racing a revoke with no intervening ranged shootdown);
//! * [`GatePass`] — ERIM-style switch-gate integrity: no store may land
//!   between a write-revoking `SetPerm` and the shootdown (or re-grant)
//!   that settles it;
//! * [`InspectPass`] — ERIM's *static* half, actually implemented here:
//!   byte-level binary inspection of registered
//!   [`pmo_trace::CodeImage`]s for WRPKRU/XRSTOR key-update sequences at
//!   every byte offset (across instruction boundaries, inside
//!   immediates) outside a registered call gate;
//! * [`PermWindowPass`] — the existing [`pmo_trace::PermAudit`]
//!   permission-window audit, lifted into the framework with positioned
//!   diagnostics;
//! * [`PredictPass`] — predictive reordering analysis: from one observed
//!   schedule it builds a constraint model (program order, fork edges,
//!   shootdown walls) and searches for *feasible reorderings* that would
//!   manifest stale-window or persist-order violations the observed
//!   schedule missed, verifying every candidate by replaying a concrete
//!   witness trace through the manifest passes.
//!
//! Beyond the streaming passes, [`enumerate`] performs exhaustive
//! crash-image enumeration: per fence-delimited window it computes every
//! memory image the persistency model allows a power failure to leave
//! behind, so recovery can be verified against *all* of them
//! ([`verify_images`]) instead of a sampled few.
//!
//! Every checker is self-validated by seeded-bug mutation testing
//! ([`mutate`]): each known-bad pattern is planted into a clean trace and
//! the corresponding pass must catch it.
//!
//! The [`Analyzer`] driver is itself a [`pmo_trace::TraceSink`], so it
//! can analyze a recorded trace, a `.pmot` file, or stream live next to
//! the timing simulator through a `TeeSink`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crashenum;
mod diag;
mod gate;
mod inspect;
mod mutate;
mod permwindow;
mod persist;
mod predict;
mod race;

pub use crashenum::{
    enumerate, image_hash, line_contribution, verify_images, CrashEnumerator, CrashImage,
    EnumConfig, EnumResult, LineChoices, LineImage, WindowImages,
};
pub use diag::{
    json_string, AnalysisReport, Analyzer, AnalyzerPass, Diagnostic, EventCtx, Severity,
    ViolationClass,
};
pub use gate::GatePass;
pub use inspect::{
    monitor_image, scan_image, validate_inspection, InspectCase, InspectPass, InspectValidation,
    KeyUpdateKind, KeyUpdateSite, MONITOR_TEXT_BASE, WRPKRU,
};
pub use mutate::{seed_bug, seed_code_bug, SeededBug, SeededCodeBug};
pub use permwindow::PermWindowPass;
pub use persist::PersistOrderPass;
pub use predict::{
    predict, witness_events, PredictPass, PredictedFinding, Prediction, PREDICT_CANDIDATE_CAP,
    PREDICT_EVENT_CAP, PREDICT_FINDING_CAP,
};
pub use race::RacePass;

/// An [`Analyzer`] with all six standard passes: persist ordering,
/// happens-before races, switch-gate integrity, binary inspection of the
/// canonical trusted-monitor image, the given permission-window policy,
/// and predictive reordering analysis.
#[must_use]
pub fn standard_analyzer(source: &str, windows: PermWindowPass) -> Analyzer {
    Analyzer::new(source)
        .with_pass(PersistOrderPass::new())
        .with_pass(RacePass::new())
        .with_pass(GatePass::new())
        .with_pass(InspectPass::standard())
        .with_pass(windows)
        .with_pass(PredictPass::new())
}
