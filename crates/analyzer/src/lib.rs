//! Multi-pass static analysis over PMO traces.
//!
//! The paper's security argument (§VI.D) and its crash-consistency story
//! both rest on disciplines the *program* and *OS* must follow: tight
//! permission windows, store→flush→fence→commit ordering, and TLB
//! shootdowns completed before any reuse of a revoked mapping or evicted
//! key. ERIM proves the analogous WRPKRU property by static binary
//! inspection; fault injection (the `faultsim` campaign) samples crash
//! points probabilistically. This crate checks the underlying ordering
//! rules across *whole* traces instead:
//!
//! * [`PersistOrderPass`] — persist-ordering / crash-consistency checking
//!   in the PMTest/XFDetector mold (write-ahead-log discipline, dirty or
//!   unfenced lines at commit, duplicate-flush / useless-fence lints);
//! * [`RacePass`] — a vector-clock happens-before detector for
//!   cross-thread races on PMO lines and the stale-translation hazard
//!   (access racing a revoke with no intervening ranged shootdown);
//! * [`PermWindowPass`] — the existing [`pmo_trace::PermAudit`]
//!   permission-window audit, lifted into the framework with positioned
//!   diagnostics.
//!
//! Every checker is self-validated by seeded-bug mutation testing
//! ([`mutate`]): each known-bad pattern is planted into a clean trace and
//! the corresponding pass must catch it.
//!
//! The [`Analyzer`] driver is itself a [`pmo_trace::TraceSink`], so it
//! can analyze a recorded trace, a `.pmot` file, or stream live next to
//! the timing simulator through a `TeeSink`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod mutate;
mod permwindow;
mod persist;
mod race;

pub use diag::{
    json_string, AnalysisReport, Analyzer, AnalyzerPass, Diagnostic, EventCtx, Severity,
    ViolationClass,
};
pub use mutate::{seed_bug, SeededBug};
pub use permwindow::PermWindowPass;
pub use persist::PersistOrderPass;
pub use race::RacePass;

/// An [`Analyzer`] with all three standard passes: persist ordering,
/// happens-before races, and the given permission-window policy.
#[must_use]
pub fn standard_analyzer(source: &str, windows: PermWindowPass) -> Analyzer {
    Analyzer::new(source)
        .with_pass(PersistOrderPass::new())
        .with_pass(RacePass::new())
        .with_pass(windows)
}
