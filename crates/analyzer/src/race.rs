//! Pass 2: happens-before isolation race detection.
//!
//! A FastTrack-style vector-clock detector specialized to the trace
//! vocabulary. Happens-before edges come from the events that order
//! threads in this machine model:
//!
//! * program order within a thread;
//! * thread creation: the first `ThreadSwitch` to a never-seen thread
//!   forks it from the switching-away thread (it inherits that thread's
//!   clock) — later switches are just scheduling and create no edges;
//! * `Shootdown` completion: a ranged shootdown is a global
//!   synchronization barrier — the initiating core IPIs every other core
//!   and waits for acknowledgement (§IV.B), so all clocks join.
//!
//! Two error classes:
//!
//! * [`ViolationClass::CrossThreadRace`]: two threads touch the same PMO
//!   cache line without a happens-before edge and at least one is a
//!   write;
//! * [`ViolationClass::StaleWindowAccess`]: the paper's stale-translation
//!   hazard — an access lands in a region whose PMO was detached (or its
//!   key revoked/evicted) with no intervening ranged shootdown, i.e. the
//!   access may be served by a stale DTTLB/PTLB entry.

use std::collections::BTreeMap;

use pmo_runtime::LINE;
use pmo_trace::{PmoId, ThreadId, TraceEvent, Va};

use crate::diag::{AnalyzerPass, Diagnostic, EventCtx, Severity, ViolationClass};

/// Sparse vector clock: thread raw id -> logical time.
type Clock = BTreeMap<u32, u64>;

fn clock_join(into: &mut Clock, other: &Clock) {
    for (&t, &v) in other {
        let e = into.entry(t).or_insert(0);
        *e = (*e).max(v);
    }
}

#[derive(Debug, Default)]
struct LineMeta {
    /// The last write: (thread, epoch at write, event position).
    last_write: Option<(u32, u64, u64)>,
    /// Reads since the last write: thread -> (epoch, event position).
    reads: BTreeMap<u32, (u64, u64)>,
}

/// The happens-before race / stale-window pass.
#[derive(Debug)]
pub struct RacePass {
    clocks: BTreeMap<u32, Clock>,
    current: u32,
    /// Attached regions: base -> (end, pmo).
    regions: BTreeMap<Va, (Va, PmoId)>,
    /// Detached-without-shootdown hazard windows:
    /// (base, end, pmo, detach position, detaching thread).
    stale: Vec<(Va, Va, PmoId, u64, ThreadId)>,
    lines: BTreeMap<Va, LineMeta>,
}

impl Default for RacePass {
    fn default() -> Self {
        Self::new()
    }
}

impl RacePass {
    /// Creates the pass (main thread running, clock started).
    #[must_use]
    pub fn new() -> Self {
        let mut clocks = BTreeMap::new();
        clocks.insert(0, Clock::from([(0, 1)]));
        RacePass {
            clocks,
            current: 0,
            regions: BTreeMap::new(),
            stale: Vec::new(),
            lines: BTreeMap::new(),
        }
    }

    fn region_of(&self, va: Va) -> Option<PmoId> {
        let (_, (end, pmo)) = self.regions.range(..=va).next_back()?;
        (va < *end).then_some(*pmo)
    }

    fn stale_region_of(&self, va: Va) -> Option<(PmoId, u64, ThreadId)> {
        self.stale
            .iter()
            .find(|(base, end, ..)| va >= *base && va < *end)
            .map(|&(_, _, p, pos, t)| (p, pos, t))
    }

    fn diag(ctx: EventCtx, class: ViolationClass, message: String) -> Diagnostic {
        Diagnostic {
            pass: "hb-race",
            class,
            severity: Severity::Error,
            thread: ctx.thread,
            position: ctx.pos,
            message,
        }
    }

    fn access(&mut self, va: Va, size: u8, write: bool, ctx: EventCtx, out: &mut Vec<Diagnostic>) {
        let Some(pmo) = self.region_of(va) else {
            if let Some((stale_pmo, dpos, dthread)) = self.stale_region_of(va) {
                out.push(Self::diag(
                    ctx,
                    ViolationClass::StaleWindowAccess,
                    format!(
                        "{} at {va:#x} (event {}) races the revoke of pmo {stale_pmo} by \
                         thread {dthread} (event {dpos}): mapping torn down with no \
                         intervening ranged shootdown",
                        if write { "store" } else { "load" },
                        ctx.pos,
                    ),
                ));
            }
            return;
        };
        // Bump this thread's own component once per access: each access
        // gets a distinct epoch.
        let me = self.current;
        let epoch = {
            let clock = self.clocks.get_mut(&me).expect("current thread has a clock");
            let e = clock.entry(me).or_insert(0);
            *e += 1;
            *e
        };
        let my_clock = self.clocks[&me].clone();
        let seen = |t: u32| my_clock.get(&t).copied().unwrap_or(0);
        let end = va + u64::from(size).max(1);
        let mut line = va & !(LINE - 1);
        while line < end {
            let meta = self.lines.entry(line).or_default();
            if let Some((wt, we, wpos)) = meta.last_write {
                if wt != me && seen(wt) < we {
                    out.push(Self::diag(
                        ctx,
                        ViolationClass::CrossThreadRace,
                        format!(
                            "thread {me} {} line {line:#x} of pmo {pmo} (event {}) unordered \
                             with thread {wt}'s write (event {wpos})",
                            if write { "writes" } else { "reads" },
                            ctx.pos,
                        ),
                    ));
                }
            }
            if write {
                for (&rt, &(re, rpos)) in &meta.reads {
                    if rt != me && seen(rt) < re {
                        out.push(Self::diag(
                            ctx,
                            ViolationClass::CrossThreadRace,
                            format!(
                                "thread {me} writes line {line:#x} of pmo {pmo} (event {}) \
                                 unordered with thread {rt}'s read (event {rpos})",
                                ctx.pos,
                            ),
                        ));
                    }
                }
                meta.last_write = Some((me, epoch, ctx.pos));
                meta.reads.clear();
            } else {
                meta.reads.insert(me, (epoch, ctx.pos));
            }
            line += LINE;
        }
    }
}

impl AnalyzerPass for RacePass {
    fn name(&self) -> &'static str {
        "hb-race"
    }

    fn check(&mut self, ctx: EventCtx, ev: &TraceEvent, out: &mut Vec<Diagnostic>) {
        match *ev {
            TraceEvent::ThreadSwitch { thread } => {
                let t = thread.raw();
                if !self.clocks.contains_key(&t) {
                    // Fork: the new thread inherits the forking thread's
                    // history and starts its own component.
                    let mut clock = self.clocks[&self.current].clone();
                    let e = clock.entry(t).or_insert(0);
                    *e += 1;
                    self.clocks.insert(t, clock);
                }
                self.current = t;
            }
            TraceEvent::Shootdown { pmo } => {
                // Global barrier: every core acknowledges the IPI.
                let mut merged = Clock::new();
                for clock in self.clocks.values() {
                    clock_join(&mut merged, clock);
                }
                for clock in self.clocks.values_mut() {
                    *clock = merged.clone();
                }
                self.stale.retain(|(_, _, p, ..)| *p != pmo);
            }
            TraceEvent::Attach { pmo, base, size, .. } => {
                // A fresh mapping: old hazards and line history for the
                // range are gone (the OS cannot hand out a range whose
                // shootdown it still owes).
                let end = base + size;
                self.stale.retain(|(b, e, ..)| *e <= base || *b >= end);
                self.lines.retain(|va, _| *va < base || *va >= end);
                self.regions.insert(base, (end, pmo));
            }
            TraceEvent::Detach { pmo } => {
                if let Some((&base, &(end, _))) = self.regions.iter().find(|(_, (_, p))| *p == pmo)
                {
                    self.regions.remove(&base);
                    self.stale.push((base, end, pmo, ctx.pos, ctx.thread));
                }
            }
            TraceEvent::Load { va, size } => self.access(va, size, false, ctx, out),
            TraceEvent::Store { va, size } | TraceEvent::StoreData { va, size, .. } => {
                self.access(va, size, true, ctx, out);
            }
            _ => {}
        }
    }

    fn finish(&mut self, _ctx: EventCtx, _out: &mut Vec<Diagnostic>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Analyzer;
    use pmo_trace::{ThreadId, TraceSink};

    const BASE: Va = 0x20_0000;

    fn analyzer() -> Analyzer {
        Analyzer::new("race-test").with_pass(RacePass::new())
    }

    fn attach(a: &mut Analyzer, pmo: u32, base: Va) {
        a.event(TraceEvent::Attach { pmo: PmoId::new(pmo), base, size: 1 << 20, nvm: true });
    }

    fn switch(a: &mut Analyzer, t: u32) {
        a.event(TraceEvent::ThreadSwitch { thread: ThreadId::new(t) });
    }

    #[test]
    fn single_thread_is_clean() {
        let mut a = analyzer();
        attach(&mut a, 1, BASE);
        a.store(BASE + 0x100, 8);
        a.load(BASE + 0x100, 8);
        a.store(BASE + 0x100, 8);
        assert!(a.finish().is_clean());
    }

    #[test]
    fn fork_orders_earlier_accesses() {
        let mut a = analyzer();
        attach(&mut a, 1, BASE);
        a.store(BASE + 0x100, 8); // main writes
        switch(&mut a, 1); // thread 1 forks from main: ordered
        a.store(BASE + 0x100, 8);
        assert!(a.finish().is_clean());
    }

    #[test]
    fn unordered_cross_thread_write_races() {
        let mut a = analyzer();
        attach(&mut a, 1, BASE);
        switch(&mut a, 1); // fork thread 1 (before main's write)
        switch(&mut a, 0); // back to main
        a.store(BASE + 0x100, 8); // main writes after the fork
        switch(&mut a, 1); // no new edge
        a.store(BASE + 0x100, 8); // t1 cannot have seen main's write
        let report = a.finish();
        assert!(report.errors().any(|d| d.class == ViolationClass::CrossThreadRace), "{report}");
    }

    #[test]
    fn read_write_race_detected() {
        let mut a = analyzer();
        attach(&mut a, 1, BASE);
        switch(&mut a, 1);
        switch(&mut a, 0);
        a.load(BASE + 0x100, 8); // main reads
        switch(&mut a, 1);
        a.store(BASE + 0x100, 8); // t1's write races the read
        let report = a.finish();
        assert!(report.errors().any(|d| d.class == ViolationClass::CrossThreadRace));
    }

    #[test]
    fn concurrent_reads_do_not_race() {
        let mut a = analyzer();
        attach(&mut a, 1, BASE);
        a.store(BASE + 0x100, 8); // main writes first
        switch(&mut a, 1); // fork: ordered after the write
        switch(&mut a, 0);
        a.load(BASE + 0x100, 8);
        switch(&mut a, 1);
        a.load(BASE + 0x100, 8); // two unordered reads: fine
        assert!(a.finish().is_clean());
    }

    #[test]
    fn shootdown_is_a_barrier() {
        let mut a = analyzer();
        attach(&mut a, 1, BASE);
        attach(&mut a, 2, BASE + (2 << 20));
        switch(&mut a, 1);
        switch(&mut a, 0);
        a.store(BASE + 0x100, 8);
        // Detach + shootdown of the *other* pmo still syncs every core.
        a.event(TraceEvent::Detach { pmo: PmoId::new(2) });
        a.event(TraceEvent::Shootdown { pmo: PmoId::new(2) });
        switch(&mut a, 1);
        a.store(BASE + 0x100, 8); // now ordered after main's store
        assert!(a.finish().is_clean());
    }

    #[test]
    fn stale_window_access_detected() {
        let mut a = analyzer();
        attach(&mut a, 1, BASE);
        a.store(BASE + 0x100, 8);
        a.event(TraceEvent::Detach { pmo: PmoId::new(1) });
        // No shootdown: this access may hit a stale translation.
        a.load(BASE + 0x100, 8);
        let report = a.finish();
        assert!(report.errors().any(|d| d.class == ViolationClass::StaleWindowAccess), "{report}");
    }

    #[test]
    fn shootdown_clears_stale_window() {
        let mut a = analyzer();
        attach(&mut a, 1, BASE);
        a.store(BASE + 0x100, 8);
        a.event(TraceEvent::Detach { pmo: PmoId::new(1) });
        a.event(TraceEvent::Shootdown { pmo: PmoId::new(1) });
        a.load(BASE + 0x100, 8); // a plain wild access, not a stale one
        assert!(a.finish().is_clean());
    }
}
