//! ERIM-style binary inspection of executable code images.
//!
//! ERIM (Vahldiek-Oberwagner et al., USENIX Security '19, §4.2) makes the
//! call-gate discipline *enforceable* by statically scanning the
//! process's executable pages for PKRU-updating instruction sequences and
//! rejecting any occurrence outside a registered call gate. The key
//! subtlety is that x86 has no alignment: an indirect jump can land at
//! any byte offset, so the scan must consider sequences formed *across*
//! intended instruction boundaries and *inside* immediates or
//! displacements — `mov eax, 0x00EF010F` carries an executable WRPKRU in
//! its immediate. The scanner here is therefore a pure byte-level sweep
//! over every offset of a [`CodeImage`]; it never disassembles.
//!
//! Two sequences update the protection-key rights register:
//!
//! * `WRPKRU` — bytes `0F 01 EF`;
//! * `XRSTOR` — opcode `0F AE /5` with a memory operand (ModRM reg field
//!   `101`, mod ≠ `11`), which can reload PKRU from a crafted XSAVE area.
//!
//! ModRM bytes with reg `101` and mod `11` encode `LFENCE` (`0F AE E8+`):
//! they byte-alias the XRSTOR opcode but cannot execute as one, so they
//! are reported on the counted *lint* tier, as is a sequence straddling a
//! gate boundary (neither provably trusted nor provably unreachable).
//! Occurrences fully inside a registered gate are the design working as
//! intended and stay silent.
//!
//! For each unsafe site the diagnostic carries ERIM's §5 fix: *sequence
//! elimination* — rewrite the embedding instruction so the bytes no
//! longer appear (split the immediate, reassign registers, insert a
//! pseudo-NOP between the offending bytes) or move the update into a
//! registered gate.

use pmo_trace::{CodeImage, ThreadId, TraceEvent, Va};

use crate::diag::{AnalyzerPass, Diagnostic, EventCtx, Severity, ViolationClass};

/// The WRPKRU instruction bytes.
pub const WRPKRU: [u8; 3] = [0x0F, 0x01, 0xEF];

/// Virtual address the canonical trusted-monitor text segment loads at
/// (classic ELF text base; distinct from every pool mapping).
pub const MONITOR_TEXT_BASE: Va = 0x40_0000;

/// What kind of key-update byte sequence a scan hit found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyUpdateKind {
    /// `0F 01 EF` — WRPKRU, a direct PKRU write.
    Wrpkru,
    /// `0F AE /5` with a memory operand — XRSTOR, which can restore PKRU
    /// from an attacker-controlled XSAVE area.
    Xrstor,
    /// `0F AE E8+` — LFENCE: byte-aliases the XRSTOR opcode (reg field
    /// `101`) but mod `11` makes it a fence, not a key update.
    XrstorAlias,
}

impl KeyUpdateKind {
    /// Short mnemonic for diagnostics.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            KeyUpdateKind::Wrpkru => "WRPKRU",
            KeyUpdateKind::Xrstor => "XRSTOR",
            KeyUpdateKind::XrstorAlias => "LFENCE (XRSTOR byte-alias)",
        }
    }

    /// Whether an occurrence outside a gate is actually executable as a
    /// key update (the error tier); aliases land on the lint tier.
    #[must_use]
    pub fn exploitable(self) -> bool {
        !matches!(self, KeyUpdateKind::XrstorAlias)
    }
}

/// One scan hit: a key-update(-looking) byte sequence at a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyUpdateSite {
    /// Byte offset of the first sequence byte in the image.
    pub offset: u64,
    /// Sequence length in bytes (always 3 for both encodings).
    pub len: u64,
    /// Which sequence matched.
    pub kind: KeyUpdateKind,
}

impl KeyUpdateSite {
    /// The matched bytes, for hex-dumping into diagnostics.
    #[must_use]
    pub fn bytes<'a>(&self, image: &'a CodeImage) -> &'a [u8] {
        &image.bytes[self.offset as usize..(self.offset + self.len) as usize]
    }
}

/// Scans every byte offset of `image` for key-update sequences,
/// gate-blind: callers classify hits against the image's gates. Hits come
/// back in ascending offset order.
#[must_use]
pub fn scan_image(image: &CodeImage) -> Vec<KeyUpdateSite> {
    let mut sites = Vec::new();
    let b = &image.bytes;
    for i in 0..b.len().saturating_sub(2) {
        if b[i] != 0x0F {
            continue;
        }
        if b[i + 1] == 0x01 && b[i + 2] == 0xEF {
            sites.push(KeyUpdateSite { offset: i as u64, len: 3, kind: KeyUpdateKind::Wrpkru });
        } else if b[i + 1] == 0xAE && (b[i + 2] >> 3) & 7 == 5 {
            let kind =
                if b[i + 2] >> 6 == 3 { KeyUpdateKind::XrstorAlias } else { KeyUpdateKind::Xrstor };
            sites.push(KeyUpdateSite { offset: i as u64, len: 3, kind });
        }
    }
    sites
}

/// The canonical trusted-monitor code image: a call gate that zeroes
/// ECX/EDX, loads the new PKRU value, executes WRPKRU, and restores
/// extended state via XRSTOR — wrapped in benign prologue/epilogue bytes.
/// Both key-update sequences sit inside the registered gate, so a clean
/// inspection of this image is silent.
#[must_use]
pub fn monitor_image(thread: ThreadId, base: Va) -> CodeImage {
    let mut bytes = vec![
        0x55, // push rbp
        0x48, 0x89, 0xE5, // mov rbp, rsp
        0x90, 0x90, // nop padding up to the gate
    ];
    let gate_start = bytes.len() as u64;
    bytes.extend_from_slice(&[0x31, 0xC9]); // xor ecx, ecx
    bytes.extend_from_slice(&[0x31, 0xD2]); // xor edx, edx
    bytes.extend_from_slice(&[0xB8, 0x0C, 0x00, 0x00, 0x00]); // mov eax, PKRU value
    bytes.extend_from_slice(&WRPKRU); // wrpkru
    bytes.extend_from_slice(&[0x0F, 0xAE, 0x2B]); // xrstor [rbx]
    let gate_end = bytes.len() as u64;
    bytes.extend_from_slice(&[0xB8, 0x01, 0x00, 0x00, 0x00]); // mov eax, 1
    bytes.push(0x5D); // pop rbp
    bytes.push(0xC3); // ret
    CodeImage::new(thread, base, bytes).with_gate("pmo_call_gate", gate_start, gate_end)
}

/// ERIM §5 sequence-elimination rewrite suggestion for a site.
fn rewrite_suggestion(kind: KeyUpdateKind) -> &'static str {
    match kind {
        KeyUpdateKind::Wrpkru => {
            "rewrite per ERIM §5 sequence elimination: if the bytes are an \
             intentional WRPKRU, move it into a registered call gate; if they \
             are data (immediate/displacement), split the constant across two \
             instructions or insert a pseudo-NOP between 0f 01 and ef"
        }
        KeyUpdateKind::Xrstor => {
            "rewrite per ERIM §5 sequence elimination: route XRSTOR through a \
             registered call gate that pins the XSAVE area's PKRU field, or \
             recode the embedding instruction so 0f ae /5 no longer appears"
        }
        KeyUpdateKind::XrstorAlias => {
            "not executable as a key update (mod=11 encodes LFENCE); eliminate \
             the byte-alias anyway if the surrounding code is attacker-visible"
        }
    }
}

/// The binary-inspection pass: holds the registered per-thread code
/// images and, at end of trace, reports every key-update sequence found
/// outside a registered call gate.
///
/// Inspection is a whole-image property, not an event property, so
/// [`AnalyzerPass::check`] only keeps the pass streaming-compatible; all
/// findings are emitted from [`AnalyzerPass::finish`].
#[derive(Debug, Default)]
pub struct InspectPass {
    images: Vec<CodeImage>,
}

impl InspectPass {
    /// An inspection pass with no images (register via
    /// [`InspectPass::with_image`]).
    #[must_use]
    pub fn new() -> Self {
        InspectPass { images: Vec::new() }
    }

    /// Registers a code image to inspect (builder style).
    #[must_use]
    pub fn with_image(mut self, image: CodeImage) -> Self {
        self.images.push(image);
        self
    }

    /// The standard pass used by the audit-by-default replay path: the
    /// canonical trusted-monitor image, mapped once for the process at
    /// [`MONITOR_TEXT_BASE`].
    #[must_use]
    pub fn standard() -> Self {
        InspectPass::new().with_image(monitor_image(ThreadId::MAIN, MONITOR_TEXT_BASE))
    }

    /// Read-only view of the registered images.
    #[must_use]
    pub fn images(&self) -> &[CodeImage] {
        &self.images
    }
}

impl AnalyzerPass for InspectPass {
    fn name(&self) -> &'static str {
        "inspect"
    }

    fn check(&mut self, _ctx: EventCtx, _ev: &TraceEvent, _out: &mut Vec<Diagnostic>) {}

    fn finish(&mut self, ctx: EventCtx, out: &mut Vec<Diagnostic>) {
        for image in &self.images {
            for site in scan_image(image) {
                let end = site.offset + site.len;
                if image.gate_containing(site.offset, end).is_some() {
                    continue; // the registered gate: the design working as intended
                }
                let hex: Vec<String> =
                    site.bytes(image).iter().map(|b| format!("{b:02x}")).collect();
                let va = image.base + site.offset;
                let (severity, detail) = if !site.kind.exploitable() {
                    (Severity::Lint, rewrite_suggestion(site.kind).to_string())
                } else if let Some(gate) = image.gate_straddling(site.offset, end) {
                    (
                        Severity::Lint,
                        format!(
                            "straddles the boundary of gate '{}' — not provably inside \
                             the trusted gate; move the sequence fully inside it",
                            gate.name
                        ),
                    )
                } else {
                    (Severity::Error, rewrite_suggestion(site.kind).to_string())
                };
                out.push(Diagnostic {
                    pass: self.name(),
                    class: ViolationClass::UnsafeKeyUpdateSite,
                    severity,
                    thread: image.thread,
                    position: ctx.pos,
                    message: format!(
                        "{} byte sequence {} at va {va:#x} (image offset {}) outside any \
                         registered call gate; {detail}",
                        site.kind.mnemonic(),
                        hex.join(" "),
                        site.offset,
                    ),
                });
            }
        }
    }
}

/// Outcome of inspecting one seeded code image in the self-validation
/// suite.
#[derive(Clone, Debug)]
pub struct InspectCase {
    /// Which planted bug this case seeded.
    pub bug: crate::mutate::SeededCodeBug,
    /// Whether inspection reported the expected error class.
    pub caught: bool,
    /// Error-severity findings the seeded image produced.
    pub errors: usize,
    /// Lint-severity findings the seeded image produced.
    pub lints: usize,
}

/// Self-validation of the inspection pass: the clean trusted-monitor
/// image must be silent, and every [`crate::mutate::SeededCodeBug`]
/// planted into it must be caught as [`ViolationClass::UnsafeKeyUpdateSite`].
#[derive(Clone, Debug)]
pub struct InspectValidation {
    /// Findings (errors + lints) on the unmutated monitor image — must
    /// be zero.
    pub control_findings: usize,
    /// One case per seeded code bug.
    pub cases: Vec<InspectCase>,
}

impl InspectValidation {
    /// Whether the control stayed silent and every seeded bug was caught.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.control_findings == 0 && self.cases.iter().all(|c| c.caught)
    }

    /// Hand-rolled JSON (the workspace's no-new-dependencies policy).
    #[must_use]
    pub fn to_json(&self) -> String {
        let cases: Vec<String> = self
            .cases
            .iter()
            .map(|c| {
                format!(
                    "{{\"bug\":{},\"caught\":{},\"errors\":{},\"lints\":{}}}",
                    crate::diag::json_string(c.bug.label()),
                    c.caught,
                    c.errors,
                    c.lints
                )
            })
            .collect();
        format!(
            "{{\"control_findings\":{},\"passed\":{},\"cases\":[{}]}}",
            self.control_findings,
            self.passed(),
            cases.join(",")
        )
    }
}

impl std::fmt::Display for InspectValidation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "inspection control image: {} finding(s) ({})",
            self.control_findings,
            if self.control_findings == 0 { "silent, as required" } else { "MUST be silent" }
        )?;
        for c in &self.cases {
            writeln!(
                f,
                "seeded {}: {} ({} error(s), {} lint(s))",
                c.bug.label(),
                if c.caught { "caught" } else { "MISSED" },
                c.errors,
                c.lints
            )?;
        }
        Ok(())
    }
}

/// Diagnostics the inspection pass produces for `image` over an empty
/// event stream.
fn inspect_only(image: CodeImage) -> Vec<Diagnostic> {
    let mut pass = InspectPass::new().with_image(image);
    let mut out = Vec::new();
    pass.finish(EventCtx { pos: 0, thread: ThreadId::MAIN }, &mut out);
    out
}

/// Runs the inspection self-validation suite: control image silent, each
/// seeded code bug caught. This is the analyzer's own correctness
/// argument for the binary-inspection half of the ERIM property, mirror
/// of the trace-mutation suite in [`crate::mutate`].
#[must_use]
pub fn validate_inspection() -> InspectValidation {
    use crate::mutate::{seed_code_bug, SeededCodeBug};
    let control = monitor_image(ThreadId::MAIN, MONITOR_TEXT_BASE);
    let control_findings = inspect_only(control.clone()).len();
    let cases = SeededCodeBug::ALL
        .iter()
        .map(|&bug| {
            let diags = inspect_only(seed_code_bug(&control, bug));
            let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
            let lints = diags.iter().filter(|d| d.severity == Severity::Lint).count();
            let caught = diags
                .iter()
                .any(|d| d.class == bug.expected_class() && d.severity == Severity::Error);
            InspectCase { bug, caught, errors, lints }
        })
        .collect();
    InspectValidation { control_findings, cases }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::{seed_code_bug, SeededCodeBug};

    #[test]
    fn monitor_image_is_silent() {
        let diags = inspect_only(monitor_image(ThreadId::MAIN, MONITOR_TEXT_BASE));
        assert!(diags.is_empty(), "trusted monitor must be inspection-clean: {diags:?}");
    }

    #[test]
    fn out_of_gate_wrpkru_is_an_error() {
        let img = CodeImage::new(ThreadId::MAIN, 0x1000, vec![0x90, 0x0F, 0x01, 0xEF, 0x90]);
        let diags = inspect_only(img);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].class, ViolationClass::UnsafeKeyUpdateSite);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("WRPKRU"));
        assert!(diags[0].message.contains("0x1001"), "va anchored: {}", diags[0].message);
        assert!(diags[0].message.contains("ERIM §5"), "rewrite suggestion present");
    }

    #[test]
    fn wrpkru_inside_an_immediate_is_found() {
        // mov eax, 0x00EF010F — the immediate bytes 0F 01 EF are an
        // executable WRPKRU for a jump landing one byte in.
        let img = CodeImage::new(ThreadId::MAIN, 0, vec![0xB8, 0x0F, 0x01, 0xEF, 0x00]);
        let diags = inspect_only(img);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("image offset 1"));
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn sequence_across_instruction_boundary_is_found() {
        // `or eax, 0x0F` (83 C8 0F) followed by `add [rdi], ebp`
        // (01 2F)... the tail byte 0F + following 01 + EF-starting byte
        // form WRPKRU across two intended instructions.
        let img = CodeImage::new(ThreadId::MAIN, 0, vec![0x83, 0xC8, 0x0F, 0x01, 0xEF, 0x90]);
        let diags = inspect_only(img);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("image offset 2"));
    }

    #[test]
    fn xrstor_memory_form_is_error_and_lfence_alias_is_lint() {
        // 0F AE 2B = xrstor [rbx] (mod=00 reg=101): exploitable.
        // 0F AE E8 = lfence (mod=11 reg=101): byte-alias, lint tier.
        let img = CodeImage::new(ThreadId::MAIN, 0, vec![0x0F, 0xAE, 0x2B, 0x90, 0x0F, 0xAE, 0xE8]);
        let diags = inspect_only(img);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("XRSTOR"));
        assert_eq!(diags[1].severity, Severity::Lint);
        assert!(diags[1].message.contains("LFENCE"));
    }

    #[test]
    fn gate_straddling_sequence_is_a_lint() {
        // Gate covers offsets [0, 2); the WRPKRU at offset 1 leaks out.
        let img = CodeImage::new(ThreadId::MAIN, 0, vec![0x90, 0x0F, 0x01, 0xEF, 0x90])
            .with_gate("g", 0, 2);
        let diags = inspect_only(img);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Lint);
        assert!(diags[0].message.contains("straddles"));
    }

    #[test]
    fn validation_suite_passes() {
        let v = validate_inspection();
        assert!(v.passed(), "{v}");
        assert_eq!(v.cases.len(), SeededCodeBug::ALL.len());
        assert_eq!(v.control_findings, 0);
        let json = v.to_json();
        assert!(json.contains("\"passed\":true"), "{json}");
        assert!(json.contains("out-of-gate-wrpkru"), "{json}");
    }

    #[test]
    fn seeded_images_differ_from_control_only_by_the_plant() {
        let control = monitor_image(ThreadId::MAIN, MONITOR_TEXT_BASE);
        for bug in SeededCodeBug::ALL {
            let seeded = seed_code_bug(&control, bug);
            assert!(seeded.bytes.len() > control.bytes.len(), "{bug:?} appends bytes");
            assert_eq!(seeded.gates, control.gates, "{bug:?} must not touch the gates");
            assert_eq!(&seeded.bytes[..control.bytes.len()], &control.bytes[..]);
        }
    }

    /// Deterministic property harness (the workspace vendors no proptest
    /// crate): across many pseudo-random images, inspection finds *every*
    /// planted unsafe sequence — at arbitrary offsets, inside immediates,
    /// spanning intended instruction boundaries — stays silent on
    /// gate-registered plants, and confines alias near-misses to the
    /// counted lint tier. Filler bytes never contain `0F`, so the planted
    /// sites are the exact ground truth.
    #[test]
    fn property_no_false_negatives_across_random_images() {
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            // SplitMix64: deterministic, dependency-free.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        // 0F-free filler alphabet: no accidental sequence can form.
        const FILLER: [u8; 8] = [0x90, 0x48, 0x55, 0x5D, 0xC3, 0x31, 0x01, 0xEF];
        for round in 0..200 {
            let len = 64 + (next() % 192) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| FILLER[(next() % 8) as usize]).collect();
            // One gate somewhere in the middle.
            let gate_start = 8 + next() % (len as u64 / 2);
            let gate_end = gate_start + 8 + next() % 16;
            let gate_end = gate_end.min(len as u64);
            // Plant 1-4 sequences at non-overlapping 8-byte-aligned slots.
            let plants = 1 + (next() % 4) as usize;
            let mut expected_errors: Vec<u64> = Vec::new();
            let mut expected_lints: Vec<u64> = Vec::new();
            let mut used: Vec<u64> = Vec::new();
            for _ in 0..plants {
                let slot = (next() % ((len as u64 - 8) / 8)) * 8;
                if used.iter().any(|&u| u.abs_diff(slot) < 8) {
                    continue;
                }
                used.push(slot);
                // Three shapes: bare WRPKRU, WRPKRU in a mov immediate
                // (offset +1), XRSTOR memory form; plus the LFENCE alias.
                let (seq, site_off): (&[u8], u64) = match next() % 4 {
                    0 => (&[0x0F, 0x01, 0xEF], 0),
                    1 => (&[0xB8, 0x0F, 0x01, 0xEF, 0x00], 1),
                    2 => (&[0x0F, 0xAE, 0x2B], 0),
                    _ => (&[0x0F, 0xAE, 0xE8], 0),
                };
                bytes[slot as usize..slot as usize + seq.len()].copy_from_slice(seq);
                let start = slot + site_off;
                let in_gate = start >= gate_start && start + 3 <= gate_end;
                let straddle = start < gate_end && start + 3 > gate_start && !in_gate;
                let alias = seq == [0x0F, 0xAE, 0xE8];
                if in_gate {
                    continue; // registered occurrence: must stay silent
                } else if alias || straddle {
                    expected_lints.push(start);
                } else {
                    expected_errors.push(start);
                }
            }
            let img = CodeImage::new(ThreadId::MAIN, 0, bytes).with_gate("g", gate_start, gate_end);
            let diags = inspect_only(img);
            let mut got_errors: Vec<u64> = Vec::new();
            let mut got_lints: Vec<u64> = Vec::new();
            for d in &diags {
                let off = d
                    .message
                    .split("image offset ")
                    .nth(1)
                    .and_then(|s| s.split(')').next())
                    .and_then(|s| s.parse::<u64>().ok())
                    .expect("diagnostic carries its image offset");
                match d.severity {
                    Severity::Error => got_errors.push(off),
                    Severity::Lint => got_lints.push(off),
                }
            }
            expected_errors.sort_unstable();
            expected_lints.sort_unstable();
            got_errors.sort_unstable();
            got_lints.sort_unstable();
            assert_eq!(got_errors, expected_errors, "round {round}: error sites");
            assert_eq!(got_lints, expected_lints, "round {round}: lint-tier sites");
        }
    }
}
