//! Static-analysis front-end: check recorded or generated PMO traces.
//!
//! ```text
//! pmo-analyzer --all                        # every built-in workload
//! pmo-analyzer --workload micro:AVL --workload whisper:Echo
//! pmo-analyzer --trace run.pmot --strict    # analyze a recorded trace
//! pmo-analyzer --all --json report.json --record traces/
//! ```
//!
//! Workload specs: `micro[:AVL|RBT|BT|LL|SS]`,
//! `whisper[:Echo|YCSB|TPCC|C-tree|Hashmap|Redis]`, `server`. A family
//! name without a bench selects the whole family.
//!
//! The permission-window policy defaults per trace family — the strict
//! "≤2 enabled PMOs, all windows closed" discipline for WHISPER-style
//! traces, the always-readable multi-PMO baseline for micro/server and
//! recorded files — and can be forced with `--strict` / `--baseline`.
//! Exits non-zero iff any source produces an error-severity diagnostic
//! (lints never fail the run). Under `--strict` a truncated diagnostics
//! log (findings dropped beyond the retained-log cap) also fails the
//! run: a strict verdict must rest on the complete finding set, never a
//! silently truncated sample.

use std::io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pmo_analyzer::{standard_analyzer, validate_inspection, AnalysisReport, PermWindowPass};
use pmo_trace::{TeeSink, TraceFile, TraceFileWriter};
use pmo_workloads::{
    MicroBench, MicroConfig, MicroWorkload, ServerConfig, ServerWorkload, WhisperBench,
    WhisperConfig, WhisperWorkload, Workload,
};

/// One analysis source.
enum Job {
    File(PathBuf),
    Micro(MicroBench),
    Whisper(WhisperBench),
    Server,
}

/// Forced window policy, overriding the per-family default.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Policy {
    Strict,
    Baseline,
}

fn arg_values(flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(v) = args.next() {
                out.push(v);
            }
        }
    }
    out
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn parse_spec(spec: &str) -> Option<Vec<Job>> {
    let lower = spec.to_ascii_lowercase();
    if lower == "server" {
        return Some(vec![Job::Server]);
    }
    if let Some(bench) = lower.strip_prefix("micro") {
        let bench = bench.strip_prefix(':').unwrap_or("");
        if bench.is_empty() {
            return Some(MicroBench::ALL.iter().copied().map(Job::Micro).collect());
        }
        let b = MicroBench::ALL.iter().copied().find(|b| b.label().eq_ignore_ascii_case(bench))?;
        return Some(vec![Job::Micro(b)]);
    }
    if let Some(bench) = lower.strip_prefix("whisper") {
        let bench = bench.strip_prefix(':').unwrap_or("");
        if bench.is_empty() {
            return Some(WhisperBench::ALL.iter().copied().map(Job::Whisper).collect());
        }
        let b =
            WhisperBench::ALL.iter().copied().find(|b| b.label().eq_ignore_ascii_case(bench))?;
        return Some(vec![Job::Whisper(b)]);
    }
    None
}

fn window_pass(default_strict: bool, forced: Option<Policy>) -> PermWindowPass {
    let strict = match forced {
        Some(Policy::Strict) => true,
        Some(Policy::Baseline) => false,
        None => default_strict,
    };
    if strict {
        PermWindowPass::strict()
    } else {
        PermWindowPass::baseline()
    }
}

fn analyze_file(path: &Path, forced: Option<Policy>) -> io::Result<AnalysisReport> {
    let mut analyzer = standard_analyzer(&path.display().to_string(), window_pass(false, forced));
    TraceFile::open(path)?.stream_into(&mut analyzer)?;
    Ok(analyzer.finish())
}

fn analyze_workload(
    name: &str,
    workload: &mut dyn Workload,
    default_strict: bool,
    forced: Option<Policy>,
    record_dir: Option<&Path>,
) -> io::Result<AnalysisReport> {
    let mut analyzer = standard_analyzer(name, window_pass(default_strict, forced));
    if let Some(dir) = record_dir {
        let path = dir.join(format!("{name}.pmot"));
        let mut writer = TraceFileWriter::create(&path)?;
        let mut tee = TeeSink::new(&mut writer, &mut analyzer);
        workload.generate(&mut tee);
        writer.finish()?;
    } else {
        workload.generate(&mut analyzer);
    }
    Ok(analyzer.finish())
}

/// CI-sized workload configurations: deterministic, a few seconds total.
fn micro_config() -> MicroConfig {
    MicroConfig {
        pmos: 12,
        active_pmos: 12,
        pmo_bytes: 1 << 20,
        initial_nodes: 12,
        ops: 150,
        ..MicroConfig::quick()
    }
}

fn whisper_config() -> WhisperConfig {
    WhisperConfig { txns: 150, records: 256, pmo_bytes: 8 << 20, ..WhisperConfig::quick() }
}

fn server_config() -> ServerConfig {
    ServerConfig {
        clients: 8,
        requests: 200,
        quantum: 3,
        initial_records: 16,
        pmo_bytes: 1 << 20,
        ..ServerConfig::default()
    }
}

fn run_job(
    job: &Job,
    forced: Option<Policy>,
    record_dir: Option<&Path>,
) -> io::Result<AnalysisReport> {
    match job {
        Job::File(path) => analyze_file(path, forced),
        Job::Micro(bench) => {
            let mut w = MicroWorkload::new(*bench, micro_config());
            analyze_workload(&format!("micro-{bench}"), &mut w, false, forced, record_dir)
        }
        Job::Whisper(bench) => {
            let mut w = WhisperWorkload::new(*bench, whisper_config());
            // Per-transaction windows close cleanly: hold the trace to
            // the paper's strict discipline.
            analyze_workload(&format!("whisper-{bench}"), &mut w, true, forced, record_dir)
        }
        Job::Server => {
            let mut w = ServerWorkload::new(server_config());
            analyze_workload("server", &mut w, false, forced, record_dir)
        }
    }
}

fn usage() -> &'static str {
    "usage: pmo-analyzer [--trace FILE]... [--workload SPEC]... [--all]\n\
     \x20                   [--strict | --baseline] [--record DIR] [--json PATH] [--show-lints]\n\
     \x20                   [--inspect-validate] [--inspect-json PATH]\n\
     \n\
     SPEC: micro[:AVL|RBT|BT|LL|SS] | whisper[:Echo|YCSB|TPCC|C-tree|Hashmap|Redis] | server\n\
     \n\
     --inspect-validate runs the binary-inspection seeded-bug suite (the\n\
     clean trusted-monitor image must be silent; every planted key-update\n\
     sequence must be caught) and fails the run if any case misses."
}

fn main() -> ExitCode {
    if has_flag("--help") || has_flag("-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let forced = match (has_flag("--strict"), has_flag("--baseline")) {
        (true, true) => {
            eprintln!("--strict and --baseline are mutually exclusive");
            return ExitCode::FAILURE;
        }
        (true, false) => Some(Policy::Strict),
        (false, true) => Some(Policy::Baseline),
        (false, false) => None,
    };

    let mut jobs: Vec<Job> = Vec::new();
    for path in arg_values("--trace") {
        jobs.push(Job::File(PathBuf::from(path)));
    }
    for spec in arg_values("--workload") {
        match parse_spec(&spec) {
            Some(parsed) => jobs.extend(parsed),
            None => {
                eprintln!("unknown workload spec '{spec}'\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    if has_flag("--all") {
        jobs.extend(MicroBench::ALL.iter().copied().map(Job::Micro));
        jobs.extend(WhisperBench::ALL.iter().copied().map(Job::Whisper));
        jobs.push(Job::Server);
    }
    // Binary-inspection self-validation is its own job kind: success
    // means the seeded bugs WERE caught, so its verdict is tracked
    // separately from the trace reports (whose errors fail the run).
    let inspect_validation = if has_flag("--inspect-validate") {
        let v = validate_inspection();
        print!("{v}");
        if let Some(path) = arg_values("--inspect-json").pop() {
            if let Err(e) = std::fs::write(&path, v.to_json()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        Some(v)
    } else {
        None
    };

    if jobs.is_empty() {
        if let Some(v) = &inspect_validation {
            return if v.passed() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
        eprintln!("nothing to analyze\n{}", usage());
        return ExitCode::FAILURE;
    }

    let record_dir = arg_values("--record").pop().map(PathBuf::from);
    if let Some(dir) = &record_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let show_lints = has_flag("--show-lints");
    let mut reports: Vec<AnalysisReport> = Vec::new();
    for job in &jobs {
        match run_job(job, forced, record_dir.as_deref()) {
            Ok(report) => {
                let truncated = if report.complete() {
                    String::new()
                } else {
                    format!(" ({} dropped from the log)", report.dropped())
                };
                println!(
                    "analyzed {} events from {}: {} error(s), {} lint(s){truncated}",
                    report.events,
                    report.source,
                    report.errors().count(),
                    report.lints().count(),
                );
                for d in report.errors() {
                    println!("  {d}");
                }
                if show_lints {
                    for d in report.lints() {
                        println!("  {d}");
                    }
                }
                reports.push(report);
            }
            Err(e) => {
                eprintln!("analysis failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let errors: usize = reports.iter().map(|r| r.errors().count()).sum();
    let lints: usize = reports.iter().map(|r| r.lints().count()).sum();
    let dropped: u64 = reports.iter().map(AnalysisReport::dropped).sum();
    println!("{} source(s) analyzed: {errors} error(s), {lints} lint(s)", reports.len());

    // Strict mode refuses to pass a verdict on a truncated finding set.
    let strict_truncation = forced == Some(Policy::Strict) && dropped > 0;
    if strict_truncation {
        eprintln!("--strict: diagnostics log truncated ({dropped} finding(s) dropped); failing");
    }

    if let Some(path) = arg_values("--json").pop() {
        let body: Vec<String> = reports.iter().map(AnalysisReport::to_json).collect();
        let json = format!("[{}]", body.join(","));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if inspect_validation.as_ref().is_some_and(|v| !v.passed()) {
        eprintln!("--inspect-validate: seeded-bug suite failed; failing");
        return ExitCode::FAILURE;
    }

    // `passed` (not the retained-error count) so errors dropped beyond
    // the retained-log cap still fail the run.
    if reports.iter().all(AnalysisReport::passed) && !strict_truncation {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
