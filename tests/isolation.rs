//! Cross-crate security tests: the paper's Figure 2 semantics (temporal
//! and spatial isolation) must hold under every protective scheme, and
//! the specific guarantees of each design must hold at scale.

use pmo_repro::protect::scheme::{ProtectionScheme, SchemeKind};
use pmo_repro::simarch::SimConfig;
use pmo_repro::trace::{AccessKind, Perm, PmoId, ThreadId};

const GB1: u64 = 1 << 30;

/// Schemes that enforce domain permissions (everything but the baseline).
const PROTECTIVE: [SchemeKind; 5] = [
    SchemeKind::Lowerbound,
    SchemeKind::DefaultMpk,
    SchemeKind::LibMpk,
    SchemeKind::MpkVirt,
    SchemeKind::DomainVirt,
];

fn scheme_with_domains(kind: SchemeKind, n: u32) -> Box<dyn ProtectionScheme> {
    let config = SimConfig::isca2020();
    let mut scheme = kind.build(&config);
    for i in 1..=n {
        scheme.attach(PmoId::new(i), u64::from(i) * GB1, 8 << 20, true);
    }
    scheme
}

#[test]
fn figure2a_temporal_isolation_all_schemes() {
    for kind in PROTECTIVE {
        let mut s = scheme_with_domains(kind, 2);
        let pmo = PmoId::new(1);
        // Attach alone grants nothing.
        assert!(!s.access(GB1, AccessKind::Read).allowed(), "{kind}: pre-grant read");
        // +R: ld A permitted, st B denied.
        s.set_perm(pmo, Perm::ReadOnly);
        assert!(s.access(GB1, AccessKind::Read).allowed(), "{kind}: ld A");
        assert!(!s.access(GB1 + 8, AccessKind::Write).allowed(), "{kind}: st B");
        // +W: st C permitted.
        s.set_perm(pmo, Perm::ReadWrite);
        assert!(s.access(GB1 + 16, AccessKind::Write).allowed(), "{kind}: st C");
        // -R -W: ld D denied.
        s.set_perm(pmo, Perm::None);
        assert!(!s.access(GB1 + 24, AccessKind::Read).allowed(), "{kind}: ld D");
    }
}

#[test]
fn figure2b_spatial_isolation_all_schemes() {
    for kind in PROTECTIVE {
        let mut s = scheme_with_domains(kind, 2);
        let pmo = PmoId::new(1);
        // Thread 1 takes read-write; st A is permitted for it...
        s.context_switch(ThreadId::new(1));
        s.set_perm(pmo, Perm::ReadWrite);
        assert!(s.access(GB1, AccessKind::Write).allowed(), "{kind}: t1 st A");
        // ...thread 2 has no grant: both ld A and st B are denied.
        s.context_switch(ThreadId::new(2));
        assert!(!s.access(GB1, AccessKind::Read).allowed(), "{kind}: t2 ld A");
        assert!(!s.access(GB1 + 8, AccessKind::Write).allowed(), "{kind}: t2 st B");
        // Insufficient permission is also denied per-thread.
        s.set_perm(pmo, Perm::ReadOnly);
        assert!(!s.access(GB1 + 8, AccessKind::Write).allowed(), "{kind}: t2 RO st");
        // Thread 1's grant is intact.
        s.context_switch(ThreadId::new(1));
        assert!(s.access(GB1, AccessKind::Write).allowed(), "{kind}: t1 again");
    }
}

#[test]
fn virtualized_schemes_enforce_hundreds_of_domains() {
    // Beyond MPK's 16-key wall: every domain keeps its own permission.
    for kind in [SchemeKind::LibMpk, SchemeKind::MpkVirt, SchemeKind::DomainVirt] {
        let mut s = scheme_with_domains(kind, 200);
        // Grant odd domains only.
        for i in (1..=200u32).step_by(2) {
            s.set_perm(PmoId::new(i), Perm::ReadWrite);
        }
        for i in 1..=200u32 {
            let va = u64::from(i) * GB1;
            let allowed = s.access(va, AccessKind::Write).allowed();
            assert_eq!(allowed, i % 2 == 1, "{kind}: domain {i}");
        }
        assert_eq!(s.stats().domainless_fallbacks, 0, "{kind}: no silent fallback");
    }
}

#[test]
fn default_mpk_weakens_beyond_fifteen_domains() {
    // The motivating failure: stock MPK cannot protect the 16th domain.
    let mut s = scheme_with_domains(SchemeKind::DefaultMpk, 16);
    assert_eq!(s.stats().domainless_fallbacks, 1);
    assert!(
        s.access(16 * GB1, AccessKind::Write).allowed(),
        "16th domain is silently unprotected under stock MPK"
    );
    assert!(!s.access(GB1, AccessKind::Write).allowed(), "keyed domains still protected");
}

#[test]
fn stale_tlb_state_cannot_bypass_revocation() {
    // Hot TLB entries must not outlive a revocation, under any design.
    for kind in [SchemeKind::MpkVirt, SchemeKind::DomainVirt, SchemeKind::LibMpk] {
        let mut s = scheme_with_domains(kind, 20);
        let pmo = PmoId::new(3);
        s.set_perm(pmo, Perm::ReadWrite);
        for p in 0..16u64 {
            assert!(s.access(3 * GB1 + p * 4096, AccessKind::Write).allowed(), "{kind}");
        }
        s.set_perm(pmo, Perm::None);
        for p in 0..16u64 {
            assert!(
                !s.access(3 * GB1 + p * 4096, AccessKind::Read).allowed(),
                "{kind}: page {p} leaked after revocation"
            );
        }
    }
}

#[test]
fn detach_revokes_under_all_schemes() {
    for kind in PROTECTIVE {
        let mut s = scheme_with_domains(kind, 2);
        s.set_perm(PmoId::new(1), Perm::ReadWrite);
        assert!(s.access(GB1, AccessKind::Write).allowed(), "{kind}");
        s.detach(PmoId::new(1));
        // Re-attach: the old grant must not resurrect.
        s.attach(PmoId::new(1), GB1, 8 << 20, true);
        assert!(
            !s.access(GB1, AccessKind::Read).allowed(),
            "{kind}: permission survived detach/attach"
        );
    }
}

#[test]
fn domain_virt_never_shoots_down() {
    let mut s = scheme_with_domains(SchemeKind::DomainVirt, 300);
    for round in 0..3u64 {
        for i in 1..=300u32 {
            s.set_perm(PmoId::new(i), Perm::ReadWrite);
            assert!(s.access(u64::from(i) * GB1 + round * 64, AccessKind::Write).allowed());
            s.set_perm(PmoId::new(i), Perm::None);
        }
    }
    let stats = s.stats();
    assert_eq!(stats.shootdowns, 0);
    assert_eq!(stats.key_evictions, 0);
    assert!(stats.ptlb_misses > 0, "PTLB pressure is real at 300 domains");
}

#[test]
fn mpk_virt_shootdowns_scale_with_domain_count() {
    let evictions = |n: u32| {
        let mut s = scheme_with_domains(SchemeKind::MpkVirt, n);
        for round in 0..2u64 {
            for i in 1..=n {
                s.set_perm(PmoId::new(i), Perm::ReadWrite);
                s.access(u64::from(i) * GB1 + round, AccessKind::Write);
            }
        }
        s.stats().key_evictions
    };
    assert_eq!(evictions(10), 0, "10 domains fit in 15 keys");
    let at_30 = evictions(30);
    let at_120 = evictions(120);
    assert!(at_30 > 0);
    assert!(at_120 > at_30, "eviction pressure grows with domains");
}
