//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning several crates:
//!
//! - every persistent structure behaves like a `BTreeSet` model under
//!   arbitrary insert/remove/contains sequences;
//! - pool storage's flush/crash model matches a two-copy reference model;
//! - the VA range radix behaves like an interval map;
//! - the permission lattice and PKRU encodings are coherent;
//! - OIDs round-trip through their persistent representation.

use proptest::prelude::*;
use std::collections::BTreeSet;

use pmo_repro::protect::{KeyAllocator, Pkru, RangeRadix};
use pmo_repro::runtime::{Mode, Oid, PmRuntime, PoolStorage};
use pmo_repro::trace::{AccessKind, NullSink, Perm, PmoId};
use pmo_repro::workloads::structs::{
    AvlTree, BplusTree, KeyedStructure, LinkedList, PersistentHashmap, RbTree,
};

#[derive(Debug, Clone, Copy)]
enum SetOp {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn set_ops() -> impl Strategy<Value = Vec<SetOp>> {
    // Keys from a small pool so removes/lookups hit often.
    let key = 0u64..48;
    prop::collection::vec(
        prop_oneof![
            3 => key.clone().prop_map(SetOp::Insert),
            2 => key.clone().prop_map(SetOp::Remove),
            1 => key.prop_map(SetOp::Contains),
        ],
        1..120,
    )
}

fn check_against_model<S: KeyedStructure>(ops: &[SetOp]) {
    let mut rt = PmRuntime::new();
    let mut sink = NullSink::new();
    let pool = rt.pool_create("prop", 8 << 20, Mode::private(), &mut sink).unwrap();
    let mut subject = S::create(&mut rt, pool, 32, &mut sink).unwrap();
    let mut model: BTreeSet<u64> = BTreeSet::new();
    for op in ops {
        match *op {
            SetOp::Insert(k) => {
                subject.insert(&mut rt, k, &mut sink).unwrap();
                model.insert(k);
            }
            SetOp::Remove(k) => {
                let removed = subject.remove(&mut rt, k, &mut sink).unwrap();
                assert_eq!(removed, model.remove(&k), "remove({k})");
            }
            SetOp::Contains(k) => {
                let found = subject.contains(&mut rt, k, &mut sink).unwrap();
                assert_eq!(found, model.contains(&k), "contains({k})");
            }
        }
        assert_eq!(subject.len(), model.len() as u64, "cardinality after {op:?}");
    }
    // Final sweep: total agreement.
    for k in 0u64..48 {
        assert_eq!(
            subject.contains(&mut rt, k, &mut sink).unwrap(),
            model.contains(&k),
            "final contains({k})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn avl_matches_btreeset(ops in set_ops()) {
        check_against_model::<AvlTree>(&ops);
    }

    #[test]
    fn rbtree_matches_btreeset(ops in set_ops()) {
        check_against_model::<RbTree>(&ops);
    }

    #[test]
    fn bplustree_matches_btreeset(ops in set_ops()) {
        check_against_model::<BplusTree>(&ops);
    }

    #[test]
    fn linked_list_matches_btreeset(ops in set_ops()) {
        check_against_model::<LinkedList>(&ops);
    }

    #[test]
    fn hashmap_matches_btreeset(ops in set_ops()) {
        check_against_model::<PersistentHashmap>(&ops);
    }
}

// ---------------------------------------------------------------------
// Storage flush/crash model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum StorageOp {
    Write(u16, Vec<u8>),
    FlushRange(u16, u16),
    Crash,
}

fn storage_ops() -> impl Strategy<Value = Vec<StorageOp>> {
    let write = (0u16..960, prop::collection::vec(any::<u8>(), 1..48))
        .prop_map(|(o, d)| StorageOp::Write(o, d));
    let flush = (0u16..960, 1u16..64).prop_map(|(o, l)| StorageOp::FlushRange(o, l));
    prop::collection::vec(prop_oneof![4 => write, 2 => flush, 1 => Just(StorageOp::Crash)], 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn storage_matches_two_copy_model(ops in storage_ops()) {
        const SIZE: usize = 1024;
        let mut storage = PoolStorage::new(SIZE as u64);
        // Reference model: `current` is what the CPU sees, `persisted`
        // what survives a crash; flush copies line-sized spans across.
        let mut current = vec![0u8; SIZE];
        let mut persisted = vec![0u8; SIZE];
        for op in &ops {
            match op {
                StorageOp::Write(off, data) => {
                    let off = *off as usize;
                    let end = (off + data.len()).min(SIZE);
                    let data = &data[..end - off];
                    storage.write(off as u64, data).unwrap();
                    current[off..end].copy_from_slice(data);
                }
                StorageOp::FlushRange(off, len) => {
                    let off = (*off as usize).min(SIZE - 1);
                    let len = (*len as usize).min(SIZE - off);
                    storage.flush_range(off as u64, len as u64);
                    let first = off / 64 * 64;
                    let last = ((off + len.max(1) - 1) / 64 + 1) * 64;
                    let last = last.min(SIZE);
                    persisted[first..last].copy_from_slice(&current[first..last]);
                }
                StorageOp::Crash => {
                    storage.crash();
                    current.copy_from_slice(&persisted);
                }
            }
            let mut buf = vec![0u8; SIZE];
            storage.read(0, &mut buf).unwrap();
            prop_assert_eq!(&buf, &current, "visible state diverged after {:?}", op);
        }
    }

    // -----------------------------------------------------------------
    // Range radix behaves like an interval map.
    // -----------------------------------------------------------------

    #[test]
    fn radix_matches_interval_model(
        regions in prop::collection::btree_set(0u64..128, 1..40),
        probes in prop::collection::vec((0u64..128, 0u64..(1 << 30)), 64)
    ) {
        const GB1: u64 = 1 << 30;
        let mut radix: RangeRadix<u64> = RangeRadix::new();
        for &slot in &regions {
            radix.insert(slot * GB1, GB1, slot);
        }
        prop_assert_eq!(radix.len(), regions.len());
        for (slot, offset) in probes {
            let hit = radix.lookup(slot * GB1 + offset);
            prop_assert_eq!(hit.map(|h| *h.value), regions.get(&slot).copied());
        }
        // Remove half, re-probe.
        let removed: Vec<u64> = regions.iter().copied().step_by(2).collect();
        for &slot in &removed {
            prop_assert_eq!(radix.remove(slot * GB1), Some(slot));
        }
        for &slot in &removed {
            prop_assert!(radix.lookup(slot * GB1).is_none());
        }
    }

    // The DTT's radix table must agree with a BTreeMap oracle under
    // arbitrary mixed-granule insert/remove/lookup sequences: each slot
    // gets a 1 GiB-aligned base (aligned for every granule) and a granule
    // chosen by slot, so 4 KiB, 2 MiB, and 1 GiB entries coexist at
    // different tree depths and probes exercise both in-region hits and
    // past-the-granule misses.
    #[test]
    fn radix_mixed_granules_match_btreemap_oracle(
        ops in prop::collection::vec((0u64..64, 0u8..3, 0u64..(1u64 << 30)), 1..150)
    ) {
        const GB1: u64 = 1 << 30;
        let granules = [0x1000u64, 0x20_0000, 0x4000_0000];
        let mut radix: RangeRadix<u64> = RangeRadix::new();
        // slot -> (granule, value)
        let mut model: std::collections::BTreeMap<u64, (u64, u64)> =
            std::collections::BTreeMap::new();
        for (i, &(slot, action, offset)) in ops.iter().enumerate() {
            match action {
                0 => {
                    if let std::collections::btree_map::Entry::Vacant(slot_entry) =
                        model.entry(slot)
                    {
                        let granule = granules[(slot % 3) as usize];
                        radix.insert(slot * GB1, granule, i as u64);
                        slot_entry.insert((granule, i as u64));
                    }
                }
                1 => {
                    let expected = model.remove(&slot).map(|(_, v)| v);
                    prop_assert_eq!(radix.remove(slot * GB1), expected);
                }
                _ => {
                    let hit = radix.lookup(slot * GB1 + offset);
                    match model.get(&slot) {
                        Some(&(granule, value)) if offset < granule => {
                            let hit = hit.expect("oracle says mapped");
                            prop_assert_eq!(hit.base, slot * GB1);
                            prop_assert_eq!(hit.granule, granule);
                            prop_assert_eq!(*hit.value, value);
                        }
                        _ => prop_assert!(hit.is_none(), "oracle says unmapped"),
                    }
                }
            }
            prop_assert_eq!(radix.len(), model.len());
            prop_assert_eq!(radix.is_empty(), model.is_empty());
        }
    }

    // -----------------------------------------------------------------
    // Key allocation under pressure.
    // -----------------------------------------------------------------

    // The key allocator must maintain the domain↔key bijection under
    // arbitrary acquire/free/touch sequences with more domains than
    // usable keys, evicting exactly when (and only when) every usable
    // key is taken — the regime the MPK-virt eviction protocol (and the
    // model checker's key-pressure scenarios) depends on.
    #[test]
    fn key_allocator_keeps_bijection_under_pressure(
        ops in prop::collection::vec((1u32..7, 0u8..3), 1..200)
    ) {
        let mut ka = KeyAllocator::new(4); // 3 usable keys, up to 6 domains
        let usable = ka.usable();
        // key -> owning domain
        let mut model: std::collections::BTreeMap<u8, PmoId> =
            std::collections::BTreeMap::new();
        for &(raw, action) in &ops {
            let domain = PmoId::new(raw);
            match action {
                0 => {
                    // Acquire a key, evicting a PLRU victim when full.
                    if ka.key_of(domain).is_none() {
                        let full = model.len() as u32 == usable;
                        match ka.alloc(domain) {
                            Some(key) => {
                                prop_assert!(!full, "alloc must fail only when full");
                                prop_assert!(model.insert(key, domain).is_none());
                            }
                            None => {
                                prop_assert!(full, "alloc must succeed while keys remain");
                                let (key, victim) = ka.evict_and_assign(domain);
                                prop_assert_eq!(model.insert(key, domain), Some(victim));
                                prop_assert!(ka.key_of(victim).is_none());
                            }
                        }
                    }
                }
                1 => {
                    let expected = model
                        .iter()
                        .find(|(_, &d)| d == domain)
                        .map(|(&k, _)| k);
                    prop_assert_eq!(ka.free(domain), expected);
                    if let Some(key) = expected {
                        model.remove(&key);
                    }
                }
                _ => {
                    if let Some(key) = ka.key_of(domain) {
                        ka.touch(key); // PLRU hint: must not change ownership
                    }
                }
            }
            // The assignment view, key_of, and owner must agree exactly.
            prop_assert_eq!(ka.in_use() as usize, model.len());
            let assignments: std::collections::BTreeMap<u8, PmoId> =
                ka.assignments().collect();
            prop_assert_eq!(&assignments, &model);
            for (&key, &d) in &model {
                prop_assert!(key != 0, "NULL key is never assigned");
                prop_assert_eq!(ka.owner(key), Some(d));
                prop_assert_eq!(ka.key_of(d), Some(key));
            }
        }
    }

    // -----------------------------------------------------------------
    // Permission lattice / PKRU coherence.
    // -----------------------------------------------------------------

    #[test]
    fn perm_lattice_is_coherent(a in 0u8..3, b in 0u8..3) {
        let perms = [Perm::None, Perm::ReadOnly, Perm::ReadWrite];
        let (a, b) = (perms[a as usize], perms[b as usize]);
        // meet never allows more than either side; join never less.
        for kind in [AccessKind::Read, AccessKind::Write] {
            prop_assert!(!a.meet(b).allows(kind) || (a.allows(kind) && b.allows(kind)));
            prop_assert!(a.join(b).allows(kind) || (!a.allows(kind) && !b.allows(kind)));
        }
        // 2-bit encoding round-trips.
        prop_assert_eq!(Perm::decode(a.encode()), a);
    }

    #[test]
    fn perm_lattice_laws_hold(a in 0u8..3, b in 0u8..3, c in 0u8..3) {
        let perms = [Perm::None, Perm::ReadOnly, Perm::ReadWrite];
        let (a, b, c) = (perms[a as usize], perms[b as usize], perms[c as usize]);
        // meet and join are commutative, associative, and idempotent.
        prop_assert_eq!(a.meet(b), b.meet(a));
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.meet(b).meet(c), a.meet(b.meet(c)));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        prop_assert_eq!(a.meet(a), a);
        prop_assert_eq!(a.join(a), a);
        // Absorption ties the two operations into one lattice.
        prop_assert_eq!(a.meet(a.join(b)), a);
        prop_assert_eq!(a.join(a.meet(b)), a);
        // The lattice order agrees with the derived Ord: meet is the
        // smaller element, join the larger.
        prop_assert_eq!(a.meet(b), a.min(b));
        prop_assert_eq!(a.join(b), a.max(b));
        prop_assert_eq!(a.meet(b) <= a, true);
        prop_assert_eq!(a.join(b) >= a, true);
    }

    #[test]
    fn pkru_updates_are_independent(ops in prop::collection::vec((0u8..16, 0u8..3), 1..40)) {
        let perms = [Perm::None, Perm::ReadOnly, Perm::ReadWrite];
        let mut reg = Pkru::ALL_DENIED;
        let mut model = [Perm::None; 16];
        for (key, p) in ops {
            let perm = perms[p as usize];
            reg = reg.with_perm(key, perm);
            model[key as usize] = perm;
            for k in 0..16u8 {
                prop_assert_eq!(reg.perm(k), model[k as usize], "key {}", k);
            }
        }
        prop_assert_eq!(Pkru::from_raw(reg.raw()), reg);
    }

    #[test]
    fn oid_roundtrips(pool in 1u32.., offset in any::<u32>()) {
        let oid = Oid::new(PmoId::new(pool), offset);
        prop_assert_eq!(Oid::from_raw(oid.to_raw()), oid);
        prop_assert!(!oid.is_null());
    }
}

// ---------------------------------------------------------------------
// Trace files round-trip arbitrary event sequences.
// ---------------------------------------------------------------------

fn arb_event() -> impl Strategy<Value = pmo_repro::trace::TraceEvent> {
    use pmo_repro::trace::{FaultKind, OpKind, ThreadId, TraceEvent};
    prop_oneof![
        (1u32..100_000).prop_map(|count| TraceEvent::Compute { count }),
        (any::<u64>(), 1u8..=64).prop_map(|(va, size)| TraceEvent::Load { va, size }),
        (any::<u64>(), 1u8..=64).prop_map(|(va, size)| TraceEvent::Store { va, size }),
        (any::<u64>(), 1u8..=8, any::<u64>()).prop_map(|(va, size, data)| TraceEvent::StoreData {
            va,
            size,
            data
        }),
        (1u32.., 0u8..3).prop_map(|(pmo, p)| TraceEvent::SetPerm {
            pmo: PmoId::new(pmo),
            perm: [Perm::None, Perm::ReadOnly, Perm::ReadWrite][p as usize],
        }),
        (1u32.., any::<u64>(), 0u64..(1 << 40), any::<bool>()).prop_map(
            |(pmo, base, size, nvm)| TraceEvent::Attach { pmo: PmoId::new(pmo), base, size, nvm }
        ),
        (1u32..).prop_map(|pmo| TraceEvent::Detach { pmo: PmoId::new(pmo) }),
        any::<u32>().prop_map(|t| TraceEvent::ThreadSwitch { thread: ThreadId::new(t) }),
        any::<u64>().prop_map(|va| TraceEvent::Flush { va }),
        Just(TraceEvent::Fence),
        any::<bool>()
            .prop_map(|end| TraceEvent::Op { kind: if end { OpKind::End } else { OpKind::Begin } }),
        (1u32.., 0u8..3).prop_map(|(pmo, k)| TraceEvent::Fault {
            pmo: PmoId::new(pmo),
            kind: [FaultKind::PowerFailure, FaultKind::TornWrite, FaultKind::MediaError]
                [k as usize],
        }),
        (1u32..).prop_map(|pmo| TraceEvent::Shootdown { pmo: PmoId::new(pmo) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trace_files_roundtrip(events in prop::collection::vec(arb_event(), 0..200)) {
        use pmo_repro::trace::{RecordedTrace, TraceFile, TraceFileWriter, TraceSink, TraceSource};
        let dir = std::env::temp_dir()
            .join(format!("pmo-prop-{}-{:x}", std::process::id(), events.len()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.pmot");

        let mut writer = TraceFileWriter::create(&path).unwrap();
        for ev in &events {
            writer.event(*ev);
        }
        prop_assert_eq!(writer.finish().unwrap(), events.len() as u64);

        let file = TraceFile::open(&path).unwrap();
        let mut replayed = RecordedTrace::new();
        file.replay(&mut replayed);
        prop_assert_eq!(replayed.events(), events.as_slice());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // -----------------------------------------------------------------
    // Crash-image enumeration is closed under the persistency model:
    // whatever subset of a window's stores a power failure lets persist
    // (per line: the entry state or the content after any store, lines
    // independent), the resulting image hashes into the enumerated set.
    // -----------------------------------------------------------------

    #[test]
    fn crash_enumeration_contains_every_legal_persist_choice(
        ops in prop::collection::vec(
            (0u64..4, 0u64..8, any::<u64>(), 0u8..6),
            0..12,
        ),
        first_data in any::<u64>(),
        choice_seed in any::<u64>(),
    ) {
        use pmo_repro::analyzer::{enumerate, image_hash, EnumConfig, LineImage};
        use pmo_repro::trace::TraceEvent;

        const LINE: usize = 64;
        const LINES: usize = 4;
        let base = 1u64 << 30;
        let pmo = PmoId::new(1);

        // Build the trace and, in parallel, an independent reference
        // model of each line's reachable persisted states: the zero
        // entry state plus the line content after every store to it.
        let mut events = vec![TraceEvent::Attach {
            pmo,
            base,
            size: (LINES * LINE) as u64,
            nvm: true,
        }];
        let mut current = [[0u8; LINE]; LINES];
        let mut candidates: Vec<Vec<LineImage>> =
            (0..LINES).map(|_| vec![[0u8; LINE]]).collect();
        let mut store = |events: &mut Vec<TraceEvent>, line: u64, word: u64, data: u64| {
            events.push(TraceEvent::StoreData { va: base + line * 64 + word * 8, size: 8, data });
            let (l, w) = (line as usize, word as usize);
            current[l][w * 8..w * 8 + 8].copy_from_slice(&data.to_le_bytes());
            let img = current[l];
            if !candidates[l].contains(&img) {
                candidates[l].push(img);
            }
        };
        store(&mut events, 0, 0, first_data); // ensure the window has activity
        for &(line, word, data, kind) in &ops {
            if kind < 5 {
                store(&mut events, line, word, data);
            } else {
                // A flush changes what settles at the next fence, never
                // what a crash inside this window can leave behind.
                events.push(TraceEvent::Flush { va: base + line * 64 });
            }
        }

        let result = enumerate(&events, EnumConfig {
            max_images_per_window: 1 << 20,
            max_windows: 16,
        });
        prop_assert!(result.exhaustive(), "caps must not truncate this product");
        let hashes = result.pool_hashes(pmo);

        // Pick an arbitrary legal persist choice per line and hash it.
        let mut image: Vec<(u64, LineImage)> = Vec::new();
        for (l, cands) in candidates.iter().enumerate() {
            let pick = ((choice_seed >> (8 * l)) as usize) % cands.len();
            let img = cands[pick];
            if img.iter().any(|&b| b != 0) {
                image.push((l as u64, img));
            }
        }
        let hash = image_hash(&image);
        prop_assert!(
            hashes.contains(&hash),
            "legal image (choice seed {choice_seed:#x}) missing from {} enumerated hashes",
            hashes.len()
        );
    }

    // -----------------------------------------------------------------
    // The static trace audit agrees with the lowerbound oracle: an
    // access is "unguarded" exactly when the scheme would deny it.
    // -----------------------------------------------------------------

    #[test]
    fn audit_matches_lowerbound_denials(
        ops in prop::collection::vec((0u8..8, 1u32..6, 0u64..4096u64), 1..150)
    ) {
        use pmo_repro::protect::scheme::SchemeKind;
        use pmo_repro::simarch::SimConfig;
        use pmo_repro::trace::{AuditViolation, PermAudit, TraceEvent, TraceSink};

        const GB1: u64 = 1 << 30;
        let config = SimConfig::isca2020();
        let mut scheme = SchemeKind::Lowerbound.build(&config);
        let mut audit = PermAudit::with_max_open_windows(usize::MAX);

        // Attach five domains in both views.
        for d in 1..6u32 {
            scheme.attach(PmoId::new(d), u64::from(d) * GB1, 1 << 20, true);
            audit.event(TraceEvent::Attach {
                pmo: PmoId::new(d),
                base: u64::from(d) * GB1,
                size: 1 << 20,
                nvm: true,
            });
        }

        let mut denied = 0u64;
        for (op, d, off) in ops {
            let pmo = PmoId::new(d);
            let va = u64::from(d) * GB1 + off;
            match op {
                0..=2 => {
                    let perm = [Perm::None, Perm::ReadOnly, Perm::ReadWrite][(op % 3) as usize];
                    scheme.set_perm(pmo, perm);
                    audit.event(TraceEvent::SetPerm { pmo, perm });
                }
                3..=5 => {
                    let kind = if op == 3 { AccessKind::Write } else { AccessKind::Read };
                    if !scheme.access(va, kind).allowed() {
                        denied += 1;
                    }
                    let ev = if op == 3 {
                        TraceEvent::Store { va, size: 8 }
                    } else {
                        TraceEvent::Load { va, size: 8 }
                    };
                    audit.event(ev);
                }
                _ => {
                    let t = pmo_repro::trace::ThreadId::new(u32::from(op) % 3);
                    scheme.context_switch(t);
                    audit.event(TraceEvent::ThreadSwitch { thread: t });
                }
            }
        }
        let unguarded = audit
            .violations()
            .iter()
            .filter(|v| matches!(v, AuditViolation::UnguardedAccess { .. }))
            .count() as u64;
        prop_assert_eq!(unguarded, denied);
    }
}
