//! The benchmark generators must emit permission-disciplined traces:
//! every PMO access inside a window, windows closed when done. This is
//! the trace-level analogue of the schemes never faulting on them.

use pmo_repro::trace::{AuditViolation, PermAudit};
use pmo_repro::workloads::{
    MicroBench, MicroConfig, MicroWorkload, ServerConfig, ServerWorkload, WhisperBench,
    WhisperConfig, WhisperWorkload, Workload,
};

#[test]
fn whisper_traces_are_window_clean() {
    for bench in WhisperBench::ALL {
        let mut w = WhisperWorkload::new(
            bench,
            WhisperConfig { txns: 150, records: 256, pmo_bytes: 8 << 20, ..WhisperConfig::quick() },
        );
        let mut audit = PermAudit::new(); // the strict <=2-window discipline
        w.setup(&mut audit);
        w.run(&mut audit);
        let violations = audit.finish();
        assert!(violations.is_empty(), "{bench}: {violations:?}");
    }
}

#[test]
fn micro_traces_have_no_unguarded_accesses() {
    // The multi-PMO protocol keeps a read grant open on every PMO (the
    // paper's baseline), so the <=2-window rule does not apply — but no
    // access may ever fall outside a window.
    for bench in MicroBench::ALL {
        let mut w = MicroWorkload::new(
            bench,
            MicroConfig {
                pmos: 12,
                active_pmos: 12,
                pmo_bytes: 1 << 20,
                initial_nodes: 12,
                ops: 150,
                insert_pct: 90,
                value_bytes: 64,
                seed: 5,
            },
        );
        let mut audit = PermAudit::with_max_open_windows(usize::MAX);
        w.setup(&mut audit);
        w.run(&mut audit);
        let violations = audit.finish();
        let unguarded: Vec<_> = violations
            .iter()
            .filter(|v| matches!(v, AuditViolation::UnguardedAccess { .. }))
            .collect();
        assert!(unguarded.is_empty(), "{bench}: {unguarded:?}");
        // The only residue is the always-readable baseline grants.
        assert!(violations.iter().all(|v| matches!(v, AuditViolation::WindowLeftOpen { .. })));
    }
}

#[test]
fn server_trace_is_per_thread_disciplined() {
    let mut w = ServerWorkload::new(ServerConfig {
        clients: 8,
        requests: 200,
        quantum: 3,
        initial_records: 16,
        pmo_bytes: 1 << 20,
        seed: 2,
    });
    let mut audit = PermAudit::with_max_open_windows(usize::MAX);
    w.setup(&mut audit);
    w.run(&mut audit);
    let violations = audit.finish();
    // Handlers only ever touch their own client's PMO, under a grant.
    assert!(
        !violations.iter().any(|v| matches!(v, AuditViolation::UnguardedAccess { .. })),
        "{violations:?}"
    );
}
