//! Failure-injection tests: durable transactions must be atomic no
//! matter where in the redo-log protocol the power fails. The storage
//! layer's injection hook kills a specific persistent store; the test
//! then crashes, re-attaches (running recovery), and checks that every
//! transaction is either fully visible or fully invisible.

use proptest::prelude::*;

use pmo_repro::runtime::{AttachIntent, FaultPlan, Mode, Oid, PmRuntime, PoolHealth, RuntimeError};
use pmo_repro::trace::NullSink;

const ACCOUNTS: u32 = 8;
const INITIAL: u64 = 1_000;

fn setup() -> (PmRuntime, Oid) {
    let mut rt = PmRuntime::new();
    let mut sink = NullSink::new();
    let pool = rt.pool_create("bank", 1 << 20, Mode::private(), &mut sink).unwrap();
    let root = rt.pool_root(pool, u64::from(ACCOUNTS) * 8, &mut sink).unwrap();
    let mut tx = rt.begin_txn(pool, &mut sink).unwrap();
    for i in 0..ACCOUNTS {
        tx.write_u64(root, i * 8, INITIAL).unwrap();
    }
    tx.commit().unwrap();
    (rt, root)
}

/// One random transfer inside a durable transaction; power may fail at
/// any persistent store along the way.
fn transfer(
    rt: &mut PmRuntime,
    root: Oid,
    from: u32,
    to: u32,
    amount: u64,
) -> Result<(), RuntimeError> {
    let mut sink = NullSink::new();
    let pool = root.pool();
    let mut tx = rt.begin_txn(pool, &mut sink)?;
    if from != to {
        let a = tx.read_u64(root, from * 8)?;
        let b = tx.read_u64(root, to * 8)?;
        tx.write_u64(root, from * 8, a.saturating_sub(amount))?;
        tx.write_u64(root, to * 8, b + amount.min(a))?;
    }
    tx.commit()
}

fn total(rt: &mut PmRuntime, root: Oid) -> u64 {
    let mut sink = NullSink::new();
    (0..ACCOUNTS).map(|i| rt.read_u64(root, i * 8, &mut sink).unwrap()).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// Kill the power after a random number of stores mid-transaction:
    /// after crash + recovery, the bank's total is conserved (the
    /// transaction applied fully or not at all).
    #[test]
    fn transfers_are_atomic_under_power_failure(
        fail_after in 0u64..60,
        from in 0u32..ACCOUNTS,
        to in 0u32..ACCOUNTS,
        amount in 1u64..500,
    ) {
        let (mut rt, root) = setup();
        let mut sink = NullSink::new();
        let pool = root.pool();
        prop_assert_eq!(total(&mut rt, root), u64::from(ACCOUNTS) * INITIAL);

        rt.inject_power_failure_after(pool, fail_after).unwrap();
        let result = transfer(&mut rt, root, from, to, amount);
        // Whatever happened, the machine now loses power.
        rt.crash();
        let pool = rt.pool_open("bank", AttachIntent::ReadWrite, &mut sink).unwrap();
        let root = rt.pool_root(pool, u64::from(ACCOUNTS) * 8, &mut sink).unwrap();

        // Money is conserved in every outcome.
        prop_assert_eq!(total(&mut rt, root), u64::from(ACCOUNTS) * INITIAL);

        // And per-account state is all-or-nothing.
        let a = rt.read_u64(root, from * 8, &mut sink).unwrap();
        if from != to {
            let applied = a != INITIAL;
            let b = rt.read_u64(root, to * 8, &mut sink).unwrap();
            if applied {
                prop_assert_eq!(a, INITIAL - amount, "debit applied in full");
                prop_assert_eq!(b, INITIAL + amount, "credit applied in full");
            } else {
                prop_assert_eq!(b, INITIAL, "neither side applied");
            }
            // If the transfer reported success, it must be durable.
            if result.is_ok() {
                prop_assert!(applied, "committed transfer lost by the crash");
            }
        }
    }

    /// A chain of transfers with one failure point somewhere in the
    /// middle: every transaction before the failure survives, the failing
    /// one is atomic, and the total is always conserved.
    #[test]
    fn transfer_chains_conserve_money(
        transfers in prop::collection::vec((0u32..ACCOUNTS, 0u32..ACCOUNTS, 1u64..200), 1..8),
        fail_after in 20u64..400,
    ) {
        let (mut rt, root) = setup();
        let mut sink = NullSink::new();
        let pool = root.pool();
        rt.inject_power_failure_after(pool, fail_after).unwrap();
        for &(from, to, amount) in &transfers {
            if transfer(&mut rt, root, from, to, amount).is_err() {
                break;
            }
        }
        rt.crash();
        let pool = rt.pool_open("bank", AttachIntent::ReadWrite, &mut sink).unwrap();
        let root = rt.pool_root(pool, u64::from(ACCOUNTS) * 8, &mut sink).unwrap();
        let _ = pool;
        prop_assert_eq!(total(&mut rt, root), u64::from(ACCOUNTS) * INITIAL);
    }

    /// Torn cache-line writes at the crash: each dirty line may persist
    /// fully, revert fully, or tear word-by-word. The redo-log protocol
    /// persists every durable step before depending on it, so the bank's
    /// total must still be conserved at every crash point.
    #[test]
    fn transfers_are_atomic_under_torn_writes(
        fail_after in 0u64..60,
        seed in any::<u64>(),
        from in 0u32..ACCOUNTS,
        to in 0u32..ACCOUNTS,
        amount in 1u64..500,
    ) {
        let (mut rt, root) = setup();
        let mut sink = NullSink::new();
        let pool = root.pool();
        rt.inject_fault(pool, FaultPlan::torn_write(fail_after, seed)).unwrap();
        let result = transfer(&mut rt, root, from, to, amount);
        rt.crash();
        let pool = rt.pool_open("bank", AttachIntent::ReadWrite, &mut sink).unwrap();
        let root = rt.pool_root(pool, u64::from(ACCOUNTS) * 8, &mut sink).unwrap();
        prop_assert_eq!(total(&mut rt, root), u64::from(ACCOUNTS) * INITIAL);
        // A transfer that reported success stays durable through a torn
        // crash: the home locations were already persisted at commit.
        if result.is_ok() && from != to {
            let a = rt.read_u64(root, from * 8, &mut sink).unwrap();
            prop_assert_eq!(a, INITIAL - amount, "committed debit lost or torn");
        }
    }

    /// NVM media errors at the crash: recently-written lines may become
    /// unreadable. Every outcome must be typed and bounded — a clean
    /// recovery conserves the total, damaged accounts read back as
    /// `MediaError`, and an unrecoverable pool is quarantined (stickily)
    /// rather than served with silent corruption.
    #[test]
    fn media_errors_degrade_gracefully(
        fail_after in 0u64..60,
        seed in any::<u64>(),
        from in 0u32..ACCOUNTS,
        to in 0u32..ACCOUNTS,
        amount in 1u64..500,
    ) {
        let (mut rt, root) = setup();
        let mut sink = NullSink::new();
        let pool = root.pool();
        rt.inject_fault(pool, FaultPlan::media_error(fail_after, seed)).unwrap();
        let _ = transfer(&mut rt, root, from, to, amount);
        rt.crash();
        match rt.pool_open("bank", AttachIntent::ReadWrite, &mut sink) {
            Ok(pool) => {
                let root = rt.pool_root(pool, u64::from(ACCOUNTS) * 8, &mut sink).unwrap();
                let mut sum = 0u64;
                let mut unreadable = 0u32;
                for i in 0..ACCOUNTS {
                    match rt.read_u64(root, i * 8, &mut sink) {
                        Ok(v) => sum += v,
                        Err(RuntimeError::MediaError { .. }) => unreadable += 1,
                        Err(other) => prop_assert!(false, "untyped read failure: {other}"),
                    }
                }
                if unreadable == 0 {
                    prop_assert_eq!(sum, u64::from(ACCOUNTS) * INITIAL);
                }
            }
            Err(RuntimeError::PoolQuarantined { .. }) => {
                // Quarantine is sticky until the operator intervenes.
                let again = rt.pool_open("bank", AttachIntent::ReadWrite, &mut sink);
                prop_assert!(
                    matches!(again, Err(RuntimeError::PoolQuarantined { .. })),
                    "quarantine must be sticky, got {again:?}"
                );
                prop_assert_eq!(rt.pool_health("bank").unwrap(), PoolHealth::Quarantined);
            }
            Err(other) => prop_assert!(false, "untyped attach failure: {other}"),
        }
    }
}

#[test]
fn failure_injection_fires() {
    let (mut rt, root) = setup();
    let pool = root.pool();
    rt.inject_power_failure_after(pool, 0).unwrap();
    let err = transfer(&mut rt, root, 0, 1, 10).unwrap_err();
    assert_eq!(err, RuntimeError::PowerFailure);
    // Crash clears the injection; the pool works again afterwards.
    rt.crash();
    let mut sink = NullSink::new();
    let pool = rt.pool_open("bank", AttachIntent::ReadWrite, &mut sink).unwrap();
    let root = rt.pool_root(pool, u64::from(ACCOUNTS) * 8, &mut sink).unwrap();
    transfer(&mut rt, root, 0, 1, 10).unwrap();
    assert_eq!(total(&mut rt, root), u64::from(ACCOUNTS) * INITIAL);
}
