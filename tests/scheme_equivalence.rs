//! Differential testing: every protective scheme must make *identical*
//! allow/deny decisions. The lowerbound scheme (a direct encoding of the
//! paper's §IV.A legality rule) is the oracle; MPK, libmpk and the two
//! hardware designs are checked against it on pseudo-random operation
//! sequences, including permission churn, thread switches, detach/attach
//! cycles, and key-eviction pressure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmo_repro::protect::scheme::SchemeKind;
use pmo_repro::simarch::SimConfig;
use pmo_repro::trace::{AccessKind, Perm, PmoId, ThreadId};

const GB1: u64 = 1 << 30;

#[derive(Debug, Clone, Copy)]
enum Op {
    SetPerm(u32, Perm),
    Access(u32, u64, AccessKind),
    Switch(u32),
    DetachAttach(u32),
}

fn random_ops(seed: u64, domains: u32, ops: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| {
            let d = rng.gen_range(1..=domains);
            match rng.gen_range(0..10) {
                0..=2 => Op::SetPerm(
                    d,
                    match rng.gen_range(0..3) {
                        0 => Perm::None,
                        1 => Perm::ReadOnly,
                        _ => Perm::ReadWrite,
                    },
                ),
                3..=7 => Op::Access(
                    d,
                    rng.gen_range(0..64u64) * 4096 + rng.gen_range(0..4096),
                    if rng.gen_bool(0.5) { AccessKind::Read } else { AccessKind::Write },
                ),
                8 => Op::Switch(rng.gen_range(0..3)),
                _ => Op::DetachAttach(d),
            }
        })
        .collect()
}

/// Applies the sequence, returning the allow/deny outcome of each access.
fn decisions(kind: SchemeKind, domains: u32, ops: &[Op]) -> Vec<bool> {
    let config = SimConfig::isca2020();
    let mut scheme = kind.build(&config);
    for i in 1..=domains {
        scheme.attach(PmoId::new(i), u64::from(i) * GB1, 8 << 20, true);
    }
    let mut out = Vec::new();
    for op in ops {
        match *op {
            Op::SetPerm(d, perm) => {
                scheme.set_perm(PmoId::new(d), perm);
            }
            Op::Access(d, off, kind) => {
                out.push(scheme.access(u64::from(d) * GB1 + off, kind).allowed());
            }
            Op::Switch(t) => {
                scheme.context_switch(ThreadId::new(t));
            }
            Op::DetachAttach(d) => {
                scheme.detach(PmoId::new(d));
                scheme.attach(PmoId::new(d), u64::from(d) * GB1, 8 << 20, true);
            }
        }
    }
    out
}

fn check_equivalence(domains: u32, kinds: &[SchemeKind], seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let ops = random_ops(seed, domains, 400);
        let oracle = decisions(SchemeKind::Lowerbound, domains, &ops);
        for &kind in kinds {
            let got = decisions(kind, domains, &ops);
            assert_eq!(got.len(), oracle.len(), "{kind} seed {seed}: access count mismatch");
            for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
                assert_eq!(
                    g, o,
                    "{kind} seed {seed}: decision {i} diverged from the oracle \
                     (ops: {:?})",
                    &ops
                );
            }
        }
    }
}

#[test]
fn all_schemes_match_oracle_within_key_capacity() {
    // <= 14 domains: even stock MPK and guarded libmpk have keys for all.
    check_equivalence(
        12,
        &[SchemeKind::DefaultMpk, SchemeKind::LibMpk, SchemeKind::MpkVirt, SchemeKind::DomainVirt],
        0..6,
    );
}

#[test]
fn virtualized_schemes_match_oracle_under_eviction_pressure() {
    // 80 domains through 14/15 keys: constant evictions, shootdowns and
    // guard faults — decisions must still be identical.
    check_equivalence(
        80,
        &[SchemeKind::LibMpk, SchemeKind::MpkVirt, SchemeKind::DomainVirt],
        10..16,
    );
}

#[test]
fn hardware_designs_match_oracle_at_scale() {
    check_equivalence(400, &[SchemeKind::MpkVirt, SchemeKind::DomainVirt], 20..23);
}
