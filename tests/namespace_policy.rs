//! OS-level PMO policy tests through the runtime: users, modes, attach
//! keys, sharing and destruction — the paper's §IV.A second requirement
//! ("the OS can grant attachment requests only if the user who owns the
//! process is allowed to attach the PMO").

use pmo_repro::runtime::{AttachIntent, Mode, PmRuntime, RuntimeError};
use pmo_repro::trace::NullSink;

#[test]
fn ownership_and_modes_gate_attachment() {
    let mut rt = PmRuntime::new();
    let mut sink = NullSink::new();
    rt.set_uid(100);
    let pool = rt.pool_create("alice-data", 1 << 20, Mode::private(), &mut sink).unwrap();
    rt.pool_close(pool, &mut sink).unwrap();

    // Another user cannot attach a private pool at all.
    rt.set_uid(200);
    assert!(matches!(
        rt.pool_open("alice-data", AttachIntent::Read, &mut sink),
        Err(RuntimeError::PermissionDenied { .. })
    ));

    // The owner can.
    rt.set_uid(100);
    let pool = rt.pool_open("alice-data", AttachIntent::ReadWrite, &mut sink).unwrap();
    rt.pool_close(pool, &mut sink).unwrap();
}

#[test]
fn shared_read_pools_allow_concurrent_readers_only() {
    let mut rt = PmRuntime::new();
    let mut sink = NullSink::new();
    rt.set_uid(1);
    let pool = rt.pool_create("feed", 1 << 20, Mode::shared_read(), &mut sink).unwrap();
    let item = rt.pmalloc(pool, 64, &mut sink).unwrap();
    rt.write_u64(item, 0, 7, &mut sink).unwrap();
    rt.pool_close(pool, &mut sink).unwrap();

    // A different user reads it; writes are rejected at both layers.
    rt.set_uid(2);
    let pool = rt.pool_open("feed", AttachIntent::Read, &mut sink).unwrap();
    assert_eq!(rt.read_u64(item, 0, &mut sink).unwrap(), 7);
    assert!(rt.write_u64(item, 0, 9, &mut sink).is_err());
    assert!(matches!(
        rt.pool_open("feed", AttachIntent::ReadWrite, &mut sink),
        Err(RuntimeError::PermissionDenied { .. } | RuntimeError::AlreadyAttached(_))
    ));
    rt.pool_close(pool, &mut sink).unwrap();
}

#[test]
fn attach_keys_add_a_second_factor() {
    let mut rt = PmRuntime::new();
    let mut sink = NullSink::new();
    rt.set_uid(1);
    let pool = rt.pool_create("vault", 1 << 20, Mode::shared_write(), &mut sink).unwrap();
    rt.pool_close(pool, &mut sink).unwrap();
    rt.namespace_mut().set_attach_key("vault", 1, Some(0xdeed)).unwrap();

    rt.set_uid(2);
    assert!(matches!(
        rt.pool_open("vault", AttachIntent::Read, &mut sink),
        Err(RuntimeError::WrongAttachKey(_))
    ));
    assert!(matches!(
        rt.pool_open_with_key("vault", AttachIntent::Read, 0xbad, &mut sink),
        Err(RuntimeError::WrongAttachKey(_))
    ));
    let pool = rt.pool_open_with_key("vault", AttachIntent::Read, 0xdeed, &mut sink).unwrap();
    rt.pool_close(pool, &mut sink).unwrap();
}

#[test]
fn delete_requires_owner_and_detachment() {
    let mut rt = PmRuntime::new();
    let mut sink = NullSink::new();
    rt.set_uid(1);
    let pool = rt.pool_create("scratch", 1 << 20, Mode::shared_write(), &mut sink).unwrap();

    // Attached: delete refused.
    assert!(rt.pool_delete("scratch").is_err());
    rt.pool_close(pool, &mut sink).unwrap();

    // Wrong user: refused.
    rt.set_uid(2);
    assert!(matches!(rt.pool_delete("scratch"), Err(RuntimeError::PermissionDenied { .. })));

    // Owner, detached: destroyed for good.
    rt.set_uid(1);
    rt.pool_delete("scratch").unwrap();
    assert!(matches!(
        rt.pool_open("scratch", AttachIntent::Read, &mut sink),
        Err(RuntimeError::NoSuchPool(_))
    ));
}

#[test]
fn pmo_ids_are_stable_and_unique_across_sessions() {
    let mut rt = PmRuntime::new();
    let mut sink = NullSink::new();
    let a = rt.pool_create("a", 1 << 20, Mode::private(), &mut sink).unwrap();
    let b = rt.pool_create("b", 1 << 20, Mode::private(), &mut sink).unwrap();
    assert_ne!(a, b);
    rt.crash();
    // Re-open after "reboot": same IDs (the namespace assigns them at
    // creation, so domain IDs are stable across sessions).
    let a2 = rt.pool_open("a", AttachIntent::ReadWrite, &mut sink).unwrap();
    let b2 = rt.pool_open("b", AttachIntent::ReadWrite, &mut sink).unwrap();
    assert_eq!(a, a2);
    assert_eq!(b, b2);
}
