//! Analyzer validation: clean traces analyze silently, seeded bugs are
//! caught.
//!
//! This is the checker's own correctness argument (ISSUE: "self-validate
//! by mutation testing"). Part one runs every built-in workload through
//! the full pass stack and requires zero error-severity diagnostics —
//! the trace-level analogue of the schemes never faulting on the
//! benchmarks. Part two plants each [`SeededBug`] into a known-clean
//! trace and requires the matching pass to report the matching class.

use pmo_repro::analyzer::{seed_bug, standard_analyzer, PermWindowPass, SeededBug};
use pmo_repro::runtime::{Mode, PmRuntime};
use pmo_repro::trace::{Perm, RecordedTrace, TraceEvent, TraceSink};
use pmo_repro::workloads::{
    MicroBench, MicroConfig, MicroWorkload, ServerConfig, ServerWorkload, WhisperBench,
    WhisperConfig, WhisperWorkload, Workload,
};

fn whisper_config() -> WhisperConfig {
    WhisperConfig { txns: 120, records: 256, pmo_bytes: 8 << 20, ..WhisperConfig::quick() }
}

fn record(w: &mut dyn Workload) -> Vec<TraceEvent> {
    let mut trace = RecordedTrace::new();
    w.generate(&mut trace);
    trace.into_events()
}

fn analyze(events: &[TraceEvent], source: &str, windows: PermWindowPass) -> Vec<String> {
    let mut a = standard_analyzer(source, windows);
    for ev in events {
        a.event(*ev);
    }
    a.finish().errors().map(ToString::to_string).collect()
}

#[test]
fn micro_traces_have_zero_errors() {
    for bench in MicroBench::ALL {
        let mut w = MicroWorkload::new(
            bench,
            MicroConfig {
                pmos: 8,
                active_pmos: 8,
                pmo_bytes: 1 << 20,
                initial_nodes: 12,
                ops: 120,
                ..MicroConfig::quick()
            },
        );
        // Multi-PMO baseline: unlimited windows, read grants held by
        // design.
        let errors = analyze(&record(&mut w), bench.label(), PermWindowPass::baseline());
        assert!(errors.is_empty(), "{bench}: {errors:#?}");
    }
}

#[test]
fn whisper_traces_have_zero_errors_under_strict_policy() {
    for per_access in [false, true] {
        for bench in WhisperBench::ALL {
            let cfg = WhisperConfig { per_access_guard: per_access, ..whisper_config() };
            let mut w = WhisperWorkload::new(bench, cfg);
            let errors = analyze(&record(&mut w), bench.label(), PermWindowPass::strict());
            assert!(errors.is_empty(), "{bench} (per_access={per_access}): {errors:#?}");
        }
    }
}

#[test]
fn server_trace_has_zero_errors() {
    let mut w = ServerWorkload::new(ServerConfig {
        clients: 6,
        requests: 150,
        quantum: 3,
        initial_records: 12,
        pmo_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let errors = analyze(&record(&mut w), "server", PermWindowPass::baseline());
    assert!(errors.is_empty(), "{errors:#?}");
}

/// A minimal durable-transaction trace with explicit permission windows
/// and a full pool lifecycle (create → transact → revoke → close): the
/// canvas the persist/race/stale mutations are planted on.
fn txn_harness_trace() -> Vec<TraceEvent> {
    let mut rt = PmRuntime::new();
    let mut trace = RecordedTrace::new();
    let pool = rt.pool_create("harness", 1 << 20, Mode::private(), &mut trace).unwrap();
    trace.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::ReadWrite });
    let root = rt.pool_root(pool, 64, &mut trace).unwrap();
    let mut tx = rt.begin_txn(pool, &mut trace).unwrap();
    tx.write_u64(root, 0, 7).unwrap();
    tx.write_u64(root, 8, 9).unwrap();
    tx.commit().unwrap();
    trace.event(TraceEvent::SetPerm { pmo: pool, perm: Perm::None });
    rt.pool_close(pool, &mut trace).unwrap();
    trace.into_events()
}

#[test]
fn txn_harness_trace_is_clean() {
    let errors = analyze(&txn_harness_trace(), "txn-harness", PermWindowPass::strict());
    assert!(errors.is_empty(), "{errors:#?}");
}

#[test]
fn every_seeded_bug_is_caught() {
    // WindowLeftOpen needs a trace that does NOT detach afterwards
    // (removing the revoke before a pool_close turns the leak into
    // DetachedWhileGranted instead): the whisper per-txn trace keeps its
    // pool attached for its whole lifetime. Every other bug is planted
    // on the transaction harness.
    let harness = txn_harness_trace();
    let whisper = record(&mut WhisperWorkload::new(WhisperBench::Echo, whisper_config()));

    for bug in SeededBug::ALL {
        let clean = if bug == SeededBug::WindowLeftOpen { &whisper } else { &harness };
        let mutated = seed_bug(clean, bug).unwrap_or_else(|| panic!("{bug}: trace lacks shape"));

        let mut a = standard_analyzer(&format!("seeded-{bug}"), PermWindowPass::strict());
        for ev in &mutated {
            a.event(*ev);
        }
        let report = a.finish();
        let expected = bug.expected_class();
        assert!(
            report.errors().any(|d| d.class == expected),
            "{bug}: expected {expected} among {report}",
        );
    }
}
