//! End-to-end pipeline tests: real workloads → trace → replay → reports,
//! asserting the relationships the paper's evaluation rests on.

use pmo_repro::experiments::{report_for, run_micro, run_whisper, RunOptions};
use pmo_repro::protect::SchemeKind;
use pmo_repro::simarch::SimConfig;
use pmo_repro::workloads::{MicroBench, MicroConfig, WhisperBench, WhisperConfig};

fn micro_config(active: u32) -> MicroConfig {
    MicroConfig {
        pmos: active,
        active_pmos: active,
        pmo_bytes: 8 << 20,
        initial_nodes: 24,
        ops: 600,
        insert_pct: 90,
        value_bytes: 64,
        seed: 99,
    }
}

#[test]
fn every_benchmark_replays_clean_under_every_scheme() {
    let sim = SimConfig::isca2020();
    for bench in MicroBench::ALL {
        let reports =
            run_micro(bench, &micro_config(24), &SchemeKind::ALL, &sim, RunOptions::default());
        for r in &reports {
            assert!(!r.faulted(), "{bench:?}/{}: faults", r.scheme);
            assert_eq!(r.ops, 600, "{bench:?}/{}", r.scheme);
            assert!(r.cycles > 0);
        }
        // The trace is identical across schemes: same loads/stores.
        let loads: Vec<u64> = reports.iter().map(|r| r.counts.loads).collect();
        assert!(loads.windows(2).all(|w| w[0] == w[1]), "{bench:?}: traces diverged");
    }
}

#[test]
fn cycle_ordering_matches_the_paper() {
    let sim = SimConfig::isca2020();
    // 64 PMOs: enough pressure that every effect is visible.
    let reports = run_micro(
        MicroBench::Rbt,
        &micro_config(64),
        &SchemeKind::ALL,
        &sim,
        RunOptions::default(),
    );
    let cycles = |k| report_for(&reports, k).cycles;

    // The baseline has no permission-switch cost.
    assert!(cycles(SchemeKind::Unprotected) < cycles(SchemeKind::Lowerbound));
    // The lowerbound is the floor for every virtualization scheme.
    for k in [SchemeKind::LibMpk, SchemeKind::MpkVirt, SchemeKind::DomainVirt] {
        assert!(cycles(k) >= cycles(SchemeKind::Lowerbound), "{k} under lowerbound");
    }
    // The paper's headline ordering at high domain counts.
    assert!(cycles(SchemeKind::LibMpk) > cycles(SchemeKind::MpkVirt));
    assert!(cycles(SchemeKind::MpkVirt) > cycles(SchemeKind::DomainVirt));
}

#[test]
fn crossover_between_the_hardware_designs() {
    // The paper (§VI.B): MPK virtualization wins at few PMOs (no
    // evictions, TLB hits are free); domain virtualization wins at many
    // (no shootdowns). Compare relative positions at the extremes.
    let sim = SimConfig::isca2020();
    let overhead = |active: u32, kind: SchemeKind| {
        let reports = run_micro(
            MicroBench::Rbt,
            &micro_config(active),
            &[SchemeKind::Lowerbound, kind],
            &sim,
            RunOptions::default(),
        );
        let lb = report_for(&reports, SchemeKind::Lowerbound);
        report_for(&reports, kind).overhead_pct_over(lb)
    };
    let mpk_small = overhead(8, SchemeKind::MpkVirt);
    let dom_small = overhead(8, SchemeKind::DomainVirt);
    let mpk_large = overhead(96, SchemeKind::MpkVirt);
    let dom_large = overhead(96, SchemeKind::DomainVirt);
    assert!(
        mpk_small < dom_small,
        "few PMOs: MPK virtualization must win ({mpk_small:.2}% vs {dom_small:.2}%)"
    );
    assert!(
        dom_large < mpk_large,
        "many PMOs: domain virtualization must win ({dom_large:.2}% vs {mpk_large:.2}%)"
    );
}

#[test]
fn single_pmo_whisper_mpk_equals_mpk_virt() {
    // Table V: "hardware MPK virtualization enjoys the same performance
    // as the default MPK because the benchmarks have only one PMO".
    let sim = SimConfig::isca2020();
    let cfg =
        WhisperConfig { txns: 400, records: 256, pmo_bytes: 8 << 20, ..WhisperConfig::quick() };
    let reports = run_whisper(
        WhisperBench::Hashmap,
        &cfg,
        &[
            SchemeKind::Unprotected,
            SchemeKind::DefaultMpk,
            SchemeKind::MpkVirt,
            SchemeKind::DomainVirt,
        ],
        &sim,
        RunOptions::default(),
    );
    let base = report_for(&reports, SchemeKind::Unprotected);
    let mpk = report_for(&reports, SchemeKind::DefaultMpk).overhead_pct_over(base);
    let mpk_virt = report_for(&reports, SchemeKind::MpkVirt).overhead_pct_over(base);
    let domain_virt = report_for(&reports, SchemeKind::DomainVirt).overhead_pct_over(base);
    // "Hardware MPK virtualization enjoys the same performance as the
    // default MPK": identical up to the DTTLB re-walks SETPERM triggers.
    assert!(
        (mpk - mpk_virt).abs() < (0.08 * mpk).max(1.0),
        "single PMO: MPK {mpk:.2}% vs MPK-virt {mpk_virt:.2}% must be near-identical"
    );
    assert!(
        domain_virt > mpk_virt,
        "domain virtualization pays PTLB latency on every PMO access \
         ({domain_virt:.2}% vs {mpk_virt:.2}%)"
    );
    assert!(mpk > 0.0, "WRPKRU cost must be visible");
}

#[test]
fn reports_are_deterministic() {
    let sim = SimConfig::isca2020();
    let a = run_micro(
        MicroBench::Avl,
        &micro_config(16),
        &[SchemeKind::MpkVirt],
        &sim,
        RunOptions::default(),
    );
    let b = run_micro(
        MicroBench::Avl,
        &micro_config(16),
        &[SchemeKind::MpkVirt],
        &sim,
        RunOptions::default(),
    );
    assert_eq!(a[0].cycles, b[0].cycles);
    assert_eq!(a[0].breakdown, b[0].breakdown);
    assert_eq!(a[0].tlb, b[0].tlb);
}

#[test]
fn breakdown_buckets_fill_where_the_paper_says() {
    let sim = SimConfig::isca2020();
    let reports = run_micro(
        MicroBench::StringSwap,
        &micro_config(96),
        &[SchemeKind::MpkVirt, SchemeKind::DomainVirt, SchemeKind::LibMpk],
        &sim,
        RunOptions::default(),
    );
    let mpk_virt = report_for(&reports, SchemeKind::MpkVirt);
    // Design 1: TLB invalidations dominate (Table VII).
    assert!(mpk_virt.breakdown.tlb_invalidation > 0);
    assert!(mpk_virt.breakdown.translation_miss > 0, "DTT misses");
    assert_eq!(mpk_virt.breakdown.access_latency, 0, "no per-access cost in design 1");

    let domain_virt = report_for(&reports, SchemeKind::DomainVirt);
    // Design 2: access latency + PTLB misses; no invalidations at all.
    assert_eq!(domain_virt.breakdown.tlb_invalidation, 0);
    assert!(domain_virt.breakdown.access_latency > 0);
    assert!(domain_virt.breakdown.translation_miss > 0, "PTLB misses");

    let libmpk = report_for(&reports, SchemeKind::LibMpk);
    // libmpk: kernel time dominates.
    assert!(libmpk.breakdown.software > libmpk.breakdown.permission_change);
    assert!(libmpk.breakdown.software > mpk_virt.breakdown.total());
}

#[test]
fn whisper_traces_carry_persistence_traffic() {
    let sim = SimConfig::isca2020();
    let cfg =
        WhisperConfig { txns: 200, records: 128, pmo_bytes: 8 << 20, ..WhisperConfig::quick() };
    for bench in [WhisperBench::Echo, WhisperBench::Ycsb, WhisperBench::Tpcc] {
        let reports =
            run_whisper(bench, &cfg, &[SchemeKind::Unprotected], &sim, RunOptions::default());
        let r = &reports[0];
        assert!(r.counts.flushes > 0, "{bench:?} flushes");
        assert!(r.counts.fences > 0, "{bench:?} fences");
        assert!(r.nvm_writes > 0, "{bench:?} NVM write traffic");
    }
}
