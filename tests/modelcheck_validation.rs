//! Self-validation of the DPOR model checker: planted protocol bugs must
//! be caught with the expected diagnostic class, counterexamples must
//! replay deterministically, and clean protocols must survive exhaustive
//! exploration — in both the invariants mode and the refinement mode
//! (executable spec + abstraction functions + noninterference).

use pmo_repro::analyzer::ViolationClass;
use pmo_repro::modelcheck::{
    builtin, explore, explore_mode, find, replay_schedule, replay_schedule_mode,
    scenarios::seeded_checks, CheckMode, ExploreLimits,
};

#[test]
fn every_seeded_protocol_bug_is_caught_with_expected_class() {
    for check in seeded_checks() {
        let scenario = find(check.scenario).expect("seeded checks reference builtin scenarios");
        let out = explore(&scenario, Some(check.bug), &ExploreLimits::default());
        assert!(
            out.violations.iter().any(|v| v.class == check.expect),
            "{:?} escaped {} ({} schedules explored, found {:?})",
            check.bug,
            check.scenario,
            out.schedules,
            out.violations.iter().map(|v| v.class).collect::<Vec<_>>()
        );
    }
}

#[test]
fn counterexamples_replay_deterministically_through_the_analyzer() {
    for check in seeded_checks() {
        let scenario = find(check.scenario).unwrap();
        let out = explore(&scenario, Some(check.bug), &ExploreLimits::default());
        let witness =
            out.violations.iter().find(|v| v.class == check.expect).expect("caught above");
        let mut renders = Vec::new();
        for _ in 0..2 {
            let replay = replay_schedule(&scenario, Some(check.bug), &witness.schedule)
                .expect("reported schedule is executable");
            assert!(
                replay.violations.iter().any(|v| v.class == check.expect),
                "{:?}: schedule {} did not reproduce",
                check.bug,
                witness.schedule_string()
            );
            assert!(
                replay
                    .report
                    .diagnostics
                    .iter()
                    .any(|d| d.pass == "modelcheck" && d.class == check.expect),
                "{:?}: no positioned diagnostic emitted through pmo-analyzer",
                check.bug
            );
            assert!(!replay.report.passed(), "report must fail on a violation");
            renders.push(replay.report.to_json());
        }
        assert_eq!(renders[0], renders[1], "{:?}: replay must be deterministic", check.bug);
    }
}

#[test]
fn clean_protocols_pass_exhaustive_exploration() {
    // A cheap subset (the stress scenarios run in CI's quick campaign).
    for name in ["setperm-vs-access", "key-evict-storm", "detach-race", "three-thread-handoff"] {
        let scenario = find(name).unwrap();
        let out = explore(&scenario, None, &ExploreLimits::default());
        assert!(out.violations.is_empty(), "{name}: {:?}", out.violations);
        assert!(!out.truncated, "{name} must be explored exhaustively");
        assert!(out.schedules > 0);
    }
}

#[test]
fn dpor_prunes_but_never_misses_dependent_interleavings() {
    let disjoint = find("disjoint-domains").unwrap();
    let out = explore(&disjoint, None, &ExploreLimits::default());
    assert!(
        (out.schedules as u128) < out.naive,
        "independent threads must be pruned ({} vs {})",
        out.schedules,
        out.naive
    );

    // Fully-dependent programs are the other extreme: nothing commutes,
    // so DPOR must degenerate to complete enumeration (a completeness
    // cross-check for the backtracking logic).
    let contention = find("contention-stress").unwrap();
    let out = explore(&contention, None, &ExploreLimits::default());
    assert_eq!(out.schedules as u128, out.naive, "all-dependent ops admit no pruning");
}

#[test]
fn every_seeded_bug_is_a_refinement_failure_with_a_replayable_witness() {
    // The refinement checker subsumes the invariant campaign: every
    // planted protocol bug must surface as a refinement divergence (the
    // underlying condition named in the message), and the witness
    // schedule must replay to a positioned diagnostic whose source is the
    // scenario@schedule repro id.
    for check in seeded_checks() {
        let scenario = find(check.scenario).unwrap();
        let out =
            explore_mode(&scenario, Some(check.bug), &ExploreLimits::default(), CheckMode::Refine);
        let witness = out
            .violations
            .iter()
            .find(|v| v.class == ViolationClass::RefinementDivergence)
            .unwrap_or_else(|| {
                panic!(
                    "{:?} not reported as refinement-divergence in {} (found {:?})",
                    check.bug,
                    check.scenario,
                    out.violations.iter().map(|v| v.class).collect::<Vec<_>>()
                )
            });
        assert!(
            witness.message.contains(':'),
            "{:?}: message must name the underlying condition: {}",
            check.bug,
            witness.message
        );
        let replay =
            replay_schedule_mode(&scenario, Some(check.bug), &witness.schedule, CheckMode::Refine)
                .expect("witness schedule is executable");
        assert!(
            replay.violations.iter().any(|v| v.class == ViolationClass::RefinementDivergence),
            "{:?}: witness {} did not reproduce under replay",
            check.bug,
            witness.schedule_string()
        );
        let diag = replay
            .report
            .diagnostics
            .iter()
            .find(|d| d.class == ViolationClass::RefinementDivergence)
            .expect("positioned refinement diagnostic");
        assert_eq!(diag.pass, "modelcheck");
        assert!(
            replay.report.source.starts_with(check.scenario),
            "repro id must be scenario@schedule, got {}",
            replay.report.source
        );
    }
}

#[test]
fn clean_schemes_are_refinement_clean_and_noninterferent() {
    // Refine mode must stay silent on every built-in scenario with no
    // planted bug: no verdict/abstraction divergence on any schedule, and
    // no noninterference leak on any completed execution.
    for scenario in builtin() {
        let out = explore_mode(&scenario, None, &ExploreLimits::default(), CheckMode::Refine);
        assert!(
            out.violations.is_empty(),
            "{}: refine mode found {:?}",
            scenario.name,
            out.violations
        );
        assert!(!out.truncated, "{} must be exhaustive", scenario.name);
    }
}

#[test]
fn campaign_volume_meets_the_bar() {
    // The acceptance bar: >= 10k distinct schedules across >= 6 scenarios.
    let mut schedules = 0u64;
    let scenarios = builtin();
    assert!(scenarios.len() >= 6);
    for scenario in &scenarios {
        schedules += explore(scenario, None, &ExploreLimits::default()).schedules;
    }
    assert!(schedules >= 10_000, "campaign explored only {schedules} schedules");
}
