//! Self-validation of the DPOR model checker: planted protocol bugs must
//! be caught with the expected diagnostic class, counterexamples must
//! replay deterministically, and clean protocols must survive exhaustive
//! exploration.

use pmo_repro::modelcheck::{
    builtin, explore, find, replay_schedule, scenarios::seeded_checks, ExploreLimits,
};

#[test]
fn every_seeded_protocol_bug_is_caught_with_expected_class() {
    for check in seeded_checks() {
        let scenario = find(check.scenario).expect("seeded checks reference builtin scenarios");
        let out = explore(&scenario, Some(check.bug), &ExploreLimits::default());
        assert!(
            out.violations.iter().any(|v| v.class == check.expect),
            "{:?} escaped {} ({} schedules explored, found {:?})",
            check.bug,
            check.scenario,
            out.schedules,
            out.violations.iter().map(|v| v.class).collect::<Vec<_>>()
        );
    }
}

#[test]
fn counterexamples_replay_deterministically_through_the_analyzer() {
    for check in seeded_checks() {
        let scenario = find(check.scenario).unwrap();
        let out = explore(&scenario, Some(check.bug), &ExploreLimits::default());
        let witness =
            out.violations.iter().find(|v| v.class == check.expect).expect("caught above");
        let mut renders = Vec::new();
        for _ in 0..2 {
            let replay = replay_schedule(&scenario, Some(check.bug), &witness.schedule)
                .expect("reported schedule is executable");
            assert!(
                replay.violations.iter().any(|v| v.class == check.expect),
                "{:?}: schedule {} did not reproduce",
                check.bug,
                witness.schedule_string()
            );
            assert!(
                replay
                    .report
                    .diagnostics
                    .iter()
                    .any(|d| d.pass == "modelcheck" && d.class == check.expect),
                "{:?}: no positioned diagnostic emitted through pmo-analyzer",
                check.bug
            );
            assert!(!replay.report.passed(), "report must fail on a violation");
            renders.push(replay.report.to_json());
        }
        assert_eq!(renders[0], renders[1], "{:?}: replay must be deterministic", check.bug);
    }
}

#[test]
fn clean_protocols_pass_exhaustive_exploration() {
    // A cheap subset (the stress scenarios run in CI's quick campaign).
    for name in ["setperm-vs-access", "key-evict-storm", "detach-race", "three-thread-handoff"] {
        let scenario = find(name).unwrap();
        let out = explore(&scenario, None, &ExploreLimits::default());
        assert!(out.violations.is_empty(), "{name}: {:?}", out.violations);
        assert!(!out.truncated, "{name} must be explored exhaustively");
        assert!(out.schedules > 0);
    }
}

#[test]
fn dpor_prunes_but_never_misses_dependent_interleavings() {
    let disjoint = find("disjoint-domains").unwrap();
    let out = explore(&disjoint, None, &ExploreLimits::default());
    assert!(
        (out.schedules as u128) < out.naive,
        "independent threads must be pruned ({} vs {})",
        out.schedules,
        out.naive
    );

    // Fully-dependent programs are the other extreme: nothing commutes,
    // so DPOR must degenerate to complete enumeration (a completeness
    // cross-check for the backtracking logic).
    let contention = find("contention-stress").unwrap();
    let out = explore(&contention, None, &ExploreLimits::default());
    assert_eq!(out.schedules as u128, out.naive, "all-dependent ops admit no pruning");
}

#[test]
fn campaign_volume_meets_the_bar() {
    // The acceptance bar: >= 10k distinct schedules across >= 6 scenarios.
    let mut schedules = 0u64;
    let scenarios = builtin();
    assert!(scenarios.len() >= 6);
    for scenario in &scenarios {
        schedules += explore(scenario, None, &ExploreLimits::default()).schedules;
    }
    assert!(schedules >= 10_000, "campaign explored only {schedules} schedules");
}
