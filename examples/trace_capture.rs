//! The Pin-style capture/replay flow: record a workload's trace to a
//! binary file once, then replay the *same* file under different
//! protection schemes — the paper's exact methodology (§V).
//!
//! Run with: `cargo run --release --example trace_capture`

use pmo_repro::protect::SchemeKind;
use pmo_repro::sim::{replay_source, Replay};
use pmo_repro::simarch::SimConfig;
use pmo_repro::trace::{TraceFile, TraceFileWriter, TraceSink};
use pmo_repro::workloads::{MicroBench, MicroConfig, MicroWorkload, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("pmo_repro_demo.pmot");

    // Capture: run the workload once, streaming into a trace file
    // (tee-ing into a live simulator would work too).
    let mut workload = MicroWorkload::new(
        MicroBench::Rbt,
        MicroConfig {
            pmos: 32,
            active_pmos: 32,
            pmo_bytes: 8 << 20,
            initial_nodes: 32,
            ops: 500,
            insert_pct: 90,
            value_bytes: 64,
            seed: 1234,
        },
    );
    let mut writer = TraceFileWriter::create(&path)?;
    workload.setup(&mut writer);
    // Mark the measurement boundary with a fence so the replay side could
    // window it if it wanted to (we replay everything here).
    writer.event(pmo_repro::trace::TraceEvent::Fence);
    workload.run(&mut writer);
    let events = writer.finish()?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("captured {events} events ({bytes} bytes) to {}", path.display());

    // Replay: one trace, many schemes.
    let config = SimConfig::isca2020();
    let trace = TraceFile::open(&path)?;
    println!("\n{:<12} {:>14} {:>12}", "scheme", "cycles", "faults");
    let mut lowerbound = 0u64;
    for kind in
        [SchemeKind::Lowerbound, SchemeKind::LibMpk, SchemeKind::MpkVirt, SchemeKind::DomainVirt]
    {
        let report = replay_source(&trace, kind, &config);
        if kind == SchemeKind::Lowerbound {
            lowerbound = report.cycles;
        }
        println!(
            "{:<12} {:>14} {:>12}   (+{:.1}% over lowerbound)",
            kind.label(),
            report.cycles,
            report.scheme_stats.faults,
            (report.cycles as f64 - lowerbound as f64) * 100.0 / lowerbound as f64,
        );
    }

    // Determinism: replaying the file twice gives identical cycles.
    let a = replay_source(&trace, SchemeKind::MpkVirt, &config).cycles;
    let b = {
        let mut replay = Replay::new(SchemeKind::MpkVirt, &config);
        trace.stream_into(&mut replay)?;
        replay.finish().cycles
    };
    assert_eq!(a, b, "file replay is deterministic");
    println!("\nreplay is deterministic; trace file at {}", path.display());
    std::fs::remove_file(&path)?;
    Ok(())
}
