//! Replays one multi-PMO workload under all six protection schemes and
//! prints a side-by-side cost comparison — a miniature of the paper's
//! Figure 6 story in one screen.
//!
//! Run with: `cargo run --release --example scheme_comparison`

use pmo_repro::experiments::{report_for, run_micro, RunOptions};
use pmo_repro::protect::SchemeKind;
use pmo_repro::simarch::SimConfig;
use pmo_repro::workloads::{MicroBench, MicroConfig};

fn main() {
    let sim = SimConfig::isca2020();
    let config = MicroConfig {
        pmos: 64,
        active_pmos: 64,
        pmo_bytes: 8 << 20,
        initial_nodes: 64,
        ops: 2_000,
        insert_pct: 90,
        value_bytes: 64,
        seed: 42,
    };
    println!(
        "RB-tree over {} PMOs of 8MB, {} ops, per-op permission switching\n",
        config.pmos, config.ops
    );

    let reports =
        run_micro(MicroBench::Rbt, &config, &SchemeKind::ALL, &sim, RunOptions::default());
    let lowerbound = report_for(&reports, SchemeKind::Lowerbound).cycles;

    println!(
        "{:<12} {:>14} {:>12} {:>10} {:>11} {:>12}",
        "scheme", "cycles", "vs lower %", "evictions", "shootdowns", "tlb-inval"
    );
    for report in &reports {
        println!(
            "{:<12} {:>14} {:>12.1} {:>10} {:>11} {:>12}",
            report.scheme.label(),
            report.cycles,
            (report.cycles as f64 - lowerbound as f64) * 100.0 / lowerbound as f64,
            report.scheme_stats.key_evictions,
            report.scheme_stats.shootdowns,
            report.scheme_stats.tlb_entries_invalidated,
        );
    }

    let libmpk = report_for(&reports, SchemeKind::LibMpk);
    let mpk_virt = report_for(&reports, SchemeKind::MpkVirt);
    let domain_virt = report_for(&reports, SchemeKind::DomainVirt);
    println!(
        "\nhardware MPK virtualization cuts libmpk's overhead {:.1}x; \
         domain virtualization cuts it {:.1}x",
        (libmpk.cycles - lowerbound) as f64 / (mpk_virt.cycles - lowerbound) as f64,
        (libmpk.cycles - lowerbound) as f64 / (domain_virt.cycles - lowerbound) as f64,
    );
    println!("domain virtualization performed {} shootdowns", domain_virt.scheme_stats.shootdowns);
}
