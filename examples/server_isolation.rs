//! The paper's motivating scenario (§I, §IV.B): a server keeps each
//! client's private data in its own PMO, one domain per client, one
//! handler thread per connection. A Heartbleed-style compromised handler
//! tries to read other clients' data.
//!
//! With stock MPK, only 15 clients get a protection key — the 16th
//! client's data is silently unprotected. With the paper's domain
//! virtualization, every client keeps its own enforced domain.
//!
//! Run with: `cargo run --example server_isolation`

use pmo_repro::protect::scheme::{ProtectionScheme, SchemeKind};
use pmo_repro::simarch::SimConfig;
use pmo_repro::trace::{AccessKind, Perm, PmoId};

const CLIENTS: u32 = 64;
const GB1: u64 = 1 << 30;

/// Attaches one 8MB PMO per client and grants each handler thread
/// read-write on its *own* client's domain only.
fn provision(scheme: &mut dyn ProtectionScheme) {
    for client in 1..=CLIENTS {
        scheme.attach(PmoId::new(client), u64::from(client) * GB1, 8 << 20, true);
    }
    for client in 1..=CLIENTS {
        scheme.context_switch(pmo_repro::trace::ThreadId::new(client));
        scheme.set_perm(PmoId::new(client), Perm::ReadWrite);
    }
}

/// Thread `attacker` sweeps every client's PMO; returns how many leak.
fn heartbleed_sweep(scheme: &mut dyn ProtectionScheme, attacker: u32) -> Vec<u32> {
    scheme.context_switch(pmo_repro::trace::ThreadId::new(attacker));
    let mut leaked = Vec::new();
    for client in 1..=CLIENTS {
        let va = u64::from(client) * GB1 + 0x40; // a "private key" field
        if scheme.access(va, AccessKind::Read).allowed() {
            leaked.push(client);
        }
    }
    leaked
}

fn main() {
    let config = SimConfig::isca2020();

    for kind in [SchemeKind::DefaultMpk, SchemeKind::MpkVirt, SchemeKind::DomainVirt] {
        let mut scheme = kind.build(&config);
        provision(scheme.as_mut());

        // Handler thread 7 is compromised and sweeps all client PMOs.
        let leaked = heartbleed_sweep(scheme.as_mut(), 7);
        println!("[{kind}] compromised handler 7 reads {CLIENTS} client PMOs:");
        println!("    leaked {} client(s): {:?}", leaked.len(), leaked);
        match kind {
            SchemeKind::DefaultMpk => {
                // 15 usable keys: clients 16.. fell back to domainless and
                // leak to any thread; client 7's own data is fair game too.
                assert!(
                    leaked.len() as u32 == CLIENTS - 15 + 1,
                    "stock MPK leaks every client beyond the 15 keyed ones"
                );
                println!("    -> stock MPK ran out of keys: every client past 15 is exposed\n");
            }
            _ => {
                assert_eq!(leaked, vec![7], "only the handler's own client");
                println!("    -> only its own client: intra-process isolation holds\n");
            }
        }
    }

    println!("domain virtualization scales per-client isolation beyond 16 domains");
}
