//! Quickstart: create a persistent memory object, protect it with the
//! paper's domain-virtualization design, and watch the MMU enforce
//! per-thread spatio-temporal permissions.
//!
//! Run with: `cargo run --example quickstart`

use pmo_repro::protect::SchemeKind;
use pmo_repro::runtime::{Mode, PmRuntime};
use pmo_repro::sim::Replay;
use pmo_repro::simarch::SimConfig;
use pmo_repro::trace::{Perm, TraceEvent, TraceSink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The simulated machine (paper Table II) with the domain-virtualization
    // scheme (design 2: DRT + PT + PTLB, no protection keys, no shootdowns).
    let config = SimConfig::isca2020();
    let mut sim = Replay::new(SchemeKind::DomainVirt, &config);

    // A PMO runtime: pools are named, persistent, and attach into aligned
    // VA regions. Every persistent access it performs streams into the
    // simulator, which checks it against the domain machinery.
    let mut rt = PmRuntime::new();
    let ledger = rt.pool_create("ledger", 1 << 20, Mode::private(), &mut sim)?;
    println!("created + attached PMO `ledger` (domain {ledger})");

    // Fresh domains are inaccessible ("the default permission for this
    // key is inaccessible"): grant read-write before touching it.
    sim.event(TraceEvent::SetPerm { pmo: ledger, perm: Perm::ReadWrite });
    let account = rt.pmalloc(ledger, 64, &mut sim)?;
    rt.write_u64(account, 0, 1_000, &mut sim)?;
    rt.persist(account, 0, 8, &mut sim)?;
    println!("wrote balance inside the permission window");

    // Close the temporal window: further accesses are domain violations.
    sim.event(TraceEvent::SetPerm { pmo: ledger, perm: Perm::None });
    match rt.read_u64(account, 0, &mut sim) {
        Ok(_) => {} // the functional read succeeds in the runtime...
        Err(e) => println!("runtime error: {e}"),
    }

    // ...but the simulated MMU recorded the violation:
    let report = sim.finish();
    println!(
        "\nsimulated {} cycles; {} permission switches; {} domain faults",
        report.cycles, report.counts.set_perms, report.scheme_stats.faults
    );
    for fault in &report.faults {
        println!("  fault: {fault}");
    }
    assert_eq!(report.scheme_stats.faults, 1, "the out-of-window read");
    println!(
        "\ntemporal isolation enforced — see examples/server_isolation.rs for spatial isolation"
    );
    Ok(())
}
