//! Durable transactions and crash recovery on the PMO runtime: a bank
//! transfer is failure-atomic under a redo log, across simulated power
//! loss at the worst moments.
//!
//! Run with: `cargo run --example crash_recovery`

use pmo_repro::runtime::{AttachIntent, Mode, Oid, PmRuntime};
use pmo_repro::trace::NullSink;

fn balances(rt: &mut PmRuntime, root: Oid, sink: &mut NullSink) -> (u64, u64) {
    let a = rt.read_u64(root, 0, sink).expect("read a");
    let b = rt.read_u64(root, 8, sink).expect("read b");
    (a, b)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rt = PmRuntime::new();
    let mut sink = NullSink::new();

    // Two accounts with 500 each, persisted.
    let bank = rt.pool_create("bank", 1 << 20, Mode::private(), &mut sink)?;
    let root = rt.pool_root(bank, 16, &mut sink)?;
    {
        let mut tx = rt.begin_txn(bank, &mut sink)?;
        tx.write_u64(root, 0, 500)?;
        tx.write_u64(root, 8, 500)?;
        tx.commit()?;
    }
    println!("initial balances: {:?}", balances(&mut rt, root, &mut sink));

    // Crash *before* the transfer commits: nothing changes.
    {
        let mut tx = rt.begin_txn(bank, &mut sink)?;
        tx.write_u64(root, 0, 500 - 120)?;
        tx.write_u64(root, 8, 500 + 120)?;
        drop(tx); // power fails before commit
    }
    rt.crash();
    let bank = rt.pool_open("bank", AttachIntent::ReadWrite, &mut sink)?;
    let root = rt.pool_root(bank, 16, &mut sink)?;
    let (a, b) = balances(&mut rt, root, &mut sink);
    println!("after crash before commit: ({a}, {b})  — transfer lost, money conserved");
    assert_eq!(a + b, 1000);
    assert_eq!((a, b), (500, 500));

    // Commit a transfer, then crash: the redo log makes it stick.
    {
        let mut tx = rt.begin_txn(bank, &mut sink)?;
        tx.write_u64(root, 0, 500 - 120)?;
        tx.write_u64(root, 8, 500 + 120)?;
        tx.commit()?;
    }
    rt.crash();
    let bank = rt.pool_open("bank", AttachIntent::ReadWrite, &mut sink)?;
    let root = rt.pool_root(bank, 16, &mut sink)?;
    if let Some(recovery) = rt.last_recovery() {
        println!("recovery replayed {} log entries", recovery.entries_replayed);
    }
    let (a, b) = balances(&mut rt, root, &mut sink);
    println!("after crash after commit:  ({a}, {b})  — transfer durable");
    assert_eq!((a, b), (380, 620));

    let _ = bank;
    println!("\nfailure atomicity holds in both crash windows");
    Ok(())
}
